"""Tests for the traced simulator and Gantt rendering."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.parallel.simulator import simulate_chunk_schedule
from repro.parallel.tracing import (
    ChunkTrace,
    format_gantt,
    simulate_chunk_schedule_traced,
)


class TestTracedSchedule:
    def test_makespan_matches_untraced(self):
        rng = np.random.default_rng(11)
        costs = rng.random(500)
        for steals in (True, False):
            t_plain = simulate_chunk_schedule(costs, 7, steals=steals)
            t_traced, traces = simulate_chunk_schedule_traced(
                costs, 7, steals=steals
            )
            assert t_traced == pytest.approx(t_plain)
            assert len(traces) == costs.size

    def test_traces_are_consistent(self):
        costs = np.array([3.0, 1.0, 2.0, 1.0, 1.0])
        makespan, traces = simulate_chunk_schedule_traced(costs, 2)
        # every chunk appears once with its cost as duration
        assert sorted(t.chunk for t in traces) == list(range(5))
        for t in traces:
            assert t.duration == pytest.approx(costs[t.chunk])
        # per-worker intervals never overlap
        for w in (0, 1):
            mine = sorted(
                (t for t in traces if t.worker == w),
                key=lambda t: t.start,
            )
            for a, b in zip(mine, mine[1:]):
                assert b.start >= a.end - 1e-12
        assert makespan == pytest.approx(max(t.end for t in traces))

    def test_overhead_added(self):
        costs = np.ones(4)
        m0, _ = simulate_chunk_schedule_traced(costs, 2)
        m1, _ = simulate_chunk_schedule_traced(
            costs, 2, overhead_per_chunk=0.5
        )
        assert m1 == pytest.approx(m0 + 1.0)

    def test_empty(self):
        makespan, traces = simulate_chunk_schedule_traced(np.empty(0), 3)
        assert makespan == 0.0 and traces == []

    def test_limits(self):
        with pytest.raises(SchedulerError):
            simulate_chunk_schedule_traced(np.ones(2), 0)
        with pytest.raises(SchedulerError):
            simulate_chunk_schedule_traced(np.array([-1.0]), 2)
        with pytest.raises(SchedulerError):
            simulate_chunk_schedule_traced(np.ones(100_001), 2)


class TestGantt:
    def test_renders_all_workers(self):
        costs = np.array([2.0, 1.0, 1.0])
        makespan, traces = simulate_chunk_schedule_traced(costs, 2)
        out = format_gantt(traces, 2, width=40, makespan=makespan)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 workers
        assert lines[1].startswith("w0")
        assert "%" in lines[1]

    def test_idle_worker_shows_zero_utilization(self):
        traces = [ChunkTrace(0, 0, 0.0, 1.0)]
        out = format_gantt(traces, 2, width=20)
        w1 = out.splitlines()[2]
        assert "0.0%" in w1

    def test_empty(self):
        assert "empty" in format_gantt([], 2)

    def test_imbalance_visible(self):
        # round-robin static deal with alternating heavy chunks: worker 0
        # is busy far longer than worker 1
        costs = np.array([4.0, 0.1] * 4)
        makespan, traces = simulate_chunk_schedule_traced(
            costs, 2, steals=False
        )
        out = format_gantt(traces, 2, width=40, makespan=makespan)
        lines = out.splitlines()
        util0 = float(lines[1].rsplit(" ", 1)[-1].rstrip("%"))
        util1 = float(lines[2].rsplit(" ", 1)[-1].rstrip("%"))
        assert util0 > 90 and util1 < 15
