"""Unit tests for PagerankConfig and result containers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.pagerank import (
    BatchPagerankResult,
    PagerankConfig,
    PagerankResult,
    WorkStats,
)


class TestConfig:
    def test_defaults(self):
        cfg = PagerankConfig()
        assert 0 < cfg.alpha < 1
        assert cfg.damping == pytest.approx(1 - cfg.alpha)
        assert cfg.dangling == "uniform"

    def test_rejects_bad_alpha(self):
        for alpha in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValidationError):
                PagerankConfig(alpha=alpha)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValidationError):
            PagerankConfig(tolerance=0)

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValidationError):
            PagerankConfig(max_iterations=0)

    def test_rejects_bad_dangling(self):
        with pytest.raises(ValidationError):
            PagerankConfig(dangling="teleport")

    def test_frozen(self):
        cfg = PagerankConfig()
        with pytest.raises(Exception):
            cfg.alpha = 0.5


class TestWorkStats:
    def test_merge(self):
        a = WorkStats(iterations=2, edge_traversals=10, vertex_ops=5)
        b = WorkStats(iterations=3, edge_traversals=20, vertex_ops=7)
        a.merge(b)
        assert a.iterations == 5
        assert a.edge_traversals == 30
        assert a.vertex_ops == 12

    def test_accumulate(self):
        total = WorkStats.accumulate(
            [WorkStats(iterations=1), WorkStats(iterations=4)]
        )
        assert total.iterations == 5


class TestResults:
    def test_total_mass(self):
        r = PagerankResult(
            values=np.array([0.25, 0.75]),
            iterations=3,
            converged=True,
            residual=0.0,
        )
        assert r.total_mass == pytest.approx(1.0)

    def test_batch_column_extraction(self):
        vals = np.array([[0.1, 0.9], [0.2, 0.8]])
        batch = BatchPagerankResult(
            values=vals,
            window_indices=[4, 9],
            iterations_per_window=np.array([3, 5]),
            converged=np.array([True, False]),
            residuals=np.array([1e-12, 1e-3]),
        )
        col = batch.column(9)
        assert col.values.tolist() == [0.9, 0.8]
        assert col.iterations == 5
        assert col.converged is False

    def test_batch_column_missing(self):
        batch = BatchPagerankResult(
            values=np.zeros((2, 1)),
            window_indices=[1],
            iterations_per_window=np.array([1]),
            converged=np.array([True]),
            residuals=np.array([0.0]),
        )
        with pytest.raises(ValueError):
            batch.column(7)
