"""Tests for the report collator and its CLI surface."""

import io

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.reporting import generate_report
from repro.reporting.report import ARTIFACT_ORDER


@pytest.fixture
def artifacts(tmp_path):
    (tmp_path / "fig5_models.txt").write_text("FIG5 CONTENT")
    (tmp_path / "table1_graphs.txt").write_text("TABLE1 CONTENT")
    (tmp_path / "custom_study.txt").write_text("CUSTOM CONTENT")
    return tmp_path


class TestGenerateReport:
    def test_contains_all_artifacts(self, artifacts):
        text = generate_report(artifacts)
        assert "FIG5 CONTENT" in text
        assert "TABLE1 CONTENT" in text
        assert "CUSTOM CONTENT" in text

    def test_paper_order_respected(self, artifacts):
        text = generate_report(artifacts)
        assert text.index("TABLE1") < text.index("FIG5")
        # unknown artifacts go last
        assert text.index("CUSTOM") > text.index("FIG5")

    def test_writes_file(self, artifacts, tmp_path):
        out = tmp_path / "report.md"
        generate_report(artifacts, report_path=out)
        assert out.read_text().startswith("# Reproduction report")

    def test_rejects_missing_dir(self, tmp_path):
        with pytest.raises(ValidationError):
            generate_report(tmp_path / "nope")

    def test_rejects_empty_dir(self, tmp_path):
        with pytest.raises(ValidationError):
            generate_report(tmp_path)

    def test_order_table_is_consistent(self):
        assert ARTIFACT_ORDER[0] == "table1_graphs"
        assert len(set(ARTIFACT_ORDER)) == len(ARTIFACT_ORDER)


class TestCliReport:
    def test_report_to_stdout(self, artifacts):
        out = io.StringIO()
        rc = main(["report", "--output-dir", str(artifacts)], out=out)
        assert rc == 0
        assert "FIG5 CONTENT" in out.getvalue()

    def test_report_to_file(self, artifacts, tmp_path):
        dest = tmp_path / "r.md"
        out = io.StringIO()
        rc = main(
            ["report", "--output-dir", str(artifacts), "--out", str(dest)],
            out=out,
        )
        assert rc == 0
        assert dest.exists()

    def test_report_missing_dir_fails(self, tmp_path):
        rc = main(
            ["report", "--output-dir", str(tmp_path / "none")],
            out=io.StringIO(),
        )
        assert rc == 1


class TestCliKernel:
    def test_kernel_subcommand(self, tmp_path):
        path = tmp_path / "e.npz"
        main(
            ["generate", "askubuntu", "--scale", "0.05", "--out", str(path)],
            out=io.StringIO(),
        )
        for name in ("components", "maxcore", "triangles", "katz"):
            out = io.StringIO()
            rc = main(
                [
                    "kernel", str(path),
                    "--delta-days", "180",
                    "--sw", "5184000",
                    "--name", name,
                    "--max-windows", "4",
                ],
                out=out,
            )
            assert rc == 0, name
            assert name in out.getvalue()
