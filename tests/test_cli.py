"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.events import load_events_npz


@pytest.fixture
def events_file(tmp_path):
    path = tmp_path / "events.npz"
    rc = main(
        ["generate", "askubuntu", "--scale", "0.05", "--out", str(path)],
        out=io.StringIO(),
    )
    assert rc == 0
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompile"])


class TestGenerate:
    def test_npz_roundtrip(self, events_file):
        events = load_events_npz(events_file)
        assert len(events) > 0

    def test_tsv_output(self, tmp_path):
        path = tmp_path / "events.tsv"
        out = io.StringIO()
        rc = main(
            ["generate", "askubuntu", "--scale", "0.05", "--out", str(path)],
            out=out,
        )
        assert rc == 0
        assert path.exists()
        assert "wrote" in out.getvalue()

    def test_unknown_profile_fails(self, tmp_path):
        rc = main(
            ["generate", "nope", "--out", str(tmp_path / "x.npz")],
            out=io.StringIO(),
        )
        assert rc == 1


class TestListInfo:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "wiki-talk" in text and "ia-enron-email" in text

    def test_info(self, events_file):
        out = io.StringIO()
        assert main(["info", events_file], out=out) == 0
        text = out.getvalue()
        assert "events" in text and "shape class" in text

    def test_info_missing_file(self):
        assert main(["info", "/nonexistent.npz"], out=io.StringIO()) == 1


class TestRun:
    def test_run_prints_windows(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "run",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--top", "2",
                "--max-windows", "10",
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "postmortem pagerank over 10 windows" in text
        assert "top-2" in text
        assert "build" in text

    def test_run_options(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "run",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--kernel", "spmv",
                "--partition", "minimax",
                "--max-windows", "6",
            ],
            out=out,
        )
        assert rc == 0


class TestCompareSweep:
    def test_compare(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "compare",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--max-windows", "8",
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "streaming" in text and "postmortem vs streaming" in text

    def test_sweep(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "sweep",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--max-windows", "8",
                "--workers", "8",
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "simulated makespan" in text and "best:" in text


@pytest.fixture
def rankstore_dir(tmp_path):
    """A directory holding one rank store written through the runtime."""
    import numpy as np

    from repro.service import RankStoreWriter

    rng = np.random.default_rng(3)
    path = tmp_path / "run.rankstore"
    with RankStoreWriter(path, n_windows=6, n_vertices=30) as w:
        for i in range(6):
            row = rng.random(30)
            w.write_window(i, row / row.sum())
    return tmp_path


class TestStoreDiscovery:
    def test_file_resolves_to_itself(self, rankstore_dir):
        from repro.runtime import discover_rank_store

        path = str(rankstore_dir / "run.rankstore")
        assert discover_rank_store(path) == path

    def test_directory_with_one_store(self, rankstore_dir):
        from repro.runtime import discover_rank_store

        assert discover_rank_store(str(rankstore_dir)).endswith(
            "run.rankstore"
        )

    def test_empty_directory_errors(self, tmp_path):
        from repro.errors import ValidationError
        from repro.runtime import discover_rank_store

        with pytest.raises(ValidationError, match="no rank stores"):
            discover_rank_store(str(tmp_path))

    def test_ambiguous_directory_lists_candidates(self, rankstore_dir):
        import shutil

        from repro.errors import ValidationError
        from repro.runtime import discover_rank_store

        shutil.copy(
            rankstore_dir / "run.rankstore",
            rankstore_dir / "other.rankstore",
        )
        with pytest.raises(ValidationError) as err:
            discover_rank_store(str(rankstore_dir))
        message = str(err.value)
        assert "run.rankstore" in message
        assert "other.rankstore" in message
        assert "6 windows x 30 vertices" in message

    def test_non_store_file_errors(self, tmp_path):
        from repro.errors import ValidationError
        from repro.runtime import discover_rank_store

        bogus = tmp_path / "x.rankstore"
        bogus.write_bytes(b"not a store")
        with pytest.raises(ValidationError, match="bad magic"):
            discover_rank_store(str(bogus))

    def test_serve_cli_reports_discovery_error(self, tmp_path):
        rc = main(["serve", str(tmp_path), "--port", "0"],
                  out=io.StringIO())
        assert rc == 1


class TestBenchTraffic:
    def test_one_shot_against_server(self, rankstore_dir):
        from repro.service import QueryServer

        with QueryServer(
            str(rankstore_dir / "run.rankstore"), port=0, workers=2
        ).start() as srv:
            out = io.StringIO()
            rc = main(
                [
                    "bench-traffic", srv.url,
                    "--requests", "60",
                    "--concurrency", "3",
                    "--seed", "1",
                ],
                out=out,
            )
        assert rc == 0
        text = out.getvalue()
        assert "qps" in text and "p99_ms" in text

    def test_json_output_and_mix(self, rankstore_dir):
        import json as json_mod

        from repro.service import QueryServer

        with QueryServer(
            str(rankstore_dir / "run.rankstore"), port=0, workers=2
        ).start() as srv:
            out = io.StringIO()
            rc = main(
                [
                    "bench-traffic", srv.url,
                    "--requests", "40",
                    "--mix", "top_k=1.0",
                    "--json",
                ],
                out=out,
            )
        assert rc == 0
        payload = json_mod.loads(out.getvalue())
        assert payload["total"] == 40
        assert payload["errors"] == 0
        assert list(payload["ops"]) == ["top_k"]

    def test_bad_mix_errors(self, rankstore_dir):
        from repro.service import QueryServer

        with QueryServer(
            str(rankstore_dir / "run.rankstore"), port=0
        ).start() as srv:
            rc = main(
                ["bench-traffic", srv.url, "--mix", "top_k"],
                out=io.StringIO(),
            )
        assert rc == 1


class TestServeTeardown:
    """The CLI server against real process signals.

    `kill` (SIGTERM) must tear a sharded server down like Ctrl-C —
    workers reaped, shm segments unlinked.  SIGKILL skips all cleanup by
    definition; the workers' getppid() watch must still reap them (the
    parent-side pipe fds they inherit from forked siblings mean EOF
    never arrives), though the segments leak until an external sweep.
    """

    def _spawn(self, rankstore_dir):
        import os
        import re
        import subprocess
        import sys
        import time
        import urllib.request

        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(rankstore_dir),
             "--shards", "2", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True,
        )
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:\d+", banner)
        assert match, f"no URL in banner: {banner!r} (rc={proc.poll()})"
        url = match.group(0)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(url + "/healthz", timeout=1):
                    break
            except OSError:
                time.sleep(0.1)
        else:
            proc.kill()
            raise AssertionError("server never became healthy")
        return proc, url

    @staticmethod
    def _children_of(pid):
        import subprocess

        out = subprocess.run(
            ["ps", "-o", "pid=", "--ppid", str(pid)],
            capture_output=True, text=True,
        ).stdout
        return [int(tok) for tok in out.split()]

    @staticmethod
    def _wait_dead(pids, timeout=10.0):
        import os
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                alive.append(pid)
            if not alive:
                return []
            time.sleep(0.2)
        return alive

    def _reap(self, proc):
        """Whatever the test proved or failed to prove, leave nothing
        behind: kill the server if still up, then sweep any segments
        its pid published (SIGKILL skips the parent's own unlink)."""
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=15)
        proc.stdout.close()
        self._wait_dead(self._children_of(proc.pid))
        for seg in self._segments(proc.pid):
            seg.unlink()

    @staticmethod
    def _segments(pid):
        from pathlib import Path

        shm = Path("/dev/shm")
        if not shm.is_dir():
            return []
        return list(shm.glob(f"repro_arena_{pid}_*"))

    def test_sigterm_is_graceful(self, rankstore_dir):
        import signal

        proc, _ = self._spawn(rankstore_dir)
        try:
            # 2 shard workers + multiprocessing's resource tracker
            workers = self._children_of(proc.pid)
            assert len(workers) >= 2
            # a file-backed store publishes zero-copy mapped handles:
            # no shm segments exist at any point in the serve lifetime
            assert self._segments(proc.pid) == []
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
            output = proc.stdout.read()
            assert "shutting down" in output
            assert self._wait_dead(workers) == []
            assert self._segments(proc.pid) == []
        finally:
            self._reap(proc)

    def test_sigkilled_parent_reaps_workers(self, rankstore_dir):
        import signal

        proc, _ = self._spawn(rankstore_dir)
        try:
            workers = self._children_of(proc.pid)
            assert len(workers) >= 2
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=15)
            # the getppid() watch polls every second; give it a few
            assert self._wait_dead(workers, timeout=10.0) == []
        finally:
            self._reap(proc)
