"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.events import load_events_npz


@pytest.fixture
def events_file(tmp_path):
    path = tmp_path / "events.npz"
    rc = main(
        ["generate", "askubuntu", "--scale", "0.05", "--out", str(path)],
        out=io.StringIO(),
    )
    assert rc == 0
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompile"])


class TestGenerate:
    def test_npz_roundtrip(self, events_file):
        events = load_events_npz(events_file)
        assert len(events) > 0

    def test_tsv_output(self, tmp_path):
        path = tmp_path / "events.tsv"
        out = io.StringIO()
        rc = main(
            ["generate", "askubuntu", "--scale", "0.05", "--out", str(path)],
            out=out,
        )
        assert rc == 0
        assert path.exists()
        assert "wrote" in out.getvalue()

    def test_unknown_profile_fails(self, tmp_path):
        rc = main(
            ["generate", "nope", "--out", str(tmp_path / "x.npz")],
            out=io.StringIO(),
        )
        assert rc == 1


class TestListInfo:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "wiki-talk" in text and "ia-enron-email" in text

    def test_info(self, events_file):
        out = io.StringIO()
        assert main(["info", events_file], out=out) == 0
        text = out.getvalue()
        assert "events" in text and "shape class" in text

    def test_info_missing_file(self):
        assert main(["info", "/nonexistent.npz"], out=io.StringIO()) == 1


class TestRun:
    def test_run_prints_windows(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "run",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--top", "2",
                "--max-windows", "10",
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "postmortem PageRank over 10 windows" in text
        assert "top-2" in text
        assert "build" in text

    def test_run_options(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "run",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--kernel", "spmv",
                "--partition", "minimax",
                "--max-windows", "6",
            ],
            out=out,
        )
        assert rc == 0


class TestCompareSweep:
    def test_compare(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "compare",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--max-windows", "8",
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "streaming" in text and "postmortem vs streaming" in text

    def test_sweep(self, events_file):
        out = io.StringIO()
        rc = main(
            [
                "sweep",
                events_file,
                "--delta-days", "180",
                "--sw", "5184000",
                "--max-windows", "8",
                "--workers", "8",
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "simulated makespan" in text and "best:" in text
