"""Unit tests for the discrete-event schedule simulator and cost model."""

import numpy as np
import pytest

from repro.errors import SchedulerError, ValidationError
from repro.parallel.cost_model import (
    CostModel,
    calibrate_cost_model,
    default_cost_model,
)
from repro.parallel.partitioners import AUTO, SIMPLE, STATIC
from repro.parallel.simulator import (
    EXACT_SIMULATION_LIMIT,
    simulate_chunk_schedule,
    simulate_parallel_for,
)


class TestCostModel:
    def test_defaults_positive(self):
        m = default_cost_model()
        assert m.c_edge > 0 and m.c_vertex > 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            CostModel(c_edge=-1.0)

    def test_spmv_cost_linear(self):
        m = CostModel(c_edge=1.0, c_vertex=0.5, c_active=0.0)
        assert m.spmv_iteration_cost(10, 4) == pytest.approx(12.0)
        assert m.spmv_window_cost(10, 4, 3) == pytest.approx(36.0)

    def test_spmm_amortizes_structure(self):
        """Per-window SpMM cost must undercut SpMV and approach the
        per-column floor as k grows — the Section 4.4 effect."""
        m = CostModel(c_edge=1.0, c_vertex=0.0, c_active=0.5)
        spmv = m.spmv_window_cost(nnz=100, n_vertices=10, iterations=1)
        spmm8 = m.spmm_window_cost(100, 10, k=8, iterations=1, active_edges=20)
        spmm16 = m.spmm_window_cost(100, 10, 16, 1, 20)
        assert spmm8 < spmv
        assert spmm16 < spmm8
        # floor: active-edge math cannot be amortized away
        assert spmm16 > m.c_active * 20

    def test_batch_iteration_cost(self):
        m = CostModel(c_edge=1.0, c_vertex=2.0, c_active=0.5)
        c = m.spmm_iteration_cost(nnz=10, n_vertices=3, k=4,
                                  sum_active_edges=8)
        assert c == pytest.approx(10 + 4 + 24)

    def test_with_overrides(self):
        m = default_cost_model().with_overrides(c_edge=9.0)
        assert m.c_edge == 9.0

    def test_calibration_produces_sane_magnitudes(self):
        m = calibrate_cost_model(sizes=(4_000, 8_000), min_seconds=0.001)
        # per-event cost on any modern machine: between 0.1 ns and 10 us
        assert 1e-10 < m.c_edge < 1e-5
        assert m.c_active == pytest.approx(0.5 * m.c_edge)
        assert m.c_task > 0 and m.c_region > m.c_task


class TestChunkSchedule:
    def test_single_worker_is_sum(self):
        costs = np.array([1.0, 2.0, 3.0])
        assert simulate_chunk_schedule(costs, 1) == pytest.approx(6.0)

    def test_perfect_parallelism(self):
        costs = np.ones(4)
        assert simulate_chunk_schedule(costs, 4) == pytest.approx(1.0)

    def test_greedy_list_scheduling(self):
        # chunks [3, 3, 3, 1, 1, 1] on 2 workers, in order:
        # w0: 3+3=6? greedy: w0:3, w1:3, then w0 and w1 tie -> 3+3, 1s fill
        costs = np.array([3.0, 3.0, 3.0, 1.0, 1.0, 1.0])
        got = simulate_chunk_schedule(costs, 2)
        assert got == pytest.approx(6.0)

    def test_bounded_below_by_max_chunk(self):
        costs = np.array([10.0, 0.1, 0.1])
        assert simulate_chunk_schedule(costs, 8) == pytest.approx(10.0)

    def test_static_round_robin_imbalance(self):
        # alternating heavy/light chunks: round-robin puts all heavy on
        # worker 0 -> makespan = sum of heavies; stealing interleaves
        costs = np.array([4.0, 0.0, 4.0, 0.0, 4.0, 0.0])
        static = simulate_chunk_schedule(costs, 2, steals=False)
        stealing = simulate_chunk_schedule(costs, 2, steals=True)
        assert static == pytest.approx(12.0)
        assert stealing < static

    def test_overhead_charged_per_chunk(self):
        costs = np.ones(8)
        base = simulate_chunk_schedule(costs, 2)
        with_oh = simulate_chunk_schedule(costs, 2, overhead_per_chunk=0.5)
        assert with_oh == pytest.approx(base + 4 * 0.5)

    def test_large_input_uses_bound(self):
        n = EXACT_SIMULATION_LIMIT + 1
        costs = np.ones(n)
        got = simulate_chunk_schedule(costs, 16)
        expected = n / 16 + (1 - 1 / 16) * 1.0
        assert got == pytest.approx(expected)

    def test_bound_close_to_exact(self):
        rng = np.random.default_rng(5)
        costs = rng.random(5_000)
        exact = simulate_chunk_schedule(costs, 8)
        bound = costs.sum() / 8 + (1 - 1 / 8) * costs.max()
        assert exact <= bound + 1e-9
        assert exact >= costs.sum() / 8 - 1e-9

    def test_empty(self):
        assert simulate_chunk_schedule(np.empty(0), 4) == 0.0

    def test_rejects_bad_input(self):
        with pytest.raises(SchedulerError):
            simulate_chunk_schedule(np.ones(2), 0)
        with pytest.raises(SchedulerError):
            simulate_chunk_schedule(np.array([-1.0]), 2)
        with pytest.raises(SchedulerError):
            simulate_chunk_schedule(np.ones((2, 2)), 2)


class TestParallelFor:
    def test_speedup_saturates_at_items(self):
        m = CostModel(c_task=0.0, c_region=0.0)
        items = np.ones(4)
        t = simulate_parallel_for(items, 1, SIMPLE, n_workers=16, model=m)
        assert t == pytest.approx(1.0)

    def test_granularity_reduces_parallelism(self):
        m = CostModel(c_task=0.0, c_region=0.0)
        items = np.ones(16)
        fine = simulate_parallel_for(items, 1, SIMPLE, 8, m)
        coarse = simulate_parallel_for(items, 8, SIMPLE, 8, m)
        assert fine == pytest.approx(2.0)
        assert coarse == pytest.approx(8.0)

    def test_auto_beats_simple_on_overhead(self):
        m = CostModel(c_task=1.0, c_region=0.0)
        items = np.full(10_000, 1e-6)
        t_simple = simulate_parallel_for(items, 1, SIMPLE, 8, m)
        t_auto = simulate_parallel_for(items, 1, AUTO, 8, m)
        assert t_auto < t_simple

    def test_empty_region_costs_region_overhead(self):
        m = CostModel(c_region=2.5)
        assert simulate_parallel_for(np.empty(0), 1, SIMPLE, 4, m) == 2.5
