"""Kernel-backend registry: plan structure, bitwise parity of the
numpy/pcpm/numba backends across all four kernels, the ``backend="auto"``
cost-model decision, numba-absent degradation, and the driver/CLI
threading of ``backend``."""

from __future__ import annotations

import sys
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.models import PostmortemDriver, PostmortemOptions
from repro.pagerank import (
    PagerankConfig,
    Workspace,
    pagerank_window,
    pagerank_window_pb,
    pagerank_window_weighted,
    pagerank_windows_spmm,
)
from repro.pagerank.backends import (
    BACKEND_NAMES,
    NumbaBackend,
    NumpyBackend,
    PcpmBackend,
    backend_availability,
    create_backend,
    numba_available,
    resolve_backend,
    validate_backend_name,
)
from repro.pagerank.backends import numba_backend as numba_mod
from repro.pagerank.backends import registry as registry_mod
from repro.pagerank.backends.pcpm import DEFAULT_CACHE_BUDGET, PcpmPlan
from repro.parallel.cost_model import CostModel, choose_backend
from repro.runtime.context import DriverContext
from tests.conftest import random_events
from tests.test_edge_compaction import CFG, _views_regimes, make_view

#: a tiny budget (8 vertices per partition) so even the small test graphs
#: span several partitions
TINY_BUDGET = 64


@pytest.fixture
def no_numba(monkeypatch):
    """Simulate an environment without numba and reset the JIT cache."""
    monkeypatch.setitem(sys.modules, "numba", None)
    monkeypatch.setitem(numba_mod._JIT, "checked", False)
    monkeypatch.setitem(numba_mod._JIT, "pull_1d", None)
    yield
    monkeypatch.setitem(numba_mod._JIT, "checked", False)
    monkeypatch.setitem(numba_mod._JIT, "pull_1d", None)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_names(self):
        assert BACKEND_NAMES == ("auto", "numpy", "pcpm", "numba")
        for name in BACKEND_NAMES:
            assert validate_backend_name(name) == name
        with pytest.raises(ValidationError):
            validate_backend_name("gpu")

    def test_create(self):
        assert isinstance(create_backend("numpy"), NumpyBackend)
        assert isinstance(create_backend("pcpm"), PcpmBackend)
        assert isinstance(create_backend("numba"), NumbaBackend)
        with pytest.raises(ValidationError):
            create_backend("auto")

    def test_cache_budget_shapes_partition_width(self):
        assert create_backend("pcpm", 64).width == 8
        assert create_backend("pcpm", 1).width == 1
        with pytest.raises(ValidationError):
            create_backend("pcpm", 0)

    def test_availability_covers_concrete_backends(self):
        avail = backend_availability()
        assert set(avail) == {"numpy", "pcpm", "numba"}
        assert avail["numpy"][0] and avail["pcpm"][0]
        assert avail["numba"][0] == numba_available()
        assert all(note for _, note in avail.values())

    def test_config_validates(self):
        assert PagerankConfig(backend="pcpm").backend == "pcpm"
        with pytest.raises(ValidationError):
            PagerankConfig(backend="gpu")
        with pytest.raises(ValidationError):
            PagerankConfig(cache_budget=0)

    def test_context_validates(self):
        assert DriverContext(backend="numba").backend == "numba"
        with pytest.raises(ValidationError):
            DriverContext(backend="gpu")


# ---------------------------------------------------------------------------
# plan structure
# ---------------------------------------------------------------------------
class TestPlanStructure:
    def _plan(self, rows, n_rows, width, **kw):
        rows = np.asarray(rows, dtype=np.int64)
        col = np.zeros(rows.size, dtype=np.int64)
        return PcpmPlan(col, rows, n_rows, width, **kw)

    def test_partition_spans_and_local_ids(self):
        # destinations 0..9 over width-4 partitions: {0-3}, {4-7}, {8-9}
        rows = [0, 0, 1, 3, 4, 4, 5, 8, 9, 9]
        plan = self._plan(rows, 10, 4)
        assert plan.n_parts == 3
        assert plan.pstart.tolist() == [0, 4, 7, 10]
        assert plan.dst_local.tolist() == [0, 0, 1, 3, 0, 0, 1, 0, 1, 1]

    def test_unsorted_rows_rejected(self):
        with pytest.raises(ValidationError):
            self._plan([3, 1, 2], 5, 4)

    def test_empty_edge_list(self):
        plan = self._plan([], 6, 4)
        assert plan.pstart.tolist() == [0, 0, 0]
        out = plan.propagate(np.ones(6, dtype=np.float64))
        assert np.array_equal(out, np.zeros(6, dtype=np.float64))

    def test_workspace_pools_dst_local(self):
        ws = Workspace()
        rows = np.array([0, 2, 5, 7], dtype=np.int64)
        a = self._plan(rows, 8, 4, workspace=ws, key="p", capacity=16)
        b = self._plan(rows, 8, 4, workspace=ws, key="p", capacity=16)
        assert np.shares_memory(a.dst_local, b.dst_local)
        assert np.array_equal(a.dst_local, rows % 4)

    def test_propagate_matches_flat_reference(self):
        rng = np.random.default_rng(7)
        n, m = 30, 200
        rows = np.sort(rng.integers(0, n, m)).astype(np.int64)
        col = rng.integers(0, n, m).astype(np.int64)
        w = rng.random(n)
        mask = rng.random(m) < 0.6
        flat = NumpyBackend().make_plan(col, rows, n)
        part = PcpmBackend(TINY_BUDGET).make_plan(col, rows, n)
        assert np.array_equal(
            part.propagate(w, mask=mask), flat.propagate(w, mask=mask)
        )
        W = rng.random((n, 3))
        active = rng.random((m, 3)) < 0.6
        assert np.array_equal(
            part.propagate_batch(W, active),
            flat.propagate_batch(W, active),
        )


# ---------------------------------------------------------------------------
# bitwise parity: numpy vs pcpm vs numba vs auto, all four kernels
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("use_workspace", [False, True], ids=["owned", "ws"])
@pytest.mark.parametrize(
    "name,view", _views_regimes(), ids=[n for n, _ in _views_regimes()]
)
class TestBackendParity:
    OTHERS = ("pcpm", "numba", "auto")

    def _cfg(self, backend):
        return replace(CFG, backend=backend, cache_budget=TINY_BUDGET)

    def _solve(self, kernel, view, backend, use_workspace, **kw):
        ws = Workspace() if use_workspace else None
        return kernel(view, self._cfg(backend), workspace=ws, **kw)

    def test_spmv(self, name, view, use_workspace):
        base = self._solve(pagerank_window, view, "numpy", use_workspace)
        for backend in self.OTHERS:
            r = self._solve(pagerank_window, view, backend, use_workspace)
            assert np.array_equal(r.values, base.values), backend
            assert r.iterations == base.iterations

    def test_weighted(self, name, view, use_workspace):
        base = self._solve(
            pagerank_window_weighted, view, "numpy", use_workspace
        )
        for backend in self.OTHERS:
            r = self._solve(
                pagerank_window_weighted, view, backend, use_workspace
            )
            assert np.array_equal(r.values, base.values), backend
            assert r.iterations == base.iterations

    def test_spmm(self, name, view, use_workspace):
        views = [view] * 3
        ws0 = Workspace() if use_workspace else None
        base = pagerank_windows_spmm(views, self._cfg("numpy"), workspace=ws0)
        for backend in self.OTHERS:
            ws = Workspace() if use_workspace else None
            r = pagerank_windows_spmm(
                views, self._cfg(backend), workspace=ws
            )
            assert np.array_equal(r.values, base.values), backend
            assert np.array_equal(
                r.iterations_per_window, base.iterations_per_window
            )

    def test_pb(self, name, view, use_workspace):
        base = self._solve(pagerank_window_pb, view, "numpy", use_workspace)
        for backend in self.OTHERS:
            r = self._solve(pagerank_window_pb, view, backend, use_workspace)
            assert np.array_equal(r.values, base.values), backend
            assert r.iterations == base.iterations

    def test_composes_with_edge_path(self, name, view, use_workspace):
        base = self._solve(pagerank_window, view, "numpy", use_workspace)
        for path in ("masked", "compacted"):
            cfg = replace(self._cfg("pcpm"), edge_path=path)
            ws = Workspace() if use_workspace else None
            r = pagerank_window(view, cfg, workspace=ws)
            assert np.array_equal(r.values, base.values), path


def test_backends_share_one_workspace():
    """Different backends keyed into the same workspace must not corrupt
    one another's pooled plans."""
    view = make_view(seed=47)
    ws = Workspace()
    base = pagerank_window(view, replace(CFG, backend="numpy"), workspace=ws)
    for backend in ("pcpm", "numba", "numpy"):
        cfg = replace(CFG, backend=backend, cache_budget=TINY_BUDGET)
        r = pagerank_window(view, cfg, workspace=ws)
        assert np.array_equal(r.values, base.values), backend


# ---------------------------------------------------------------------------
# adaptive selection
# ---------------------------------------------------------------------------
class TestBackendSelection:
    def test_rank_vector_fits_cache_stays_flat(self):
        # 1k vertices = 8 KB of rank: partitioning buys nothing
        assert choose_backend(1_000_000, 1_000, 50, DEFAULT_CACHE_BUDGET) \
            == "numpy"

    def test_empty_structure_stays_flat(self):
        assert choose_backend(0, 1_000_000, 50, DEFAULT_CACHE_BUDGET) \
            == "numpy"

    def test_large_dense_graph_partitions(self):
        assert choose_backend(
            20_000_000, 1_000_000, 50, DEFAULT_CACHE_BUDGET
        ) == "pcpm"

    def test_sparse_large_graph_stays_flat(self):
        # huge rank vector but almost no edges: per-partition overhead
        # dominates
        assert choose_backend(
            50_000, 1_000_000, 50, DEFAULT_CACHE_BUDGET
        ) == "numpy"

    def test_crossover_moves_with_bin_cost(self):
        args = (20_000_000, 1_000_000, 2, DEFAULT_CACHE_BUDGET)
        assert CostModel(c_bin=0.0).choose_backend(*args) == "pcpm"
        assert CostModel(c_bin=1.0).choose_backend(*args) == "numpy"

    def test_unfused_never_partitions(self):
        # without the JIT there is no locality discount, so the binning
        # pass can never amortize — even on the most PCPM-friendly shape
        assert choose_backend(
            20_000_000, 1_000_000, 1_000, DEFAULT_CACHE_BUDGET,
            fused=False,
        ) == "numpy"

    def test_resolve_pinned_names_bypass_model(self):
        for name, cls in (
            ("numpy", NumpyBackend), ("pcpm", PcpmBackend),
            ("numba", NumbaBackend),
        ):
            cfg = PagerankConfig(backend=name)
            assert isinstance(resolve_backend(cfg, 10, 10), cls)

    def test_resolve_auto_uses_cost_model(self):
        cfg = PagerankConfig(backend="auto")
        small = resolve_backend(cfg, 1_000_000, 1_000)
        assert small.name == "numpy"

    def test_resolve_auto_tracks_jit_availability(self, monkeypatch):
        # the PCPM-friendly shape: partitioned *iff* the fused reduce
        # exists, and then always as the numba implementation
        cfg = PagerankConfig(backend="auto")
        monkeypatch.setattr(
            registry_mod, "numba_available", lambda: True
        )
        assert resolve_backend(cfg, 20_000_000, 1_000_000, 50).name \
            == "numba"
        monkeypatch.setattr(
            registry_mod, "numba_available", lambda: False
        )
        assert resolve_backend(cfg, 20_000_000, 1_000_000, 50).name \
            == "numpy"

    def test_resolve_auto_honours_cache_budget(self, monkeypatch):
        # same structure, huge per-partition budget: no win left even
        # with the JIT present
        monkeypatch.setattr(
            registry_mod, "numba_available", lambda: True
        )
        cfg = PagerankConfig(backend="auto", cache_budget=1 << 40)
        assert resolve_backend(cfg, 20_000_000, 1_000_000, 50).name \
            == "numpy"


# ---------------------------------------------------------------------------
# numba degradation
# ---------------------------------------------------------------------------
class TestNumbaDegradation:
    def test_availability_reports_false(self, no_numba):
        assert numba_available() is False
        assert backend_availability()["numba"][0] is False

    def test_plan_falls_back_bitwise(self, no_numba):
        rng = np.random.default_rng(11)
        n, m = 20, 120
        rows = np.sort(rng.integers(0, n, m)).astype(np.int64)
        col = rng.integers(0, n, m).astype(np.int64)
        w = rng.random(n)
        jit = NumbaBackend(TINY_BUDGET).make_plan(col, rows, n)
        ref = PcpmBackend(TINY_BUDGET).make_plan(col, rows, n)
        assert np.array_equal(jit.propagate(w), ref.propagate(w))

    def test_kernel_with_numba_backend_still_exact(self, no_numba):
        view = make_view(seed=53)
        base = pagerank_window(view, replace(CFG, backend="numpy"))
        r = pagerank_window(
            view, replace(CFG, backend="numba", cache_budget=TINY_BUDGET)
        )
        assert np.array_equal(r.values, base.values)


# ---------------------------------------------------------------------------
# work attribution
# ---------------------------------------------------------------------------
class TestWorkStats:
    def test_kernels_record_phase_seconds(self):
        view = make_view(seed=59)
        for backend in ("numpy", "pcpm"):
            cfg = replace(CFG, backend=backend, cache_budget=TINY_BUDGET)
            r = pagerank_window(view, cfg)
            assert r.work.binning_seconds >= 0.0
            assert r.work.propagate_seconds > 0.0

    def test_merge_accumulates(self):
        from repro.pagerank import WorkStats

        a = WorkStats(binning_seconds=0.25, propagate_seconds=1.0)
        b = WorkStats(binning_seconds=0.5, propagate_seconds=0.5)
        a.merge(b)
        assert a.binning_seconds == 0.75
        assert a.propagate_seconds == 1.5


# ---------------------------------------------------------------------------
# driver / context / CLI threading
# ---------------------------------------------------------------------------
class TestDriverThreading:
    def _run(self, backend, kernel="spmv", context=None):
        events = random_events(seed=61, n_events=300)
        spec = WindowSpec.covering(events, delta=3_000, sw=1_500)
        cfg = replace(CFG, backend=backend, cache_budget=TINY_BUDGET)
        driver = PostmortemDriver(
            events, spec, cfg,
            PostmortemOptions(n_multiwindows=2, kernel=kernel),
            context=context,
        )
        return driver.run()

    @pytest.mark.parametrize("kernel", ["spmv", "spmm"])
    def test_driver_backends_agree(self, kernel):
        runs = {
            b: self._run(b, kernel)
            for b in ("numpy", "pcpm", "numba", "auto")
        }
        base = runs["numpy"]
        for b in ("pcpm", "numba", "auto"):
            for w_base, w in zip(base.windows, runs[b].windows):
                assert np.array_equal(w_base.values, w.values), b
                assert w_base.iterations == w.iterations

    def test_metadata_records_backend(self):
        assert self._run("pcpm").metadata["backend"] == "pcpm"
        assert self._run("auto").metadata["backend"] == "auto"

    def test_context_override_wins(self):
        ctx = DriverContext(backend="pcpm")
        via_ctx = self._run("numpy", context=ctx)
        assert via_ctx.metadata["backend"] == "pcpm"


def test_cli_run_accepts_backend(tmp_path):
    import io

    from repro.cli import main
    from repro.events import save_events_npz

    events = random_events(seed=67, n_events=200)
    path = tmp_path / "ev.npz"
    save_events_npz(events, str(path))
    outs = {}
    for backend in ("numpy", "pcpm"):
        buf = io.StringIO()
        rc = main(
            [
                "run", str(path), "--delta-days", "0.03", "--sw", "1000",
                "--kernel", "spmv", "--backend", backend,
                "--cache-budget", str(TINY_BUDGET),
            ],
            out=buf,
        )
        assert rc == 0
        outs[backend] = buf.getvalue()
    table = {
        k: "\n".join(
            line for line in v.splitlines() if not line.startswith("total")
        )
        for k, v in outs.items()
    }
    assert table["numpy"] == table["pcpm"]


def test_cli_backends_subcommand():
    import io

    from repro.cli import main

    buf = io.StringIO()
    assert main(["backends"], out=buf) == 0
    text = buf.getvalue()
    for needle in ("numpy", "pcpm", "numba", "c_edge_local", "c_bin",
                   "cache budget"):
        assert needle in text, needle
