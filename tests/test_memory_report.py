"""Tests for the Section 4.1 memory accounting."""

import pytest

from repro.analysis import memory_report
from repro.analysis.memory import ENCODING_BYTES
from repro.events import WindowSpec
from repro.graph import MultiWindowPartition
from tests.conftest import random_events


@pytest.fixture
def partition():
    events = random_events(n_vertices=40, n_events=800, seed=71)
    spec = WindowSpec.covering(events, delta=3_000, sw=900)
    return MultiWindowPartition(events, spec, 4), events


class TestMemoryReport:
    def test_model_formula(self, partition):
        part, _ = partition
        report = memory_report(part)
        for g_mem, g in zip(report.graphs, part.graphs):
            expected = ENCODING_BYTES * (g.n_local_vertices + 2 * g.nnz)
            assert g_mem.model_bytes == expected
            assert g_mem.n_events == g.nnz

    def test_allocated_at_least_model(self, partition):
        part, _ = partition
        report = memory_report(part)
        # the real structure stores both orientations + masks, so the
        # allocation always exceeds the paper's single-orientation formula
        assert report.total_allocated_bytes >= report.total_model_bytes

    def test_raw_bytes(self, partition):
        part, events = partition
        report = memory_report(part)
        assert report.raw_event_bytes == 3 * ENCODING_BYTES * len(events)
        assert report.overhead_vs_raw > 0

    def test_replication_consistent(self, partition):
        part, _ = partition
        report = memory_report(part)
        assert report.replication_factor == pytest.approx(
            part.replication_factor
        )

    def test_workspace_scales_with_vector_length(self, partition):
        part, _ = partition
        report = memory_report(part)
        w1 = report.pagerank_workspace_bytes(1)
        w16 = report.pagerank_workspace_bytes(16)
        assert w16 == 16 * w1

    def test_more_partitions_more_memory(self):
        events = random_events(n_vertices=40, n_events=800, seed=72)
        spec = WindowSpec.covering(events, delta=3_000, sw=900)
        small = memory_report(MultiWindowPartition(events, spec, 1))
        large = memory_report(MultiWindowPartition(events, spec, 8))
        assert (
            large.total_allocated_bytes >= small.total_allocated_bytes
        )
