"""Tests for the observable LRU cache (repro.service.cache)."""

from __future__ import annotations

import threading

import pytest

from repro.service import LRUCache


class TestLRU:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("b", 7) == 7

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")       # refresh a: b is now least-recent
        cache.put("c", 3)    # evicts b
        assert "a" in cache and "c" in cache
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_counters(self):
        cache = LRUCache(2)
        cache.get("x")
        cache.put("x", 1)
        cache.get("x")
        cache.get("x")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.as_dict()["hit_rate"] == pytest.approx(0.6667)

    def test_hit_rate_empty(self):
        assert LRUCache(1).stats.hit_rate == 0.0

    def test_get_or_compute(self):
        cache = LRUCache(2)
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1

    def test_overwrite_same_key_no_eviction(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats.evictions == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_thread_safety(self):
        cache = LRUCache(8)

        def worker(seed):
            for i in range(500):
                key = (seed * i) % 16
                cache.get_or_compute(key, lambda k=key: k * 2)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(1, 5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 8
        stats = cache.stats
        assert stats.hits + stats.misses == 2_000
