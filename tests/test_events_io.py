"""Unit tests for event-set serialization."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import (
    load_events_npz,
    load_events_tsv,
    save_events_npz,
    save_events_tsv,
)
from tests.conftest import random_events


class TestTsv:
    def test_roundtrip(self, tmp_path):
        es = random_events(seed=11)
        path = tmp_path / "events.tsv"
        save_events_tsv(es, path)
        back = load_events_tsv(path, n_vertices=es.n_vertices)
        assert back == es

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "commented.tsv"
        path.write_text("# header\n0\t1\t5\n% other comment\n1\t0\t7\n")
        es = load_events_tsv(path)
        assert len(es) == 2
        assert es.time.tolist() == [5, 7]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("# nothing\n")
        es = load_events_tsv(path)
        assert len(es) == 0

    def test_wrong_columns(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(ValidationError):
            load_events_tsv(path)


class TestNpz:
    def test_roundtrip(self, tmp_path):
        es = random_events(seed=12)
        path = tmp_path / "events.npz"
        save_events_npz(es, path)
        back = load_events_npz(path)
        assert back == es
        assert back.n_vertices == es.n_vertices

    def test_missing_key(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, src=np.array([0]), dst=np.array([1]))
        with pytest.raises(ValidationError):
            load_events_npz(path)
