"""Tests for the query engine (repro.service.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.models import PostmortemDriver, PostmortemOptions
from repro.service import QueryEngine, RankStoreWriter, write_store


@pytest.fixture
def store_path(tmp_path):
    """A small hand-built store: 4 windows x 6 vertices, window 2 empty."""
    rows = np.array(
        [
            [0.4, 0.3, 0.2, 0.1, 0.0, 0.0],
            [0.0, 0.5, 0.1, 0.2, 0.2, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],  # empty window: no active set
            [0.1, 0.0, 0.4, 0.0, 0.3, 0.2],
        ]
    )
    path = tmp_path / "small.rankstore"
    with RankStoreWriter(path, n_windows=4, n_vertices=6,
                         dtype=np.float64) as w:
        for i, row in enumerate(rows):
            w.write_window(i, row)
    return path


@pytest.fixture
def engine(store_path):
    eng = QueryEngine(store_path)
    yield eng
    eng.close()


class TestPointQueries:
    def test_rank(self, engine):
        assert engine.rank(1, 0) == pytest.approx(0.3)

    def test_rank_inactive_vertex_is_zero(self, engine):
        # vertex 5 is absent from window 0's active set
        assert engine.rank(5, 0) == 0.0

    def test_rank_vertex_out_of_range(self, engine):
        with pytest.raises(ValidationError, match="vertex 6"):
            engine.rank(6, 0)

    def test_rank_window_out_of_range(self, engine):
        with pytest.raises(ValidationError, match="window index 4"):
            engine.rank(0, 4)

    def test_top_k_order_and_scores(self, engine):
        assert engine.top_k(0, 3) == [(0, 0.4), (1, 0.3), (2, 0.2)]

    def test_top_k_excludes_inactive(self, engine):
        # only 4 vertices are active in window 0; k=10 returns just those
        assert [v for v, _ in engine.top_k(0, 10)] == [0, 1, 2, 3]

    def test_top_k_empty_window(self, engine):
        assert engine.top_k(2, 5) == []

    def test_top_k_bad_k(self, engine):
        with pytest.raises(ValidationError, match="k must be > 0"):
            engine.top_k(0, 0)


class TestRangeQueries:
    def test_trajectory_full_range(self, engine):
        traj = engine.trajectory(2)
        np.testing.assert_allclose(traj, [0.2, 0.1, 0.0, 0.4])

    def test_trajectory_subrange(self, engine):
        np.testing.assert_allclose(engine.trajectory(2, 1, 3), [0.1, 0.0])

    def test_trajectory_bad_range(self, engine):
        with pytest.raises(ValidationError):
            engine.trajectory(0, 3, 2)
        with pytest.raises(ValidationError):
            engine.trajectory(0, 0, 99)

    def test_movers_sorted_by_magnitude(self, engine):
        movers = engine.movers(0, 1, k=6)
        deltas = [abs(m["delta"]) for m in movers]
        assert deltas == sorted(deltas, reverse=True)
        top = movers[0]
        assert top["vertex"] == 0
        assert top["delta"] == pytest.approx(-0.4)
        assert top["rank_from"] == pytest.approx(0.4)
        assert top["rank_to"] == pytest.approx(0.0)

    def test_movers_identical_windows_empty(self, engine):
        assert engine.movers(1, 1, k=3) == []


class TestSingleWindowStore:
    def test_all_queries(self, tmp_path):
        path = tmp_path / "one.rankstore"
        with RankStoreWriter(path, n_windows=1, n_vertices=3) as w:
            w.write_window(0, np.array([0.5, 0.3, 0.2]))
        eng = QueryEngine(path)
        assert eng.top_k(0, 2) == [
            (0, pytest.approx(0.5)), (1, pytest.approx(0.3))
        ]
        assert eng.rank(2, 0) == pytest.approx(0.2)
        assert eng.trajectory(0).shape == (1,)
        assert eng.movers(0, 0) == []
        eng.close()


class TestAgainstRun:
    """Engine answers match the driver's vectors, including across a
    multi-window partition boundary."""

    @pytest.fixture
    def run_setup(self, events, config, tmp_path):
        spec = WindowSpec.covering(events, delta=3_000, sw=1_000)
        options = PostmortemOptions(n_multiwindows=3)
        run = PostmortemDriver(events, spec, config, options).run()
        path = tmp_path / "run.rankstore"
        write_store(run, path, spec=spec, dtype=np.float64)
        return run, spec, options, QueryEngine(path)

    def test_top_k_matches_window_result(self, run_setup):
        run, spec, _, engine = run_setup
        for w in run.windows:
            expected = w.top_vertices(5)
            got = engine.top_k(w.window_index, 5)
            for (ve, se), (vg, sg) in zip(expected, got):
                assert se == pytest.approx(sg, abs=1e-12)

    def test_trajectory_spans_partition_boundary(self, run_setup):
        run, spec, options, engine = run_setup
        # the uniform partition splits windows into 3 contiguous chunks;
        # a full-range trajectory crosses both internal boundaries
        assert options.n_multiwindows == 3
        vertex = 7
        traj = engine.trajectory(vertex, 0, spec.n_windows)
        expected = np.array([w.values[vertex] for w in run.windows])
        np.testing.assert_array_equal(traj, expected)

    def test_windows_at_timestamp(self, run_setup):
        run, spec, _, engine = run_setup
        t = spec.t0 + spec.delta // 2
        assert engine.windows_at(t) == list(spec.windows_containing(t))


class TestCloseSafety:
    """Regression: cached slices must be materialized copies, never mmap
    views — touching a previously returned slice after ``close()`` used
    to segfault the interpreter (use-after-unmap)."""

    def test_cached_slice_owns_its_data(self, engine):
        s = engine.window_slice(0)
        assert s.base is None
        assert s.flags.owndata

    def test_trajectory_owns_its_data(self, engine):
        traj = engine.trajectory(2)
        assert traj.base is None
        assert traj.flags.owndata

    def test_results_stay_readable_after_close(self, store_path):
        eng = QueryEngine(store_path)
        s = eng.window_slice(0)
        tk = eng.top_k(1, 1)
        traj = eng.trajectory(2)
        eng.close()
        np.testing.assert_allclose(s, [0.4, 0.3, 0.2, 0.1, 0.0, 0.0])
        assert tk == [(1, pytest.approx(0.5))]
        np.testing.assert_allclose(traj, [0.2, 0.1, 0.0, 0.4])

    def test_close_clears_caches(self, store_path):
        eng = QueryEngine(store_path)
        eng.top_k(0, 2)
        assert len(eng.slice_cache) == 1
        assert len(eng.topk_cache) == 1
        eng.close()
        assert len(eng.slice_cache) == 0
        assert len(eng.topk_cache) == 0


class TestBatch:
    def test_batch_matches_individual(self, engine):
        queries = [
            {"op": "top_k", "window": 0, "k": 2},
            {"op": "rank", "vertex": 1, "window": 1},
            {"op": "movers", "from": 0, "to": 3, "k": 2},
            {"op": "trajectory", "vertex": 2, "start": 0, "stop": 4},
            {"op": "top_k", "window": 0, "k": 3},
        ]
        results = engine.batch(queries)
        assert all(r["ok"] for r in results)
        assert results[0]["result"] == [(0, 0.4), (1, 0.3)]
        assert results[1]["result"] == pytest.approx(0.5)
        assert results[4]["result"] == engine.top_k(0, 3)

    def test_batch_bad_query_does_not_poison(self, engine):
        results = engine.batch(
            [
                {"op": "top_k", "window": 99},
                {"op": "nope"},
                {"op": "rank", "vertex": 0, "window": 0},
                {"op": "rank"},
            ]
        )
        assert [r["ok"] for r in results] == [False, False, True, False]
        assert "out of range" in results[0]["error"]

    def test_batch_groups_share_slices(self, store_path):
        engine = QueryEngine(store_path, slice_cache_size=1)
        engine.batch(
            [
                {"op": "rank", "vertex": 0, "window": 0},
                {"op": "rank", "vertex": 0, "window": 1},
                {"op": "rank", "vertex": 1, "window": 0},
                {"op": "rank", "vertex": 1, "window": 1},
                {"op": "rank", "vertex": 2, "window": 0},
                {"op": "rank", "vertex": 2, "window": 1},
            ]
        )
        # grouped by window: 2 decodes despite a 1-slot cache, not 6
        assert engine.slice_cache.stats.misses == 2
        assert engine.slice_cache.stats.hits == 4
        engine.close()

    def test_stats_shape(self, engine):
        engine.top_k(0, 2)
        engine.top_k(0, 2)
        stats = engine.stats()
        assert stats["topk_cache"]["hits"] == 1
        assert stats["topk_cache"]["misses"] == 1
        assert 0.0 <= stats["slice_cache"]["hit_rate"] <= 1.0
