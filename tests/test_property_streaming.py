"""Property-based tests for the streaming substrate and the scheduler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import TemporalEventSet, WindowSpec
from repro.graph import build_csr_from_edges
from repro.models.schedule import spmm_region_schedule
from repro.parallel.simulator import simulate_chunk_schedule
from repro.streaming import StreamingGraph
from repro.streaming.edge_blocks import EdgeBlockAdjacency


@st.composite
def event_sets(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    m = draw(st.integers(min_value=1, max_value=60))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    t = draw(st.lists(st.integers(0, 150), min_size=m, max_size=m))
    return TemporalEventSet(src, dst, t, n_vertices=n)


@given(event_sets(), st.integers(1, 60), st.integers(1, 40),
       st.integers(1, 5))
@settings(max_examples=100, deadline=None)
def test_streaming_state_always_matches_rebuild(events, delta, sw, block_size):
    """After any sequence of slides, the streaming structure equals the
    from-scratch window graph — the core streaming-correctness invariant."""
    spec = WindowSpec.covering(events, delta=delta, sw=sw)
    stream = StreamingGraph(events, block_size=block_size)
    for w in spec:
        stream.advance_to(w)
        got, _ = stream.snapshot()
        lo, hi = events.time_slice_indices(w.t_start, w.t_end)
        expected = build_csr_from_edges(
            events.src[lo:hi], events.dst[lo:hi], events.n_vertices
        )
        assert got == expected
        stream.adjacency.check_invariants()


@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),  # src
            st.integers(0, 5),  # dst
            st.integers(0, 50),  # time
        ),
        min_size=1,
        max_size=40,
    ),
    st.integers(1, 4),
)
@settings(max_examples=100, deadline=None)
def test_edge_blocks_insert_expire_conservation(entries, block_size):
    adj = EdgeBlockAdjacency(6, block_size=block_size)
    src = np.array([e[0] for e in entries], dtype=np.int64)
    dst = np.array([e[1] for e in entries], dtype=np.int64)
    t = np.array([e[2] for e in entries], dtype=np.int64)
    adj.insert_batch(src, dst, t)
    assert adj.n_entries == len(entries)
    cut = 25
    removed = adj.expire_before(cut)
    assert removed == int((t < cut).sum())
    assert adj.n_entries == int((t >= cut).sum())
    adj.check_invariants()


@given(st.integers(0, 20), st.integers(1, 200), st.integers(1, 16))
@settings(max_examples=150, deadline=None)
def test_spmm_schedule_partitions_windows(first, n, L):
    batches = spmm_region_schedule(first, n, L)
    seen = [w for b in batches for w in b.windows]
    assert sorted(seen) == list(range(first, first + n))
    solved = set()
    for b in batches:
        assert 1 <= b.width <= min(L, n)
        for w, p in zip(b.windows, b.predecessors):
            if p is not None:
                assert p == w - 1
                assert p in solved
        solved.update(b.windows)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
             max_size=300),
    st.integers(1, 16),
)
@settings(max_examples=150, deadline=None)
def test_schedule_bounds(costs, workers):
    """Any schedule's makespan lies between work/P and work, and at least
    the largest chunk."""
    arr = np.array(costs)
    for steals in (True, False):
        t = simulate_chunk_schedule(arr, workers, steals=steals)
        assert t >= arr.sum() / workers - 1e-9
        assert t >= arr.max() - 1e-9
        assert t <= arr.sum() + 1e-9


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
             max_size=100),
    st.integers(1, 8),
)
@settings(max_examples=100, deadline=None)
def test_stealing_meets_graham_bound(costs, workers):
    """Greedy stealing always attains the Graham list-scheduling bound
    W/P + (1 - 1/P) * c_max (it can occasionally lose to a lucky static
    deal, but never exceeds this bound)."""
    arr = np.array(costs)
    t_steal = simulate_chunk_schedule(arr, workers, steals=True)
    bound = arr.sum() / workers + (1 - 1 / workers) * arr.max()
    assert t_steal <= bound + 1e-9
