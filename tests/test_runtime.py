"""Unit tests for the shared execution runtime (``repro.runtime``)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.models.base import RunResult, WindowResult
from repro.pagerank import PagerankConfig
from repro.runtime import (
    EXECUTORS,
    MODELS,
    NULL_SCOPE,
    DriverContext,
    ModelDriver,
    RunScope,
    chain_sinks,
    counting_sink,
    make_driver,
    map_tasks,
    record_run_metadata,
    require_executor,
)
from tests.conftest import random_events


@pytest.fixture
def setup():
    events = random_events(n_vertices=25, n_events=400, seed=7)
    spec = WindowSpec.covering(events, delta=2_500, sw=900)
    cfg = PagerankConfig(tolerance=1e-10, max_iterations=200)
    return events, spec, cfg


class TestSinks:
    def test_chain_of_nothing_is_none(self):
        assert chain_sinks() is None
        assert chain_sinks(None, None) is None

    def test_single_sink_returned_unwrapped(self):
        calls = []
        sink = calls.append
        assert chain_sinks(None, sink) is sink

    def test_fanout_preserves_order(self):
        order = []
        a = lambda w, v, m: order.append(("a", w))
        b = lambda w, v, m: order.append(("b", w))
        fan = chain_sinks(a, None, b)
        fan(3, None, None)
        assert order == [("a", 3), ("b", 3)]

    def test_counting_sink(self):
        counter = {}
        sink = counting_sink(counter)
        sink(0, np.ones(3), None)
        sink(1, np.ones(3), None)
        sink(1, np.ones(3), None)
        assert counter == {0: 1, 1: 2}


class TestDriverContext:
    def test_defaults(self):
        ctx = DriverContext()
        assert ctx.executor == "serial"
        assert ctx.n_workers == 4
        assert ctx.value_sink is None

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValidationError):
            DriverContext(executor="gpu")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValidationError):
            DriverContext(n_workers=0)

    def test_with_execution_preserves_sinks(self):
        counter = {}
        sink = counting_sink(counter)
        ctx = DriverContext(value_sink=sink).with_execution("thread", 2)
        assert ctx.executor == "thread"
        assert ctx.n_workers == 2
        assert ctx.value_sink is sink

    def test_emit_forwards_to_trace(self):
        seen = []
        ctx = DriverContext(trace=lambda ev, payload: seen.append((ev, payload)))
        ctx.emit("window.done", index=4)
        assert seen == [("window.done", {"index": 4})]

    def test_emit_without_trace_is_noop(self):
        DriverContext().emit("run.start")


class TestExecution:
    def test_executor_registry(self):
        assert EXECUTORS == ("serial", "thread", "process", "shared")

    def test_require_executor_accepts_supported(self):
        require_executor("thread", ("serial", "thread"), "offline")

    def test_require_executor_rejects_unsupported(self):
        with pytest.raises(ValidationError, match="streaming"):
            require_executor("process", ("serial",), "streaming")

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_map_tasks_preserves_order(self, executor):
        out = list(
            map_tasks(lambda x: x * x, range(17), executor=executor,
                      n_workers=3)
        )
        assert out == [x * x for x in range(17)]

    @pytest.mark.parametrize("executor", ["process", "shared"])
    def test_map_tasks_rejects_multiprocess(self, executor):
        with pytest.raises(ValidationError):
            list(map_tasks(lambda x: x, [1], executor=executor))


class TestRunScope:
    def test_phases_and_merge(self):
        result = RunResult(model="test", windows=[])
        scope = RunScope.into(result)
        with scope.phase("build"):
            pass
        with scope.phase("pagerank"):
            pass
        assert result.timings.counts["build"] == 1
        assert result.timings.counts["pagerank"] == 1

    def test_detached_scope_merges_later(self):
        scope = RunScope()
        with scope.phase("pagerank"):
            pass
        result = RunResult(model="test", windows=[])
        scope.merge_into(result)
        assert result.timings.counts["pagerank"] == 1

    def test_null_scope_is_inert(self):
        with NULL_SCOPE.phase("anything"):
            pass  # no state to observe; must simply not raise


class TestRecordRunMetadata:
    def test_serial_forces_one_worker(self):
        result = RunResult(model="test", windows=[])
        record_run_metadata(result, executor="serial", n_workers=8,
                            n_windows=5)
        assert result.metadata["executor"] == "serial"
        assert result.metadata["n_workers"] == 1
        assert result.metadata["n_windows"] == 5

    def test_parallel_keeps_worker_count(self):
        result = RunResult(model="test", windows=[])
        record_run_metadata(result, executor="thread", n_workers=8,
                            n_windows=5)
        assert result.metadata["n_workers"] == 8


class TestRegistry:
    def test_models_tuple(self):
        assert MODELS == ("offline", "streaming", "postmortem")

    @pytest.mark.parametrize("model", MODELS)
    def test_make_driver_satisfies_protocol(self, setup, model):
        events, spec, cfg = setup
        driver = make_driver(model, events, spec, cfg)
        assert isinstance(driver, ModelDriver)
        assert driver.model_name == model
        assert "serial" in driver.supported_executors

    def test_unknown_model_rejected(self, setup):
        events, spec, cfg = setup
        with pytest.raises(ValidationError):
            make_driver("quantum", events, spec, cfg)

    def test_context_threads_through(self, setup):
        events, spec, cfg = setup
        ctx = DriverContext(executor="thread", n_workers=2)
        driver = make_driver("offline", events, spec, cfg, context=ctx)
        run = driver.run()
        assert run.metadata["executor"] == "thread"
        assert run.metadata["n_workers"] == 2
        assert run.metadata["n_windows"] == spec.n_windows


class TestWindowResultFold:
    """KernelRunResult/KernelWindowResult are folded into the shared pair."""

    def test_kernel_aliases_are_the_shared_types(self):
        from repro.kernels.driver import KernelWindowResult

        assert KernelWindowResult is WindowResult

    def test_series_orders_by_window_index(self):
        run = RunResult(
            model="kernel",
            windows=[
                WindowResult(window_index=1, value=10),
                WindowResult(window_index=0, value=5),
            ],
        )
        assert run.kernel_values() == [5, 10]
        np.testing.assert_array_equal(
            run.series(lambda v: v * 2.0), np.array([10.0, 20.0])
        )
