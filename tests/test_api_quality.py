"""Meta-tests enforcing the documentation and API-quality deliverables."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.events",
    "repro.graph",
    "repro.pagerank",
    "repro.models",
    "repro.streaming",
    "repro.parallel",
    "repro.datasets",
    "repro.analysis",
    "repro.kernels",
    "repro.reporting",
    "repro.service",
    "repro.utils",
]


def all_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                seen.append(
                    importlib.import_module(f"{pkg_name}.{info.name}")
                )
    return seen


class TestDocumentation:
    def test_every_module_has_docstring(self):
        for mod in all_modules():
            assert mod.__doc__ and mod.__doc__.strip(), mod.__name__

    def test_every_public_export_documented(self):
        """Everything in a package's __all__ carries a docstring."""
        undocumented = []
        for mod in all_modules():
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name, None)
                # only classes and functions can carry docstrings; type
                # aliases and constants are documented in the module text
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if not inspect.getdoc(obj):
                    undocumented.append(f"{mod.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_classes_document_their_methods(self):
        from repro import (
            CSRGraph,
            MultiWindowPartition,
            PostmortemDriver,
            TemporalAdjacency,
            TemporalEventSet,
            WindowSpec,
        )

        for cls in (
            TemporalEventSet,
            WindowSpec,
            CSRGraph,
            TemporalAdjacency,
            MultiWindowPartition,
            PostmortemDriver,
        ):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name}"


class TestApiSurface:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_no_accidental_numpy_reexport(self):
        assert "np" not in repro.__all__
        assert "numpy" not in repro.__all__

    def test_errors_exported(self):
        from repro import ReproError, ValidationError

        assert issubclass(ValidationError, ReproError)
