"""Unit tests for the static CSR graph."""

import numpy as np
import pytest

from repro.errors import GraphBuildError
from repro.graph import CSRGraph, build_csr_from_edges


class TestBuild:
    def test_basic(self):
        g = build_csr_from_edges([0, 0, 1], [1, 2, 2], 3)
        assert g.n_vertices == 3
        assert g.n_edges == 3
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(1).tolist() == [2]
        assert g.neighbors(2).tolist() == []

    def test_dedup(self):
        g = build_csr_from_edges([0, 0, 0], [1, 1, 2], 3)
        assert g.n_edges == 2
        assert g.neighbors(0).tolist() == [1, 2]

    def test_no_dedup(self):
        g = build_csr_from_edges([0, 0], [1, 1], 2, dedup=False)
        assert g.n_edges == 2

    def test_adjacency_sorted(self):
        g = build_csr_from_edges([0, 0, 0], [5, 1, 3], 6)
        assert g.neighbors(0).tolist() == [1, 3, 5]

    def test_empty(self):
        g = build_csr_from_edges([], [], 4)
        assert g.n_edges == 0
        assert g.out_degrees().tolist() == [0, 0, 0, 0]

    def test_default_n_vertices(self):
        g = build_csr_from_edges([0, 7], [2, 3])
        assert g.n_vertices == 8

    def test_out_of_range(self):
        with pytest.raises(GraphBuildError):
            build_csr_from_edges([0, 5], [1, 1], 3)

    def test_invalid_indptr(self):
        with pytest.raises(GraphBuildError):
            CSRGraph(np.array([0, 1]), np.array([0]), 3)
        with pytest.raises(GraphBuildError):
            CSRGraph(np.array([0, 2]), np.array([0]), 1)


class TestQueries:
    def test_degrees(self):
        g = build_csr_from_edges([0, 0, 2], [1, 2, 0], 3)
        assert g.out_degrees().tolist() == [2, 0, 1]

    def test_has_edge(self):
        g = build_csr_from_edges([0, 1], [1, 2], 3)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(2, 2)

    def test_edges_roundtrip(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 20, 100)
        dst = rng.integers(0, 20, 100)
        g = build_csr_from_edges(src, dst, 20)
        s2, d2 = g.edges()
        g2 = build_csr_from_edges(s2, d2, 20)
        assert g == g2

    def test_transpose_inverts(self):
        g = build_csr_from_edges([0, 1, 2], [1, 2, 0], 3)
        tr = g.transpose()
        assert tr.neighbors(1).tolist() == [0]
        assert tr.neighbors(0).tolist() == [2]
        assert g.transpose().transpose() == g

    def test_transpose_preserves_in_neighbors(self):
        rng = np.random.default_rng(4)
        src = rng.integers(0, 15, 80)
        dst = rng.integers(0, 15, 80)
        g = build_csr_from_edges(src, dst, 15)
        tr = g.transpose()
        for v in range(15):
            s, d = g.edges()
            expected = sorted(set(s[d == v].tolist()))
            assert tr.neighbors(v).tolist() == expected

    def test_active_vertices(self):
        g = build_csr_from_edges([0, 3], [3, 5], 8)
        assert g.active_vertices().tolist() == [0, 3, 5]

    def test_to_scipy(self):
        g = build_csr_from_edges([0, 1], [1, 0], 2)
        m = g.to_scipy()
        assert m.shape == (2, 2)
        assert m[0, 1] == 1.0 and m[1, 0] == 1.0

    def test_not_hashable(self):
        g = build_csr_from_edges([0], [1], 2)
        with pytest.raises(TypeError):
            hash(g)
