"""Unit tests for TemporalEventSet."""

import numpy as np
import pytest

from repro.errors import EmptyEventSetError, ValidationError
from repro.events import TemporalEventSet
from tests.conftest import random_events


class TestConstruction:
    def test_sorts_by_time(self):
        es = TemporalEventSet([0, 1, 2], [1, 2, 0], [30, 10, 20])
        assert es.time.tolist() == [10, 20, 30]
        assert es.src.tolist() == [1, 2, 0]

    def test_sort_is_stable(self):
        es = TemporalEventSet([0, 1, 2], [1, 2, 0], [5, 5, 5])
        assert es.src.tolist() == [0, 1, 2]

    def test_rejects_unsorted_when_sort_false(self):
        with pytest.raises(ValidationError):
            TemporalEventSet([0, 1], [1, 0], [2, 1], sort=False)

    def test_rejects_negative_vertices(self):
        with pytest.raises(ValidationError):
            TemporalEventSet([-1], [0], [0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            TemporalEventSet([0, 1], [1], [0, 0])

    def test_n_vertices_default(self):
        es = TemporalEventSet([0, 5], [3, 1], [0, 1])
        assert es.n_vertices == 6

    def test_n_vertices_too_small(self):
        with pytest.raises(ValidationError):
            TemporalEventSet([0, 5], [3, 1], [0, 1], n_vertices=4)

    def test_empty(self):
        es = TemporalEventSet([], [], [])
        assert len(es) == 0
        assert es.n_vertices == 0
        with pytest.raises(EmptyEventSetError):
            _ = es.t_min

    def test_not_hashable(self):
        es = TemporalEventSet([0], [1], [0])
        with pytest.raises(TypeError):
            hash(es)

    def test_equality(self):
        a = TemporalEventSet([0, 1], [1, 0], [0, 1])
        b = TemporalEventSet([0, 1], [1, 0], [0, 1])
        c = TemporalEventSet([0, 1], [1, 0], [0, 2])
        assert a == b
        assert a != c


class TestRangeQueries:
    def test_slice_indices_inclusive(self):
        es = TemporalEventSet([0] * 5, [1] * 5, [10, 20, 30, 40, 50])
        lo, hi = es.time_slice_indices(20, 40)
        assert (lo, hi) == (1, 4)

    def test_events_between(self):
        es = random_events(seed=7)
        sub = es.events_between(2_000, 5_000)
        assert np.all(sub.time >= 2_000)
        assert np.all(sub.time <= 5_000)
        assert sub.n_vertices == es.n_vertices

    def test_count_between_matches(self):
        es = random_events(seed=8)
        assert es.count_between(0, es.t_max) == len(es)
        manual = int(((es.time >= 100) & (es.time <= 500)).sum())
        assert es.count_between(100, 500) == manual

    def test_edges_between_views(self):
        es = random_events(seed=9)
        src, dst = es.edges_between(es.t_min, es.t_max)
        assert src.size == len(es)

    def test_span(self):
        es = TemporalEventSet([0, 1], [1, 0], [5, 25])
        assert es.span == 20


class TestTransforms:
    def test_symmetrized_doubles(self):
        es = TemporalEventSet([0, 1], [1, 2], [3, 4])
        sym = es.symmetrized()
        assert len(sym) == 4
        pairs = set(zip(sym.src.tolist(), sym.dst.tolist()))
        assert (1, 0) in pairs and (2, 1) in pairs

    def test_symmetrized_empty(self):
        assert len(TemporalEventSet([], [], []).symmetrized()) == 0

    def test_without_self_loops(self):
        es = TemporalEventSet([0, 1, 2], [0, 2, 2], [0, 1, 2])
        clean = es.without_self_loops()
        assert len(clean) == 1
        assert clean.src.tolist() == [1]

    def test_relabeled_compact(self):
        es = TemporalEventSet([10, 20], [20, 30], [0, 1], n_vertices=100)
        compact, ids = es.relabeled_compact()
        assert compact.n_vertices == 3
        assert ids.tolist() == [10, 20, 30]
        assert compact.src.tolist() == [0, 1]
        assert compact.dst.tolist() == [1, 2]

    def test_iter_batches(self):
        es = random_events(n_events=100, seed=4)
        batches = list(es.iter_batches(30))
        assert sum(len(b) for b in batches) == len(es)
        assert all(len(b) <= 30 for b in batches)
        rebuilt = np.concatenate([b.time for b in batches])
        assert np.array_equal(rebuilt, es.time)

    def test_iter_batches_rejects_zero(self):
        es = random_events(seed=5)
        with pytest.raises(ValidationError):
            list(es.iter_batches(0))

    def test_concatenated(self):
        a = TemporalEventSet([0], [1], [10])
        b = TemporalEventSet([1], [2], [5])
        c = a.concatenated(b)
        assert c.time.tolist() == [5, 10]
        assert len(c) == 2
