"""Configuration-fuzzing property test: every postmortem configuration
must produce the same PageRank time series as the offline baseline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import TemporalEventSet, WindowSpec
from repro.models import OfflineDriver, PostmortemDriver, PostmortemOptions
from repro.pagerank import PagerankConfig

CFG = PagerankConfig(tolerance=1e-11, max_iterations=300)


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=4, max_value=20))
    m = draw(st.integers(min_value=5, max_value=120))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    t = draw(st.lists(st.integers(0, 500), min_size=m, max_size=m))
    events = TemporalEventSet(src, dst, t, n_vertices=n)
    span = max(events.span, 10)
    delta = draw(st.integers(min_value=span // 5 + 1, max_value=span))
    sw = draw(st.integers(min_value=max(span // 12, 1), max_value=span))
    spec = WindowSpec.covering(events, delta=delta, sw=sw)
    return events, spec


@st.composite
def options(draw):
    return PostmortemOptions(
        n_multiwindows=draw(st.integers(1, 8)),
        partial_init=draw(st.booleans()),
        kernel=draw(st.sampled_from(["spmv", "spmm"])),
        vector_length=draw(st.sampled_from([2, 4, 8, 16])),
        partition_method=draw(
            st.sampled_from(["uniform", "minimax", "greedy"])
        ),
    )


@given(instances(), options())
@settings(max_examples=60, deadline=None)
def test_any_configuration_matches_offline(instance, opts):
    events, spec = instance
    baseline = OfflineDriver(events, spec, CFG).run()
    run = PostmortemDriver(events, spec, CFG, opts).run()
    assert run.n_windows == baseline.n_windows
    assert baseline.max_difference(run) < 1e-7, opts


@given(instances())
@settings(max_examples=30, deadline=None)
def test_streaming_matches_offline(instance):
    from repro.streaming import StreamingDriver

    events, spec = instance
    baseline = OfflineDriver(events, spec, CFG).run()
    stream = StreamingDriver(events, spec, CFG).run()
    assert baseline.max_difference(stream) < 1e-7
