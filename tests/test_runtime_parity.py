"""Cross-model parity through the unified runtime (ISSUE satellite).

Every model is driven through the same ``make_driver`` + ``DriverContext``
seam the CLI uses, and the suite asserts the runtime-level guarantees:

* identical window geometry across offline / streaming / postmortem,
* rank vectors agree within tolerance across models,
* ``store_values=True`` and sink-only (``store_values=False``) runs emit
  identical vectors for every model,
* offline's parallel executors are bitwise-identical to serial,
* every model's rank store is queryable by the PR-1 ``QueryEngine``.

The suite runs under ``REPRO_SANITIZE=1`` in CI (see the sanitize job);
locally the conftest session fixture honors the same variable.
"""

import numpy as np
import pytest

from repro.events import WindowSpec
from repro.pagerank import PagerankConfig
from repro.runtime import MODELS, DriverContext, make_driver
from repro.service.engine import QueryEngine
from repro.service.store import RankStore, RankStoreWriter
from tests.conftest import random_events

TOL = 1e-7


@pytest.fixture(scope="module")
def setup():
    events = random_events(n_vertices=60, n_events=1_200, seed=211)
    spec = WindowSpec.covering(events, delta=2_000, sw=800)
    cfg = PagerankConfig(tolerance=1e-11, max_iterations=400)
    return events, spec, cfg


@pytest.fixture(scope="module")
def runs(setup):
    events, spec, cfg = setup
    return {
        model: make_driver(model, events, spec, cfg).run(store_values=True)
        for model in MODELS
    }


class TestCrossModelParity:
    def test_identical_window_geometry(self, setup, runs):
        _, spec, _ = setup
        for model, run in runs.items():
            assert run.n_windows == spec.n_windows, model
            assert [w.window_index for w in run.windows] == list(
                range(spec.n_windows)
            ), model

    def test_values_agree_within_tolerance(self, runs):
        ref = runs["postmortem"]
        for model in ("offline", "streaming"):
            assert runs[model].max_difference(ref) < TOL, model

    def test_uniform_runtime_metadata(self, setup, runs):
        _, spec, _ = setup
        for model, run in runs.items():
            assert run.metadata["executor"] == "serial", model
            assert run.metadata["n_workers"] == 1, model
            assert run.metadata["n_windows"] == spec.n_windows, model

    @pytest.mark.parametrize("model", MODELS)
    def test_sink_only_matches_stored(self, setup, runs, model):
        """store_values=False + sink emits exactly the stored vectors."""
        events, spec, cfg = setup
        collected = {}

        def sink(w, values, meta):
            collected[w] = np.array(values, copy=True)

        run = make_driver(model, events, spec, cfg).run(
            store_values=False, value_sink=sink
        )
        assert sorted(collected) == list(range(spec.n_windows))
        for w in run.windows:
            assert w.values is None
        stored = runs[model].values_matrix()
        emitted = np.stack([collected[i] for i in range(spec.n_windows)])
        np.testing.assert_array_equal(emitted, stored)


class TestOfflineExecutorParity:
    @pytest.mark.parametrize("executor", ["thread", "process", "shared"])
    def test_bitwise_identical_to_serial(self, setup, runs, executor):
        events, spec, cfg = setup
        ctx = DriverContext(executor=executor, n_workers=3)
        run = make_driver("offline", events, spec, cfg, context=ctx).run()
        serial = runs["offline"]
        assert run.metadata["executor"] == executor
        assert np.array_equal(run.values_matrix(), serial.values_matrix())

    def test_thread_sink_sees_every_window_once(self, setup, runs):
        events, spec, cfg = setup
        counter = {}
        ctx = DriverContext(executor="thread", n_workers=3)
        collected = {}

        def sink(w, values, meta):
            counter[w] = counter.get(w, 0) + 1
            collected[w] = np.array(values, copy=True)

        make_driver("offline", events, spec, cfg, context=ctx).run(
            store_values=False, value_sink=sink
        )
        assert counter == {i: 1 for i in range(spec.n_windows)}
        emitted = np.stack([collected[i] for i in range(spec.n_windows)])
        np.testing.assert_array_equal(emitted, runs["offline"].values_matrix())


class TestRankStoreParity:
    @pytest.mark.parametrize("model", MODELS)
    def test_store_queryable_per_model(self, setup, runs, model, tmp_path):
        """`--store` works for every model: sink-only run → QueryEngine."""
        events, spec, cfg = setup
        path = tmp_path / f"{model}.rankstore"
        writer = RankStoreWriter(
            path,
            n_windows=spec.n_windows,
            n_vertices=events.n_vertices,
            model=model,
            spec=spec,
            dtype=np.float64,
        )
        ctx = DriverContext(value_sink=writer.write_window)
        make_driver(model, events, spec, cfg, context=ctx).run(
            store_values=False
        )
        writer.close()

        store = RankStore(path)
        try:
            engine = QueryEngine(store)
            matrix = runs[model].values_matrix()
            # float64 store round-trips bitwise
            for w in range(spec.n_windows):
                np.testing.assert_array_equal(store.row(w), matrix[w])
            top = engine.top_k(0, k=5)
            expected = runs[model].window(0).top_vertices(5)
            assert [v for v, _ in top] == [v for v, _ in expected]
        finally:
            store.close()

    def test_offline_thread_store_matches_serial_store(
        self, setup, runs, tmp_path
    ):
        """The acceptance scenario: offline --executor thread --store."""
        events, spec, cfg = setup
        path = tmp_path / "offline-thread.rankstore"
        writer = RankStoreWriter(
            path,
            n_windows=spec.n_windows,
            n_vertices=events.n_vertices,
            model="offline",
            spec=spec,
            dtype=np.float64,
        )
        ctx = DriverContext(
            executor="thread", n_workers=3, value_sink=writer.write_window
        )
        make_driver("offline", events, spec, cfg, context=ctx).run(
            store_values=False
        )
        writer.close()

        store = RankStore(path)
        try:
            read = np.stack(
                [np.array(store.row(w)) for w in range(spec.n_windows)]
            )
            np.testing.assert_array_equal(
                read, runs["offline"].values_matrix()
            )
        finally:
            store.close()
