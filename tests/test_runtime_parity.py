"""Cross-model parity through the unified runtime (ISSUE satellite).

Every model is driven through the same ``make_driver`` + ``DriverContext``
seam the CLI uses, and the suite asserts the runtime-level guarantees:

* identical window geometry across offline / streaming / postmortem,
* rank vectors agree within tolerance across models,
* ``store_values=True`` and sink-only (``store_values=False``) runs emit
  identical vectors for every model,
* offline's parallel executors are bitwise-identical to serial,
* every model's rank store is queryable by the PR-1 ``QueryEngine``.

Since the vertex-program engine, every guarantee is per *program* too:
the ``--program`` dimension (pagerank / katz / kcore) runs through the
same drivers, so the suite asserts cross-model agreement (bitwise-grade
for the integer k-core fixpoint, tolerance for the float fixed points),
bitwise cross-executor parity per program, a Hypothesis property that
selecting ``--program pagerank`` never changes PageRank output versus a
hand-rolled pre-engine chain, and that katz/kcore stores are served
unchanged by both the ``QueryEngine`` and the sharded cluster.

The suite runs under ``REPRO_SANITIZE=1`` in CI (see the sanitize job);
locally the conftest session fixture honors the same variable.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.events import WindowSpec
from repro.graph.multiwindow import MultiWindowPartition
from repro.models.postmortem import PostmortemOptions
from repro.pagerank import (
    PagerankConfig,
    Workspace,
    full_initialization,
    pagerank_window,
    partial_initialization,
)
from repro.runtime import MODELS, PROGRAMS, DriverContext, make_driver
from repro.service.cluster import ShardCluster
from repro.service.engine import QueryEngine
from repro.service.store import RankStore, RankStoreWriter
from tests.conftest import random_events

TOL = 1e-7

#: cross-model agreement per float program: PageRank's three models share
#: one fixed point to solver tolerance; Katz additionally crosses the
#: backend-propagation (temporal) vs segment-sum (materialized) reduce
#: orders, so its bound is looser
PROGRAM_TOL = {"pagerank": 1e-7, "katz": 5e-6}


@pytest.fixture(scope="module")
def setup():
    events = random_events(n_vertices=60, n_events=1_200, seed=211)
    spec = WindowSpec.covering(events, delta=2_000, sw=800)
    cfg = PagerankConfig(tolerance=1e-11, max_iterations=400)
    return events, spec, cfg


@pytest.fixture(scope="module")
def runs(setup):
    events, spec, cfg = setup
    return {
        model: make_driver(model, events, spec, cfg).run(store_values=True)
        for model in MODELS
    }


class TestCrossModelParity:
    def test_identical_window_geometry(self, setup, runs):
        _, spec, _ = setup
        for model, run in runs.items():
            assert run.n_windows == spec.n_windows, model
            assert [w.window_index for w in run.windows] == list(
                range(spec.n_windows)
            ), model

    def test_values_agree_within_tolerance(self, runs):
        ref = runs["postmortem"]
        for model in ("offline", "streaming"):
            assert runs[model].max_difference(ref) < TOL, model

    def test_uniform_runtime_metadata(self, setup, runs):
        _, spec, _ = setup
        for model, run in runs.items():
            assert run.metadata["executor"] == "serial", model
            assert run.metadata["n_workers"] == 1, model
            assert run.metadata["n_windows"] == spec.n_windows, model

    @pytest.mark.parametrize("model", MODELS)
    def test_sink_only_matches_stored(self, setup, runs, model):
        """store_values=False + sink emits exactly the stored vectors."""
        events, spec, cfg = setup
        collected = {}

        def sink(w, values, meta):
            collected[w] = np.array(values, copy=True)

        run = make_driver(model, events, spec, cfg).run(
            store_values=False, value_sink=sink
        )
        assert sorted(collected) == list(range(spec.n_windows))
        for w in run.windows:
            assert w.values is None
        stored = runs[model].values_matrix()
        emitted = np.stack([collected[i] for i in range(spec.n_windows)])
        np.testing.assert_array_equal(emitted, stored)


class TestOfflineExecutorParity:
    @pytest.mark.parametrize("executor", ["thread", "process", "shared"])
    def test_bitwise_identical_to_serial(self, setup, runs, executor):
        events, spec, cfg = setup
        ctx = DriverContext(executor=executor, n_workers=3)
        run = make_driver("offline", events, spec, cfg, context=ctx).run()
        serial = runs["offline"]
        assert run.metadata["executor"] == executor
        assert np.array_equal(run.values_matrix(), serial.values_matrix())

    def test_thread_sink_sees_every_window_once(self, setup, runs):
        events, spec, cfg = setup
        counter = {}
        ctx = DriverContext(executor="thread", n_workers=3)
        collected = {}

        def sink(w, values, meta):
            counter[w] = counter.get(w, 0) + 1
            collected[w] = np.array(values, copy=True)

        make_driver("offline", events, spec, cfg, context=ctx).run(
            store_values=False, value_sink=sink
        )
        assert counter == {i: 1 for i in range(spec.n_windows)}
        emitted = np.stack([collected[i] for i in range(spec.n_windows)])
        np.testing.assert_array_equal(emitted, runs["offline"].values_matrix())


class TestRankStoreParity:
    @pytest.mark.parametrize("model", MODELS)
    def test_store_queryable_per_model(self, setup, runs, model, tmp_path):
        """`--store` works for every model: sink-only run → QueryEngine."""
        events, spec, cfg = setup
        path = tmp_path / f"{model}.rankstore"
        writer = RankStoreWriter(
            path,
            n_windows=spec.n_windows,
            n_vertices=events.n_vertices,
            model=model,
            spec=spec,
            dtype=np.float64,
        )
        ctx = DriverContext(value_sink=writer.write_window)
        make_driver(model, events, spec, cfg, context=ctx).run(
            store_values=False
        )
        writer.close()

        store = RankStore(path)
        try:
            engine = QueryEngine(store)
            matrix = runs[model].values_matrix()
            # float64 store round-trips bitwise
            for w in range(spec.n_windows):
                np.testing.assert_array_equal(store.row(w), matrix[w])
            top = engine.top_k(0, k=5)
            expected = runs[model].window(0).top_vertices(5)
            assert [v for v, _ in top] == [v for v, _ in expected]
        finally:
            store.close()

    def test_offline_thread_store_matches_serial_store(
        self, setup, runs, tmp_path
    ):
        """The acceptance scenario: offline --executor thread --store."""
        events, spec, cfg = setup
        path = tmp_path / "offline-thread.rankstore"
        writer = RankStoreWriter(
            path,
            n_windows=spec.n_windows,
            n_vertices=events.n_vertices,
            model="offline",
            spec=spec,
            dtype=np.float64,
        )
        ctx = DriverContext(
            executor="thread", n_workers=3, value_sink=writer.write_window
        )
        make_driver("offline", events, spec, cfg, context=ctx).run(
            store_values=False
        )
        writer.close()

        store = RankStore(path)
        try:
            read = np.stack(
                [np.array(store.row(w)) for w in range(spec.n_windows)]
            )
            np.testing.assert_array_equal(
                read, runs["offline"].values_matrix()
            )
        finally:
            store.close()


@pytest.fixture(scope="module")
def program_runs(setup):
    """Serial reference runs: every program under every model."""
    events, spec, cfg = setup
    return {
        program: {
            model: make_driver(
                model, events, spec, cfg, program=program
            ).run(store_values=True)
            for model in MODELS
        }
        for program in PROGRAMS
    }


class TestProgramCrossModelParity:
    """Every model agrees on every program, not just PageRank."""

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_metadata_records_program(self, program_runs, program):
        for model, run in program_runs[program].items():
            assert run.metadata["program"] == program, model

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_identical_window_geometry(self, setup, program_runs, program):
        _, spec, _ = setup
        for model, run in program_runs[program].items():
            assert [w.window_index for w in run.windows] == list(
                range(spec.n_windows)
            ), (program, model)

    @pytest.mark.parametrize("program", ["pagerank", "katz"])
    def test_float_programs_agree_within_tolerance(
        self, program_runs, program
    ):
        ref = program_runs[program]["postmortem"]
        for model in ("offline", "streaming"):
            diff = program_runs[program][model].max_difference(ref)
            assert diff < PROGRAM_TOL[program], (program, model, diff)

    def test_kcore_exact_across_models(self, program_runs):
        """Core numbers are integers peeled from identical undirected
        simple window graphs — cross-model parity is *exact*."""
        ref = program_runs["kcore"]["postmortem"].values_matrix()
        for model in ("offline", "streaming"):
            got = program_runs["kcore"][model].values_matrix()
            assert np.array_equal(got, ref), model


class TestProgramExecutorParity:
    """Executors shuffle whole chains across workers but never change a
    chain's solve sequence — so every program is bitwise-identical to its
    serial run under every executor, on both chained (postmortem) and
    independent-window (offline) models."""

    @pytest.mark.parametrize("program", PROGRAMS)
    @pytest.mark.parametrize("executor", ["thread", "shared"])
    def test_postmortem_bitwise(
        self, setup, program_runs, program, executor
    ):
        events, spec, cfg = setup
        # executor authority for the postmortem model sits in its options
        run = make_driver(
            "postmortem",
            events,
            spec,
            cfg,
            program=program,
            postmortem_options=PostmortemOptions(
                executor=executor, n_threads=3
            ),
        ).run()
        assert run.metadata["executor"] == executor
        assert np.array_equal(
            run.values_matrix(),
            program_runs[program]["postmortem"].values_matrix(),
        )

    @pytest.mark.parametrize("program", PROGRAMS)
    @pytest.mark.parametrize("executor", ["thread", "shared"])
    def test_offline_bitwise(self, setup, program_runs, program, executor):
        events, spec, cfg = setup
        ctx = DriverContext(executor=executor, n_workers=3)
        run = make_driver(
            "offline", events, spec, cfg, context=ctx, program=program
        ).run()
        assert np.array_equal(
            run.values_matrix(),
            program_runs[program]["offline"].values_matrix(),
        )


class TestProgramFlagPreservesPagerank:
    """The acceptance property: threading ``--program`` through the stack
    must not perturb PageRank — the engine's solve sequence is
    call-for-call the pre-engine driver loop, so output is *bitwise*
    identical to a hand-rolled partial-initialization chain."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_multiwindows=st.integers(min_value=1, max_value=4),
        partial=st.booleans(),
    )
    def test_engine_bitwise_vs_prerefactor_chain(
        self, seed, n_multiwindows, partial
    ):
        events = random_events(n_vertices=30, n_events=300, seed=seed)
        spec = WindowSpec.covering(events, delta=1_500, sw=700)
        n_multiwindows = min(n_multiwindows, spec.n_windows)
        cfg = PagerankConfig(tolerance=1e-10, max_iterations=200)
        run = make_driver(
            "postmortem",
            events,
            spec,
            cfg,
            program="pagerank",
            postmortem_options=PostmortemOptions(
                n_multiwindows=n_multiwindows, partial_init=partial
            ),
        ).run()

        # the historic postmortem loop, hand-rolled: one pooled workspace
        # per multi-window graph, eq. 4 warm starts along the chain, the
        # previous solve's iteration count as the edge-path hint
        expected = np.zeros((spec.n_windows, events.n_vertices))
        partition = MultiWindowPartition(events, spec, n_multiwindows)
        for graph in partition:
            workspace = Workspace()
            prev_view = None
            prev_values = None
            hint = None
            for w in graph.window_indices():
                view = graph.window_view(w, workspace=workspace)
                if partial and prev_view is not None:
                    x0 = partial_initialization(view, prev_view, prev_values)
                else:
                    x0 = full_initialization(view)
                pr = pagerank_window(
                    view, cfg, x0=x0, workspace=workspace,
                    iteration_hint=hint,
                )
                hint = pr.iterations
                expected[w] = graph.to_global(pr.values, events.n_vertices)
                prev_view, prev_values = view, pr.values

        np.testing.assert_array_equal(run.values_matrix(), expected)


class TestProgramStoreServing:
    """The acceptance scenario for the new programs: ``run --program
    katz/kcore --store`` produces a store the query tier serves unchanged
    — single-process ``QueryEngine`` and the sharded cluster alike."""

    @pytest.mark.parametrize("program", ["katz", "kcore"])
    def test_store_served_by_engine_and_cluster(
        self, setup, program_runs, program, tmp_path
    ):
        events, spec, cfg = setup
        path = tmp_path / f"{program}.rankstore"
        writer = RankStoreWriter(
            path,
            n_windows=spec.n_windows,
            n_vertices=events.n_vertices,
            model="postmortem",
            spec=spec,
            dtype=np.float64,
            program=program,
        )
        ctx = DriverContext(value_sink=writer.write_window)
        make_driver(
            "postmortem", events, spec, cfg, context=ctx, program=program
        ).run(store_values=False)
        writer.close()

        store = RankStore(path)
        try:
            assert store.program == program
            assert store.info()["program"] == program
            matrix = program_runs[program]["postmortem"].values_matrix()
            for w in range(spec.n_windows):
                np.testing.assert_array_equal(store.row(w), matrix[w])

            engine = QueryEngine(store)
            expected = {
                w: engine.top_k(w, 5) for w in range(spec.n_windows)
            }
            with ShardCluster(str(path), n_shards=2, replicas=1) as cluster:
                assert cluster.info()["program"] == program
                for w in range(spec.n_windows):
                    resp = cluster.top_k(w, 5)
                    assert resp["ok"], resp
                    got = json.loads(json.dumps(resp["result"]))
                    assert got == json.loads(json.dumps(expected[w]))
        finally:
            store.close()
