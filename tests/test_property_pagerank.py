"""Property-based tests for the PageRank kernels."""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import TemporalEventSet, Window
from repro.graph import TemporalAdjacency
from repro.pagerank import (
    PagerankConfig,
    full_initialization,
    pagerank_window,
    pagerank_windows_spmm,
    partial_initialization,
)


@st.composite
def window_instances(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    m = draw(st.integers(min_value=1, max_value=60))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    t = draw(st.lists(st.integers(0, 100), min_size=m, max_size=m))
    events = TemporalEventSet(src, dst, t, n_vertices=n)
    adj = TemporalAdjacency.from_events(events)
    a = draw(st.integers(0, 100))
    b = draw(st.integers(0, 100))
    view = adj.window_view(Window(0, min(a, b), max(a, b)))
    return view


CFG = PagerankConfig(tolerance=1e-12, max_iterations=500)


@given(window_instances())
@settings(max_examples=120, deadline=None)
def test_mass_conservation(view):
    r = pagerank_window(view, CFG)
    if view.n_active_vertices:
        assert np.isclose(r.values.sum(), 1.0, atol=1e-8)
    else:
        assert r.values.sum() == 0.0


@given(window_instances())
@settings(max_examples=100, deadline=None)
def test_values_nonnegative_and_inactive_zero(view):
    r = pagerank_window(view, CFG)
    assert np.all(r.values >= 0)
    assert np.all(r.values[~view.active_vertices_mask] == 0)
    if view.n_active_vertices:
        # every active vertex keeps at least its teleport share
        floor = CFG.alpha / view.n_active_vertices
        active_vals = r.values[view.active_vertices_mask]
        assert np.all(active_vals >= floor * (1 - 1e-9))


@given(window_instances())
@settings(max_examples=75, deadline=None)
def test_fixed_point(view):
    """One more iteration from the converged vector moves < tolerance."""
    r = pagerank_window(view, CFG)
    if not r.converged or view.n_active_vertices == 0:
        return
    step = pagerank_window(
        view, PagerankConfig(tolerance=1e-15, max_iterations=1), x0=r.values
    )
    assert np.abs(step.values - r.values).sum() < 10 * CFG.tolerance


@given(window_instances())
@settings(max_examples=75, deadline=None)
def test_init_vectors_are_distributions(view):
    x = full_initialization(view)
    if view.n_active_vertices:
        assert np.isclose(x.sum(), 1.0)
        assert np.all(x >= 0)
    r = pagerank_window(view, CFG)
    warm = partial_initialization(view, view, r.values)
    if view.n_active_vertices:
        assert np.isclose(warm.sum(), 1.0, atol=1e-8)


@given(window_instances())
@settings(max_examples=50, deadline=None)
def test_self_partial_init_is_near_fixed_point(view):
    """Warm-starting a window from its own solution converges immediately
    (within a few iterations)."""
    r = pagerank_window(view, CFG)
    if not r.converged or view.n_active_vertices == 0:
        return
    warm = partial_initialization(view, view, r.values)
    again = pagerank_window(view, CFG, x0=warm)
    assert again.iterations <= max(3, r.iterations // 2)


@given(window_instances(), st.integers(2, 5))
@settings(max_examples=50, deadline=None)
def test_spmm_columns_equal_spmv(view, k):
    views = [view] * k
    batch = pagerank_windows_spmm(views, CFG)
    single = pagerank_window(view, CFG)
    for j in range(k):
        assert np.allclose(batch.values[:, j], single.values, atol=1e-8)


@given(window_instances(), st.booleans())
@settings(max_examples=100, deadline=None)
def test_backend_never_changes_values(view, use_workspace):
    """``backend`` is a pure execution-strategy knob: numpy, pcpm, numba
    (degraded or not) and auto produce bitwise-identical values, with
    owned and workspace-pooled buffers alike."""
    from repro.pagerank import Workspace

    def solve(backend):
        ws = Workspace() if use_workspace else None
        return pagerank_window(
            view,
            replace(CFG, backend=backend, cache_budget=64),
            workspace=ws,
        )

    baseline = solve("numpy")
    for backend in ("pcpm", "numba", "auto"):
        r = solve(backend)
        assert np.array_equal(r.values, baseline.values)
        assert r.iterations == baseline.iterations
        assert r.converged == baseline.converged


@given(window_instances())
@settings(max_examples=100, deadline=None)
def test_edge_path_never_changes_values(view):
    """``edge_path`` is a pure execution-strategy knob: masked, compacted
    and auto produce bitwise-identical ``PagerankResult.values``."""
    results = {
        path: pagerank_window(view, replace(CFG, edge_path=path))
        for path in ("masked", "compacted", "auto")
    }
    baseline = results["masked"]
    for path in ("compacted", "auto"):
        r = results[path]
        assert np.array_equal(r.values, baseline.values)
        assert r.iterations == baseline.iterations
        assert r.converged == baseline.converged
