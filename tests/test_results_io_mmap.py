"""Lazy (memory-mapped) opening of saved run archives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.models import PostmortemDriver, load_run, save_run


@pytest.fixture
def run(events, spec, config):
    return PostmortemDriver(events, spec, config).run()


class TestMmapLoad:
    def test_values_identical(self, run, tmp_path):
        path = tmp_path / "run.npz"
        save_run(run, path, compress=False)
        lazy = load_run(path, mmap_mode="r")
        for a, b in zip(run.windows, lazy.windows):
            assert np.array_equal(a.values, b.values)

    def test_no_full_matrix_copy_on_open(self, run, tmp_path):
        """Regression: every window's values must be a view into one
        shared memmap, not a materialized copy."""
        path = tmp_path / "run.npz"
        save_run(run, path, compress=False)
        lazy = load_run(path, mmap_mode="r")
        first = lazy.windows[0].values
        matrix = first.base if first.base is not None else first
        assert isinstance(matrix, np.memmap)
        for w in lazy.windows:
            assert not w.values.flags["OWNDATA"]
            assert w.values.base is matrix

    def test_mmap_is_readonly(self, run, tmp_path):
        path = tmp_path / "run.npz"
        save_run(run, path, compress=False)
        lazy = load_run(path, mmap_mode="r")
        with pytest.raises(ValueError):
            lazy.windows[0].values[0] = 1.0

    def test_compressed_archive_refused(self, run, tmp_path):
        path = tmp_path / "run.npz"
        save_run(run, path, compress=True)
        with pytest.raises(ValidationError, match="compress=False"):
            load_run(path, mmap_mode="r")

    def test_compressed_archive_still_loads_eagerly(self, run, tmp_path):
        path = tmp_path / "run.npz"
        save_run(run, path, compress=True)
        eager = load_run(path)
        assert eager.n_windows == run.n_windows
        for a, b in zip(run.windows, eager.windows):
            assert np.array_equal(a.values, b.values)

    def test_metadata_survives(self, run, tmp_path):
        path = tmp_path / "run.npz"
        save_run(run, path, compress=False)
        lazy = load_run(path, mmap_mode="r")
        assert lazy.model == run.model
        assert lazy.metadata["n_windows"] == run.metadata["n_windows"]
        for a, b in zip(run.windows, lazy.windows):
            assert a.iterations == b.iterations
            assert a.converged == b.converged
