"""Tests for the weighted postmortem driver mode and simulator-calibration
sanity."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.events import TemporalEventSet, Window, WindowSpec
from repro.graph import TemporalAdjacency
from repro.models import PostmortemDriver, PostmortemOptions
from repro.pagerank import PagerankConfig, pagerank_window_weighted
from tests.conftest import random_events

CFG = PagerankConfig(tolerance=1e-12, max_iterations=300)


class TestWeightedDriver:
    def test_matches_direct_kernel(self):
        events = random_events(n_vertices=25, n_events=600, seed=6)
        spec = WindowSpec.covering(events, delta=2_500, sw=800)
        run = PostmortemDriver(
            events, spec, CFG,
            PostmortemOptions(n_multiwindows=3, weighted=True),
        ).run()
        adj = TemporalAdjacency.from_events(events)
        for w in spec:
            direct = pagerank_window_weighted(adj.window_view(w), CFG)
            assert np.allclose(
                run.window(w.index).values, direct.values, atol=1e-9
            ), w.index

    def test_weighted_requires_spmv(self):
        with pytest.raises(ValidationError):
            PostmortemOptions(weighted=True, kernel="spmm")

    def test_weighted_differs_on_multigraph(self):
        # heavy duplicate edges: weighted and unweighted rankings differ
        rows = [(0, 1, t) for t in range(20)] + [
            (0, 2, 25), (1, 0, 30), (2, 0, 31), (1, 2, 32),
        ]
        events = TemporalEventSet(
            [r[0] for r in rows], [r[1] for r in rows], [r[2] for r in rows]
        )
        spec = WindowSpec(t0=0, delta=40, sw=40, n_windows=1)
        weighted = PostmortemDriver(
            events, spec, CFG, PostmortemOptions(weighted=True)
        ).run()
        plain = PostmortemDriver(events, spec, CFG).run()
        assert not np.allclose(
            weighted.windows[0].values, plain.windows[0].values
        )


@st.composite
def weighted_instances(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=1, max_value=50))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    t = draw(st.lists(st.integers(0, 60), min_size=m, max_size=m))
    events = TemporalEventSet(src, dst, t, n_vertices=n)
    adj = TemporalAdjacency.from_events(events)
    return adj.window_view(Window(0, 0, 60))


class TestWeightedProperties:
    @given(weighted_instances())
    @settings(max_examples=60, deadline=None)
    def test_mass_and_support(self, view):
        r = pagerank_window_weighted(view, CFG)
        if view.n_active_vertices:
            assert np.isclose(r.values.sum(), 1.0, atol=1e-8)
        assert np.all(r.values >= 0)
        assert np.all(r.values[~view.active_vertices_mask] == 0)

    @given(weighted_instances())
    @settings(max_examples=40, deadline=None)
    def test_weighted_fixed_point(self, view):
        r = pagerank_window_weighted(view, CFG)
        if not r.converged or view.n_active_vertices == 0:
            return
        again = pagerank_window_weighted(
            view, PagerankConfig(tolerance=1e-15, max_iterations=1),
            x0=r.values,
        )
        assert np.abs(again.values - r.values).sum() < 10 * CFG.tolerance


class TestCalibrationSanity:
    def test_one_worker_simulation_tracks_serial_time(self):
        """The calibrated cost model's 1-worker makespan must be within a
        small factor of real measured serial wall-clock — the property
        that makes the P-worker makespan a meaningful counterfactual."""
        from repro.parallel import (
            MachineSpec,
            calibrate_cost_model,
            collect_window_stats,
            estimate_makespan,
        )

        events = random_events(n_vertices=80, n_events=6_000,
                               t_max=100_000, seed=91)
        spec = WindowSpec.covering(events, delta=20_000, sw=4_000)
        cfg = PagerankConfig()
        stats = collect_window_stats(events, spec, cfg, 4)
        model = calibrate_cost_model(sizes=(4_000, 8_000, 16_000))

        driver = PostmortemDriver(
            events, spec, cfg, PostmortemOptions(n_multiwindows=4)
        )
        t0 = time.perf_counter()
        driver.run(store_values=False)
        measured = time.perf_counter() - t0

        simulated = estimate_makespan(
            stats, MachineSpec(1), model, "application", granularity=10**9
        )
        ratio = simulated / measured
        assert 0.2 < ratio < 5.0, (simulated, measured)
