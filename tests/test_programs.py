"""The vertex-program layer (repro.programs).

Covers the registry, the three first-class programs, the callable
adapter, and the tentpole acceptance criterion: PageRank routed through
the engine is *bitwise-identical* to the historic postmortem loop across
kernels (spmv / spmm) × edge paths (masked / compacted) × backends
(numpy / pcpm) × weighted — asserted against a hand-rolled reference
chain that replays the pre-engine driver's solve sequence.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.graph import TemporalAdjacency
from repro.graph.csr import build_csr_from_edges
from repro.graph.multiwindow import MultiWindowPartition
from repro.kernels.katz import KatzConfig, katz_window
from repro.models.postmortem import PostmortemDriver, PostmortemOptions
from repro.pagerank import (
    PagerankConfig,
    Workspace,
    full_initialization,
    pagerank_window,
    partial_initialization,
)
from repro.pagerank.weighted import pagerank_window_weighted
from repro.pagerank.spmm import pagerank_windows_spmm
from repro.models.schedule import sequential_schedule, spmm_region_schedule
from repro.programs import (
    PROGRAMS,
    VertexProgram,
    make_program,
    resolve_program,
    validate_program_name,
)
from repro.programs.adapter import CallableProgram
from repro.programs.engine import solve_program_chain
from repro.programs.katz import KatzProgram, katz_window_backend
from repro.programs.kcore import KCoreProgram
from repro.runtime import DriverContext
from tests.conftest import random_events

VECTOR_LENGTH = 4
N_MULTIWINDOWS = 3


@pytest.fixture(scope="module")
def setup():
    events = random_events(n_vertices=50, n_events=900, seed=977)
    spec = WindowSpec.covering(events, delta=1_800, sw=750)
    return events, spec


def reference_chain(
    events,
    spec,
    cfg,
    *,
    kernel="spmv",
    weighted=False,
    partial_init=True,
):
    """The pre-engine postmortem solve sequence, hand-rolled.

    Replays exactly what the historic driver did per multi-window graph:
    one pooled workspace, eq. 4 warm starts along the chain, the region
    schedule for SpMM, the previous solve's iteration count as the
    edge-path hint.  The engine must match this bitwise.
    """
    solver = pagerank_window_weighted if weighted else pagerank_window
    out = np.zeros((spec.n_windows, events.n_vertices))
    partition = MultiWindowPartition(events, spec, N_MULTIWINDOWS)
    for graph in partition:
        if kernel == "spmm" and graph.n_windows > 1 and not weighted:
            batches = spmm_region_schedule(
                graph.first_window, graph.n_windows, VECTOR_LENGTH
            )
        else:
            batches = sequential_schedule(
                graph.first_window, graph.n_windows
            )
        workspace = Workspace()
        views = {}
        values = {}
        hint = None
        for batch in batches:
            bviews = []
            for w in batch.windows:
                if w not in views:
                    views[w] = graph.window_view(w, workspace=workspace)
                bviews.append(views[w])
            x0_cols = []
            for w, pred in zip(batch.windows, batch.predecessors):
                if partial_init and pred is not None and pred in values:
                    x0_cols.append(
                        partial_initialization(
                            views[w], views[pred], values[pred]
                        )
                    )
                else:
                    x0_cols.append(full_initialization(views[w]))
            if len(batch.windows) == 1:
                pr = solver(
                    bviews[0], cfg, x0=x0_cols[0], workspace=workspace,
                    iteration_hint=hint,
                )
                hint = pr.iterations
                values[batch.windows[0]] = pr.values
                out[batch.windows[0]] = graph.to_global(
                    pr.values, events.n_vertices
                )
            else:
                br = pagerank_windows_spmm(
                    bviews, cfg, x0=np.stack(x0_cols, axis=1),
                    workspace=workspace, iteration_hint=hint,
                )
                hint = int(br.iterations_per_window.max())
                for j, w in enumerate(batch.windows):
                    values[w] = br.values[:, j].copy()
                    out[w] = graph.to_global(values[w], events.n_vertices)
            keep = set(batch.windows)
            views = {w: v for w, v in views.items() if w in keep}
            values = {w: v for w, v in values.items() if w in keep}
    return out


class TestRegistry:
    def test_registered_names(self):
        assert PROGRAMS == ("pagerank", "katz", "kcore")
        for name in PROGRAMS:
            assert validate_program_name(name) == name
            assert make_program(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            validate_program_name("betweenness")
        with pytest.raises(ValidationError):
            make_program("betweenness")

    def test_context_validates_program(self):
        DriverContext(program="katz")
        with pytest.raises(ValidationError):
            DriverContext(program="betweenness")

    def test_weighted_only_for_pagerank(self):
        assert make_program("pagerank", weighted=True).weighted
        with pytest.raises(ValidationError):
            make_program("katz", weighted=True)
        with pytest.raises(ValidationError):
            resolve_program(KCoreProgram(), weighted=True)

    def test_resolve_normalizes(self):
        assert resolve_program(None).name == "pagerank"
        assert resolve_program("kcore").name == "kcore"
        program = KatzProgram()
        assert resolve_program(program) is program
        with pytest.raises(ValidationError):
            resolve_program(42)

    def test_programs_are_picklable(self):
        import pickle

        for name in PROGRAMS:
            program = make_program(name)
            clone = pickle.loads(pickle.dumps(program))
            assert clone.name == name

    def test_base_class_contract(self):
        base = VertexProgram()
        assert base.vertex_values
        view = None
        with pytest.raises(NotImplementedError):
            base.init_window(view)
        with pytest.raises(NotImplementedError):
            base.solve_window(view)
        with pytest.raises(NotImplementedError):
            base.solve_batch([view], None)
        with pytest.raises(NotImplementedError):
            base.solve_graph(None, None)


class TestEngineBitwiseGrid:
    """The tentpole acceptance criterion: PageRank through the engine is
    bitwise-identical to the historic driver loop, across kernels × edge
    paths × backends × weighted."""

    @pytest.mark.parametrize("kernel", ["spmv", "spmm"])
    @pytest.mark.parametrize("edge_path", ["masked", "compacted"])
    @pytest.mark.parametrize("backend", ["numpy", "pcpm"])
    def test_engine_matches_reference(
        self, setup, kernel, edge_path, backend
    ):
        events, spec = setup
        cfg = PagerankConfig(
            tolerance=1e-10,
            max_iterations=300,
            edge_path=edge_path,
            backend=backend,
            cache_budget=512,
        )
        run = PostmortemDriver(
            events,
            spec,
            cfg,
            PostmortemOptions(
                n_multiwindows=N_MULTIWINDOWS,
                kernel=kernel,
                vector_length=VECTOR_LENGTH,
            ),
        ).run()
        expected = reference_chain(events, spec, cfg, kernel=kernel)
        np.testing.assert_array_equal(run.values_matrix(), expected)

    @pytest.mark.parametrize("edge_path", ["masked", "compacted"])
    def test_weighted_engine_matches_reference(self, setup, edge_path):
        events, spec = setup
        cfg = PagerankConfig(
            tolerance=1e-10, max_iterations=300, edge_path=edge_path
        )
        run = PostmortemDriver(
            events,
            spec,
            cfg,
            PostmortemOptions(
                n_multiwindows=N_MULTIWINDOWS, weighted=True
            ),
        ).run()
        expected = reference_chain(events, spec, cfg, weighted=True)
        np.testing.assert_array_equal(run.values_matrix(), expected)

    def test_cold_chain_matches_reference(self, setup):
        events, spec = setup
        cfg = PagerankConfig(tolerance=1e-10, max_iterations=300)
        run = PostmortemDriver(
            events,
            spec,
            cfg,
            PostmortemOptions(
                n_multiwindows=N_MULTIWINDOWS, partial_init=False
            ),
        ).run()
        expected = reference_chain(
            events, spec, cfg, partial_init=False
        )
        np.testing.assert_array_equal(run.values_matrix(), expected)


class TestKatzProgram:
    def test_backend_kernel_matches_segment_sum(self, setup):
        """Backend propagation and the legacy reduceat kernel agree on
        the normalized fixed point (different summation orders)."""
        events, spec = setup
        adj = TemporalAdjacency.from_events(events)
        cfg = KatzConfig(tolerance=1e-12, max_iterations=500)
        for i in range(min(spec.n_windows, 4)):
            view = adj.window_view(spec.window(i))
            ours = katz_window_backend(view, cfg, PagerankConfig())
            legacy = katz_window(view, cfg)
            assert np.allclose(
                ours.values, legacy.values, atol=1e-9
            ), i

    def test_warm_start_converges_no_slower(self, setup):
        events, spec = setup
        adj = TemporalAdjacency.from_events(events)
        program = KatzProgram(config=KatzConfig(tolerance=1e-11))
        v0 = adj.window_view(spec.window(0))
        v1 = adj.window_view(spec.window(1))
        prev = program.solve_window(v0, program.init_window(v0))
        warm = program.solve_window(
            v1, program.warm_start(v1, v0, prev.values)
        )
        cold = program.solve_window(v1, program.init_window(v1))
        assert np.allclose(warm.values, cold.values, atol=1e-8)
        assert warm.iterations <= cold.iterations + 1

    def test_spmm_falls_back_for_weighted_like_programs(self, setup):
        """kcore has no batched kernel: kernel='spmm' must fall back to
        the sequential schedule, not crash, and match the spmv run."""
        events, spec = setup
        cfg = PagerankConfig()
        runs = {}
        for kernel in ("spmv", "spmm"):
            runs[kernel] = PostmortemDriver(
                events,
                spec,
                cfg,
                PostmortemOptions(
                    n_multiwindows=N_MULTIWINDOWS,
                    kernel=kernel,
                    vector_length=VECTOR_LENGTH,
                ),
                program="kcore",
            ).run()
        assert np.array_equal(
            runs["spmv"].values_matrix(), runs["spmm"].values_matrix()
        )


class TestKCoreProgram:
    def test_known_clique(self):
        # K4: every vertex has core number 3
        src, dst = [], []
        for i in range(4):
            for j in range(4):
                if i != j:
                    src.append(i)
                    dst.append(j)
        graph = build_csr_from_edges(
            np.array(src), np.array(dst), 4, dedup=True
        )
        program = KCoreProgram()
        active = np.ones(4, dtype=bool)
        pr = program.solve_graph(graph, active)
        assert pr.values.tolist() == [3.0, 3.0, 3.0, 3.0]
        assert pr.converged and pr.iterations == 0

    def test_not_iterative(self):
        program = KCoreProgram()
        assert not program.iterative
        assert not program.supports_batch
        assert program.vertex_values


class TestCallableProgram:
    def test_generic_values_ride_value_slot(self, setup):
        events, spec = setup
        partition = MultiWindowPartition(events, spec, N_MULTIWINDOWS)
        graph = partition[0]
        program = CallableProgram(lambda view: view.n_active_edges)
        assert not program.vertex_values
        results, tasks, _ = solve_program_chain(
            graph, 0, program, n_global_vertices=events.n_vertices
        )
        # generic programs emit no TaskRecords (nothing to simulate)
        assert tasks == []
        for w in graph.window_indices():
            wr = results[w]
            assert wr.values is None
            assert wr.value == wr.n_active_edges

    def test_to_global_scatter(self, setup):
        events, spec = setup
        partition = MultiWindowPartition(events, spec, N_MULTIWINDOWS)
        graph = partition[0]
        program = CallableProgram(
            lambda view: np.ones(
                view.adjacency.n_vertices, dtype=np.float64
            ),
            to_global_values=True,
        )
        results, _, _ = solve_program_chain(
            graph, 0, program, n_global_vertices=events.n_vertices
        )
        for w in graph.window_indices():
            assert results[w].value.shape == (events.n_vertices,)


class TestWeightedValidation:
    def test_weighted_rejects_non_pagerank_program(self, setup):
        events, spec = setup
        with pytest.raises(ValidationError):
            PostmortemDriver(
                events,
                spec,
                PagerankConfig(),
                PostmortemOptions(weighted=True),
                program="katz",
            )

    def test_streaming_delta_engine_is_pagerank_specific(self, setup):
        from repro.streaming.driver import StreamingDriver

        events, spec = setup
        with pytest.raises(ValidationError):
            StreamingDriver(
                events, spec, PagerankConfig(), engine="delta",
                program="kcore",
            )
