"""repro.lint: per-rule fixtures, suppression, reporters, CLI, meta-lint.

Each rule gets at least one positive fixture (the violation fires) and one
negative fixture (the compliant variant stays silent).  Fixture paths are
chosen to hit each rule's scope (e.g. ``service/``); the meta-test at the
bottom asserts the real source tree lints clean, which is what keeps the
CI gate honest.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.lint import (
    ALL_RULES,
    JSON_SCHEMA_VERSION,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    rule_descriptions,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def rules_of(source: str, path: str, **kw):
    return [f.rule for f in lint_source(textwrap.dedent(source), path, **kw)]


# ----------------------------------------------------------------------
# rule 1: mmap-escape
# ----------------------------------------------------------------------
class TestMmapEscape:
    def test_returning_mmap_slice_fires(self):
        src = """
            import numpy as np

            class Store:
                def __init__(self, path):
                    self.matrix = np.memmap(path, mode="r", shape=(4, 4))

                def row(self, i):
                    return self.matrix[i]
        """
        assert rules_of(src, "service/fixture.py") == ["mmap-escape"]

    def test_returning_module_level_mmap_fires(self):
        src = """
            import numpy as np
            mm = np.memmap("x.bin", mode="r")

            def head():
                return mm[:10]
        """
        assert rules_of(src, "utils/fixture.py") == ["mmap-escape"]

    def test_unsafe_wrapper_call_fires(self):
        src = """
            import numpy as np

            def publish(freeze):
                mm = np.memmap("x.bin", mode="r")
                return freeze(mm[0])
        """
        assert rules_of(src, "service/fixture.py") == ["mmap-escape"]

    def test_copy_is_clean(self):
        src = """
            import numpy as np

            class Store:
                def __init__(self, path):
                    self.matrix = np.memmap(path, mode="r", shape=(4, 4))

                def row(self, i):
                    return np.array(self.matrix[i], copy=True)

                def row2(self, i):
                    return self.matrix[i].copy()
        """
        assert rules_of(src, "service/fixture.py") == []

    def test_out_of_scope_path_skipped(self):
        src = """
            import numpy as np
            mm = np.memmap("x.bin", mode="r")

            def head():
                return mm[:10]
        """
        assert rules_of(src, "kernels/fixture.py") == []

    def test_shared_view_escape_fires(self):
        src = """
            def structure(arena):
                col = arena.shared_view("in_col")
                return col
        """
        assert rules_of(src, "parallel/fixture.py") == ["mmap-escape"]

    def test_direct_shared_view_return_fires(self):
        src = """
            def structure(arena):
                return arena.shared_view("in_col")
        """
        assert rules_of(src, "parallel/fixture.py") == ["mmap-escape"]

    def test_shared_view_slice_escape_fires(self):
        src = """
            def head(arena):
                col = arena.shared_view("in_col")
                return col[:10]
        """
        assert rules_of(src, "service/fixture.py") == ["mmap-escape"]

    def test_shared_view_copy_is_clean(self):
        src = """
            import numpy as np

            def structure(arena):
                col = arena.shared_view("in_col")
                return np.array(col, copy=True)
        """
        assert rules_of(src, "parallel/fixture.py") == []


# ----------------------------------------------------------------------
# rule 2: lock-discipline
# ----------------------------------------------------------------------
LOCK_MIXED = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def increment(self):
            with self._lock:
                self.count += 1

        def reset(self):
            self.count = 0
"""


class TestLockDiscipline:
    def test_mixed_writes_fire(self):
        findings = lint_source(textwrap.dedent(LOCK_MIXED), "service/f.py")
        assert [f.rule for f in findings] == ["lock-discipline"]
        assert "self.count" in findings[0].message

    def test_consistent_locking_is_clean(self):
        src = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def increment(self):
                    with self._lock:
                        self.count += 1

                def reset(self):
                    with self._lock:
                        self.count = 0
        """
        assert rules_of(src, "service/f.py") == []

    def test_init_writes_do_not_count_as_unlocked(self):
        src = """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = "new"

                def update(self):
                    with self._lock:
                        self.state = "running"
        """
        assert rules_of(src, "service/f.py") == []

    def test_module_without_threading_skipped(self):
        src = LOCK_MIXED.replace("import threading", "import os")
        assert rules_of(src, "service/f.py") == []

    def test_sanitize_make_lock_module_is_checked(self):
        src = LOCK_MIXED.replace(
            "import threading",
            "from repro.sanitize import make_lock",
        )
        assert rules_of(src, "service/f.py") == ["lock-discipline"]


# ----------------------------------------------------------------------
# rule 3: lock-blocking-call
# ----------------------------------------------------------------------
class TestLockBlockingCall:
    def test_join_under_lock_fires(self):
        src = """
            import threading

            def stop(lock, worker):
                with lock:
                    worker.join()
        """
        assert rules_of(src, "service/f.py") == ["lock-blocking-call"]

    def test_future_result_under_lock_fires(self):
        src = """
            import threading

            def wait(self_lock, future):
                with self_lock:
                    return future.result(timeout=5)
        """
        assert rules_of(src, "service/f.py") == ["lock-blocking-call"]

    def test_join_after_release_is_clean(self):
        src = """
            import threading

            def stop(lock, worker):
                with lock:
                    stopped = True
                worker.join()
        """
        assert rules_of(src, "service/f.py") == []

    def test_non_lock_context_is_clean(self):
        src = """
            import threading

            def read(path, worker):
                with open(path) as f:
                    worker.join()
                    return f.read()
        """
        assert rules_of(src, "service/f.py") == []


# ----------------------------------------------------------------------
# rule 4: unseeded-rng
# ----------------------------------------------------------------------
class TestUnseededRng:
    def test_legacy_global_rng_fires(self):
        src = """
            import numpy as np
            values = np.random.rand(10)
        """
        assert rules_of(src, "benchmarks/bench_f.py") == ["unseeded-rng"]

    def test_seedless_default_rng_fires(self):
        src = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert rules_of(src, "kernels/f.py") == ["unseeded-rng"]

    def test_none_seed_fires(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(None)
        """
        assert rules_of(src, "pagerank/f.py") == ["unseeded-rng"]

    def test_seeded_generator_is_clean(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(42)
            other = np.random.default_rng(seed_param)
        """
        assert rules_of(src, "benchmarks/bench_f.py") == []

    def test_out_of_scope_path_skipped(self):
        src = """
            import numpy as np
            values = np.random.rand(10)
        """
        assert rules_of(src, "analysis/f.py") == []


# ----------------------------------------------------------------------
# rule 5: missing-dtype
# ----------------------------------------------------------------------
class TestMissingDtype:
    def test_zeros_without_dtype_fires(self):
        src = """
            import numpy as np
            x = np.zeros(100)
        """
        assert rules_of(src, "pagerank/spmv.py") == ["missing-dtype"]

    def test_full_without_dtype_fires(self):
        src = """
            import numpy as np
            x = np.full(8, np.inf)
        """
        assert rules_of(src, "kernels/katz.py") == ["missing-dtype"]

    def test_keyword_and_positional_dtype_are_clean(self):
        src = """
            import numpy as np
            a = np.zeros(100, dtype=np.float64)
            b = np.zeros(100, np.float64)
            c = np.full(8, np.inf, dtype=np.float64)
            d = np.zeros_like(a)
        """
        assert rules_of(src, "pagerank/spmv.py") == []

    def test_out_of_scope_path_skipped(self):
        src = """
            import numpy as np
            x = np.zeros(100)
        """
        assert rules_of(src, "service/f.py") == []


# ----------------------------------------------------------------------
# rule 6: csr-python-loop
# ----------------------------------------------------------------------
class TestCsrPythonLoop:
    def test_range_over_len_fires(self):
        src = """
            def total_degree(rowA):
                total = 0
                for i in range(len(rowA)):
                    total += rowA[i]
                return total
        """
        assert rules_of(src, "kernels/f.py") == ["csr-python-loop"]

    def test_range_over_size_fires(self):
        src = """
            def scan(indptr):
                for i in range(indptr.size):
                    yield indptr[i]
        """
        assert rules_of(src, "pagerank/f.py") == ["csr-python-loop"]

    def test_direct_iteration_fires(self):
        src = """
            def walk(graph):
                for c in graph.col:
                    print(c)
        """
        assert rules_of(src, "graph/f.py") == ["csr-python-loop"]

    def test_vectorized_and_non_csr_loops_are_clean(self):
        src = """
            import numpy as np

            def vectorized(rowA):
                return np.add.reduceat(rowA, [0])

            def window_loop(windows):
                for w in range(len(windows)):
                    yield windows[w]
        """
        assert rules_of(src, "kernels/f.py") == []


# ----------------------------------------------------------------------
# rule 7: silent-except
# ----------------------------------------------------------------------
class TestSilentExcept:
    def test_swallowed_exception_fires(self):
        src = """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
        """
        assert rules_of(src, "streaming/driver.py") == ["silent-except"]

    def test_bare_except_fires(self):
        src = """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
        """
        assert rules_of(src, "anywhere.py") == ["silent-except"]

    def test_handled_exception_is_clean(self):
        src = """
            import logging

            def load(path):
                try:
                    return open(path).read()
                except OSError as exc:
                    logging.warning("load failed: %s", exc)
                    return None
        """
        assert rules_of(src, "streaming/driver.py") == []


# ----------------------------------------------------------------------
# rule 8: mutable-default
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_mutable_default_argument_fires(self):
        src = """
            def collect(item, acc=[]):
                acc.append(item)
                return acc
        """
        assert rules_of(src, "anywhere.py") == ["mutable-default"]

    def test_module_level_lowercase_mutable_fires(self):
        src = """
            registry = {}
        """
        assert rules_of(src, "anywhere.py") == ["mutable-default"]

    def test_constants_and_none_defaults_are_clean(self):
        src = """
            REGISTRY = {}
            __all__ = ["collect"]

            def collect(item, acc=None):
                acc = [] if acc is None else acc
                acc.append(item)
                return acc
        """
        assert rules_of(src, "anywhere.py") == []


# ----------------------------------------------------------------------
# engine behaviour: suppression, selection, parse errors
# ----------------------------------------------------------------------
class TestSuppression:
    SRC = """
        def collect(item, acc=[]):  # lint: disable=mutable-default
            return acc

        def collect2(item, acc=[]):
            return acc
    """

    def test_same_line_disable_suppresses_only_that_line(self):
        findings = lint_source(textwrap.dedent(self.SRC), "f.py")
        assert [f.rule for f in findings] == ["mutable-default"]
        assert findings[0].line == 5

    def test_line_above_disable(self):
        src = """
            # lint: disable=mutable-default — fixture accumulator
            def collect(item, acc=[]):
                return acc
        """
        assert rules_of(src, "f.py") == []

    def test_disable_all(self):
        src = """
            registry = {}  # lint: disable=all
        """
        assert rules_of(src, "f.py") == []

    def test_disabling_other_rule_does_not_suppress(self):
        src = """
            registry = {}  # lint: disable=silent-except
        """
        assert rules_of(src, "f.py") == ["mutable-default"]


class TestSelection:
    SRC = """
        import numpy as np
        registry = {}
        x = np.zeros(4)
    """

    def test_select(self):
        got = rules_of(self.SRC, "pagerank/f.py", select=["missing-dtype"])
        assert got == ["missing-dtype"]

    def test_ignore(self):
        got = rules_of(self.SRC, "pagerank/f.py", ignore=["missing-dtype"])
        assert got == ["mutable-default"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValidationError, match="unknown lint rule"):
            lint_source("x = 1", "f.py", select=["nope"])


class TestParseError:
    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n    pass", "f.py")
        assert [f.rule for f in findings] == ["parse-error"]
        assert findings[0].line >= 1


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
class TestReporters:
    def _report(self, tmp_path, source):
        f = tmp_path / "service" / "fixture.py"
        f.parent.mkdir()
        f.write_text(textwrap.dedent(source))
        return lint_paths([tmp_path])

    def test_json_schema(self, tmp_path):
        report = self._report(
            tmp_path,
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def locked(self):
                    with self._lock:
                        self.n += 1

                def racy(self):
                    self.n = 0
            """,
        )
        doc = json.loads(render_json(report))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["clean"] is False
        assert doc["files_checked"] == 1
        assert set(doc["rules"]) == {r.name for r in ALL_RULES}
        assert doc["summary"] == {"lock-discipline": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "lock-discipline"
        assert finding["path"].endswith("service/fixture.py")

    def test_text_report_names_rule_and_location(self, tmp_path):
        report = self._report(tmp_path, "registry = {}\n")
        text = render_text(report)
        assert "[mutable-default]" in text
        assert "fixture.py:1:0" in text

    def test_clean_report(self, tmp_path):
        report = self._report(tmp_path, "X = 1\n")
        assert report.clean
        assert "clean: 1 files checked" in render_text(report)
        assert json.loads(render_json(report))["clean"] is True


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_seeded_violation_exits_nonzero_and_names_site(self, tmp_path):
        bad = tmp_path / "pagerank" / "kernel.py"
        bad.parent.mkdir()
        bad.write_text("import numpy as np\nx = np.zeros(3)\n")
        out = io.StringIO()
        assert main(["lint", str(tmp_path)], out=out) == 1
        text = out.getvalue()
        assert "missing-dtype" in text
        assert "kernel.py:2:4" in text

    def test_clean_tree_exits_zero(self, tmp_path):
        good = tmp_path / "mod.py"
        good.write_text("VALUE = 1\n")
        out = io.StringIO()
        assert main(["lint", str(tmp_path)], out=out) == 0
        assert "clean" in out.getvalue()

    def test_json_format(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("registry = {}\n")
        out = io.StringIO()
        assert main(["lint", str(tmp_path), "--format", "json"], out=out) == 1
        doc = json.loads(out.getvalue())
        assert doc["summary"] == {"mutable-default": 1}

    def test_select_filters(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("registry = {}\n")
        out = io.StringIO()
        code = main(
            ["lint", str(tmp_path), "--select", "silent-except"], out=out
        )
        assert code == 0

    def test_missing_path_is_an_error(self, tmp_path):
        out = io.StringIO()
        assert main(["lint", str(tmp_path / "nope")], out=out) == 1

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["lint", "--list-rules"], out=out) == 0
        text = out.getvalue()
        for rule in ALL_RULES:
            assert rule.name in text


# ----------------------------------------------------------------------
# the gate: this repository lints clean
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_rule_catalog_is_complete(self):
        assert len(ALL_RULES) == 8
        descriptions = rule_descriptions()
        assert set(descriptions) == {r.name for r in ALL_RULES}
        assert all(descriptions.values())

    def test_src_and_benchmarks_lint_clean(self):
        report = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"]
        )
        assert report.files_checked > 80
        assert report.clean, "\n" + render_text(report)

    def test_scopes_cover_the_serving_federation(self):
        # scopes are path fragments, so service/ covers service/cluster/;
        # the shard workers hold shared_view matrices, which is exactly
        # the dangling-view shape mmap-escape exists for
        cluster_path = "src/repro/service/cluster/worker.py"
        applicable = {
            r.name for r in ALL_RULES if r.applies_to(cluster_path)
        }
        assert {"mmap-escape", "lock-discipline", "lock-blocking-call",
                "silent-except", "mutable-default"} <= applicable

    def test_scopes_cover_the_kernel_backends(self):
        # the backend package holds the hottest allocation and loop
        # sites in the tree (PCPM binning + per-partition reduce), so
        # the dtype and CSR-loop rules must reach it, and the bench
        # that times it
        for path in (
            "src/repro/pagerank/backends/pcpm.py",
            "benchmarks/bench_backends.py",
        ):
            applicable = {
                r.name for r in ALL_RULES if r.applies_to(path)
            }
            assert {"missing-dtype", "csr-python-loop"} <= applicable, path

    def test_scopes_cover_the_out_of_core_artifact(self):
        # graph/io hands out raw np.memmap views (the zero-copy contract
        # mmap-escape polices) and allocates the builder's scratch arrays
        # in the hottest construction passes (dtype drift there doubles
        # spill traffic), so both rules must reach it — and csr-python-loop
        # already covers it via graph/
        path = "src/repro/graph/io.py"
        applicable = {r.name for r in ALL_RULES if r.applies_to(path)}
        assert {"mmap-escape", "missing-dtype",
                "csr-python-loop"} <= applicable

    def test_scopes_cover_the_program_layer(self):
        # the vertex programs drive the hottest solve chains in the
        # tree (katz propagation, kcore peeling), so the dtype and
        # CSR-loop rules must reach programs/ just like the kernels
        for path in (
            "src/repro/programs/katz.py",
            "src/repro/programs/kcore.py",
            "src/repro/programs/engine.py",
        ):
            applicable = {
                r.name for r in ALL_RULES if r.applies_to(path)
            }
            assert {"missing-dtype", "csr-python-loop"} <= applicable, path
