"""Integration tests: the three execution models must compute identical
PageRank time series on the paper's dataset profiles, end to end."""

import numpy as np
import pytest

from repro.analysis import compare_models, spearman_rank_correlation
from repro.datasets import get_profile
from repro.events import WindowSpec
from repro.models import OfflineDriver, PostmortemDriver, PostmortemOptions
from repro.pagerank import PagerankConfig
from repro.streaming import StreamingDriver

CFG = PagerankConfig(tolerance=1e-11, max_iterations=300)


@pytest.fixture(scope="module")
def instance():
    events = get_profile("wiki-talk").generate(scale=0.08)
    spec = WindowSpec.covering_days(events, 90, 86_400 * 45)
    return events, spec


class TestModelEquivalence:
    def test_three_models_agree(self, instance):
        events, spec = instance
        off = OfflineDriver(events, spec, CFG).run()
        stream = StreamingDriver(events, spec, CFG).run()
        pm = PostmortemDriver(events, spec, CFG).run()
        assert off.max_difference(pm) < 1e-8
        assert stream.max_difference(pm) < 1e-8
        assert off.all_converged and stream.all_converged and pm.all_converged

    @pytest.mark.parametrize(
        "opts",
        [
            PostmortemOptions(n_multiwindows=1),
            PostmortemOptions(n_multiwindows=3, kernel="spmm",
                              vector_length=4),
            PostmortemOptions(n_multiwindows=6, kernel="spmm",
                              vector_length=16, partial_init=False),
            PostmortemOptions(n_multiwindows=2, executor="thread",
                              n_threads=2),
        ],
        ids=["single-mw", "spmm-4", "spmm-16-coldinit", "threaded"],
    )
    def test_postmortem_configs_agree(self, instance, opts):
        events, spec = instance
        baseline = PostmortemDriver(events, spec, CFG).run()
        other = PostmortemDriver(events, spec, CFG, opts).run()
        assert baseline.max_difference(other) < 1e-8

    def test_profiles_smoke(self):
        """Every dataset profile runs end-to-end under all three models."""
        for name in ("ia-enron-email", "epinions-user-ratings"):
            profile = get_profile(name)
            events = profile.generate(scale=0.05)
            delta = profile.window_sizes_days[0]
            spec = WindowSpec.covering_days(
                events, delta, profile.sliding_offsets[0] * 40
            )
            t = compare_models(events, spec, CFG, check_agreement=True)
            assert t.n_windows == spec.n_windows


class TestTimeSeriesProperties:
    def test_consecutive_windows_correlated(self, instance):
        """Overlapping windows must produce similar rankings — the property
        partial initialization exploits."""
        events, spec = instance
        run = PostmortemDriver(events, spec, CFG).run()
        # only compare when both windows have meaningful activity
        for a, b in zip(run.windows[3:-1], run.windows[4:]):
            if min(a.n_active_edges, b.n_active_edges) < 50:
                continue
            shared = (a.values > 0) & (b.values > 0)
            if shared.sum() < 20:
                continue
            rho = spearman_rank_correlation(
                a.values[shared], b.values[shared]
            )
            # at 50% window overlap on sparse scaled instances the rank
            # correlation is moderate but always clearly positive
            assert rho > 0.2, (a.window_index, rho)

    def test_iterations_bounded(self, instance):
        events, spec = instance
        run = PostmortemDriver(events, spec, CFG).run(store_values=False)
        for w in run.windows:
            assert w.iterations <= CFG.max_iterations

    def test_work_stats_aggregate(self, instance):
        events, spec = instance
        run = PostmortemDriver(events, spec, CFG).run(store_values=False)
        assert run.work.iterations == run.total_iterations
        assert run.work.edge_traversals > 0
