"""Unit tests for the SpMM-inspired batched kernel (Section 4.4)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import Window, WindowSpec
from repro.graph import MultiWindowPartition, TemporalAdjacency
from repro.pagerank import (
    PagerankConfig,
    pagerank_window,
    pagerank_windows_spmm,
)
from tests.conftest import random_events


@pytest.fixture
def tight():
    return PagerankConfig(tolerance=1e-13, max_iterations=500)


class TestSpmmKernel:
    def test_matches_spmv_per_column(self, events, spec, tight):
        adj = TemporalAdjacency.from_events(events)
        views = [adj.window_view(w) for w in spec]
        batch = pagerank_windows_spmm(views, tight)
        for j, view in enumerate(views):
            single = pagerank_window(view, tight)
            assert np.allclose(
                batch.values[:, j], single.values, atol=1e-9
            ), j

    def test_window_indices_preserved(self, adjacency, spec, tight):
        views = [adjacency.window_view(spec.window(i)) for i in (2, 0, 5)]
        batch = pagerank_windows_spmm(views, tight)
        assert batch.window_indices == [2, 0, 5]

    def test_single_window_batch(self, adjacency, spec, tight):
        views = [adjacency.window_view(spec.window(0))]
        batch = pagerank_windows_spmm(views, tight)
        single = pagerank_window(views[0], tight)
        assert np.allclose(batch.values[:, 0], single.values, atol=1e-10)

    def test_rejects_empty(self, tight):
        with pytest.raises(ValidationError):
            pagerank_windows_spmm([], tight)

    def test_rejects_mixed_adjacencies(self, events, spec, tight):
        a1 = TemporalAdjacency.from_events(events)
        a2 = TemporalAdjacency.from_events(events)
        with pytest.raises(ValidationError):
            pagerank_windows_spmm(
                [a1.window_view(spec.window(0)), a2.window_view(spec.window(1))],
                tight,
            )

    def test_rejects_bad_x0(self, adjacency, spec, tight):
        views = [adjacency.window_view(spec.window(0))]
        with pytest.raises(ValidationError):
            pagerank_windows_spmm(views, tight, x0=np.ones((3, 1)))

    def test_empty_window_column(self, adjacency, tight):
        views = [
            adjacency.window_view(Window(0, 0, 10_000)),
            adjacency.window_view(Window(1, 10**9, 10**9 + 1)),
        ]
        batch = pagerank_windows_spmm(views, tight)
        assert batch.converged[1]
        assert np.all(batch.values[:, 1] == 0)
        single = pagerank_window(views[0], tight)
        assert np.allclose(batch.values[:, 0], single.values, atol=1e-10)

    def test_per_column_iterations(self, adjacency, spec, tight):
        views = [adjacency.window_view(w) for w in spec]
        batch = pagerank_windows_spmm(views, tight)
        singles = [pagerank_window(v, tight) for v in views]
        for j, s in enumerate(singles):
            # column convergence may differ by an iteration or two because
            # converged columns freeze while the batch continues
            assert abs(int(batch.iterations_per_window[j]) - s.iterations) <= 2

    def test_x0_columns_used(self, adjacency, spec, tight):
        views = [adjacency.window_view(spec.window(i)) for i in (0, 1)]
        n = adjacency.n_vertices
        from repro.pagerank import full_initialization

        X0 = np.stack(
            [full_initialization(views[0]), full_initialization(views[1])],
            axis=1,
        )
        batch = pagerank_windows_spmm(views, tight, x0=X0)
        assert batch.values.shape == (n, 2)

    def test_work_counts_shared_structure(self, adjacency, spec, tight):
        views = [adjacency.window_view(w) for w in spec]
        cfg = replace(tight, edge_path="masked")
        batch = pagerank_windows_spmm(views, cfg)
        # the batched kernel reads the structure once per joint iteration,
        # not once per window per iteration
        assert batch.work.edge_traversals == batch.work.iterations * adjacency.nnz
        assert batch.work.iterations <= int(
            batch.iterations_per_window.max()
        ) + 1

    def test_work_counts_compacted_union(self, adjacency, spec, tight):
        views = [adjacency.window_view(w) for w in spec]
        cfg = replace(tight, edge_path="compacted")
        batch = pagerank_windows_spmm(views, cfg)
        union = np.zeros(adjacency.nnz, dtype=np.bool_)
        for v in views:
            union |= v.in_dedup
        m = int(union.sum())
        # each joint iteration reads only the packed union of the k
        # windows' active edges
        assert batch.work.edge_traversals == batch.work.iterations * m
        assert m <= adjacency.nnz


class TestSpmmInsideMultiwindow:
    def test_local_space_batches(self, tight):
        events = random_events(n_vertices=40, n_events=600, seed=61)
        spec = WindowSpec.covering(events, delta=3_000, sw=800)
        part = MultiWindowPartition(events, spec, 2)
        g = part[0]
        views = [g.window_view(i) for i in g.window_indices()]
        batch = pagerank_windows_spmm(views, tight)
        for j, i in enumerate(g.window_indices()):
            single = pagerank_window(views[j], tight)
            assert np.allclose(batch.values[:, j], single.values, atol=1e-9)
