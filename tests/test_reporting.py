"""Unit tests for ASCII tables, series and heatmaps."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.reporting import (
    format_bar_chart,
    format_heatmap,
    format_kv,
    format_series,
    format_table,
)


class TestTable:
    def test_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # columns line up
        assert lines[2].index("1") == lines[3].index("2")

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000012], [12345.6], [1.5], [0]])
        assert "1.2e-05" in out
        assert "1.23e+04" in out or "12345" in out or "1.23e+4" in out
        assert "1.5" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_kv(self):
        out = format_kv({"alpha": 0.15, "iterations": 30}, title="Config")
        assert "alpha" in out and "0.15" in out
        assert out.splitlines()[0] == "Config"

    def test_kv_empty(self):
        assert format_kv({}) == ""


class TestSeries:
    def test_basic(self):
        out = format_series(
            "g", [1, 2, 4], {"spmv": [1.0, 2.0, 3.0], "spmm": [2.0, 3.0, 4.0]}
        )
        lines = out.splitlines()
        assert "spmv" in lines[0] and "spmm" in lines[0]
        assert len(lines) == 5

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            format_series("x", [1, 2], {"s": [1.0]})


class TestHeatmap:
    def test_orientation(self):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = format_heatmap(
            grid, ["10d", "90d"], ["43200", "86400"],
            row_title="ws", col_title="sw",
        )
        lines = out.splitlines()
        assert "ws\\sw" in lines[0]
        assert lines[2].startswith("10d")
        assert lines[3].startswith("90d")

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            format_heatmap(np.zeros((2, 2)), ["a"], ["b", "c"])


class TestBarChart:
    def test_bars_scale(self):
        out = format_bar_chart(
            {"offline": 10.0, "streaming": 20.0, "postmortem": 1.0},
            width=20, unit="s",
        )
        lines = out.splitlines()
        stream_bar = [l for l in lines if l.startswith("streaming")][0]
        pm_bar = [l for l in lines if l.startswith("postmortem")][0]
        assert stream_bar.count("#") == 20
        assert pm_bar.count("#") == 1

    def test_empty(self):
        assert format_bar_chart({}) == ""
