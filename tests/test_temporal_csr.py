"""Unit tests for the temporal CSR representation, including the paper's
worked example (Figures 2 and 3)."""

import numpy as np
import pytest

from repro.errors import GraphBuildError
from repro.events import Window
from repro.graph import TemporalAdjacency, TemporalCSR
from repro.graph.temporal_csr import _build_orientation
from tests.conftest import random_events


def brute_force_window_edges(events, t_start, t_end):
    """Reference: the set of simple edges active in a window."""
    mask = (events.time >= t_start) & (events.time <= t_end)
    return set(zip(events.src[mask].tolist(), events.dst[mask].tolist()))


class TestStructure:
    def test_neighbors_sorted_by_neighbor_then_time(self, events):
        adj = TemporalAdjacency.from_events(events)
        csr = adj.out_csr
        for v in range(csr.n_rows):
            lo, hi = csr.indptr[v], csr.indptr[v + 1]
            cols = csr.col[lo:hi]
            times = csr.time[lo:hi]
            # neighbor ids non-decreasing; times non-decreasing in groups
            assert np.all(np.diff(cols) >= 0)
            for c in np.unique(cols):
                assert np.all(np.diff(times[cols == c]) >= 0)

    def test_nnz_preserved(self, events):
        adj = TemporalAdjacency.from_events(events)
        assert adj.nnz == len(events)
        assert adj.in_csr.nnz == adj.out_csr.nnz

    def test_group_starts(self):
        csr = _build_orientation(
            np.array([0, 0, 0, 1]),
            np.array([1, 1, 2, 1]),
            np.array([5, 9, 1, 2]),
            2,
        )
        # groups: (0,1) x2, (0,2), (1,1)
        assert csr.group_start.tolist() == [True, False, True, True]
        assert csr.n_groups == 3

    def test_group_start_at_row_boundary_same_col(self):
        # last neighbor of row 0 equals first neighbor of row 1: still a
        # new group because the row changed
        csr = _build_orientation(
            np.array([0, 1]), np.array([3, 3]), np.array([1, 2]), 2
        )
        assert csr.group_start.tolist() == [True, True]

    def test_invalid_sizes(self):
        with pytest.raises(GraphBuildError):
            TemporalCSR(np.array([0, 1]), np.array([0]), np.array([1, 2]), 1)
        with pytest.raises(GraphBuildError):
            TemporalCSR(np.array([0, 2]), np.array([0]), np.array([1]), 1)

    def test_memory_bytes_positive(self, adjacency):
        assert adjacency.memory_bytes() > 0


class TestWindowMasks:
    def test_active_mask_inclusive(self):
        csr = _build_orientation(
            np.array([0, 0]), np.array([1, 1]), np.array([10, 20]), 2
        )
        assert csr.active_mask(10, 20).tolist() == [True, True]
        assert csr.active_mask(11, 19).tolist() == [False, False]

    def test_dedup_selects_one_per_group(self):
        # one (0 -> 1) group with three events, two inside the window
        csr = _build_orientation(
            np.array([0, 0, 0]),
            np.array([1, 1, 1]),
            np.array([5, 10, 15]),
            2,
        )
        dedup = csr.dedup_mask(8, 20)
        assert dedup.tolist() == [False, True, False]

    def test_dedup_matches_bruteforce(self):
        events = random_events(n_vertices=25, n_events=300, seed=21)
        adj = TemporalAdjacency.from_events(events)
        for t0, t1 in [(0, 2_000), (3_000, 7_000), (9_000, 10_000), (0, 10_000)]:
            dedup = adj.out_csr.dedup_mask(t0, t1)
            rows = adj.out_csr.row_ids()[dedup]
            cols = adj.out_csr.col[dedup]
            got = set(zip(rows.tolist(), cols.tolist()))
            assert got == brute_force_window_edges(events, t0, t1)

    def test_degrees_match_compact(self):
        events = random_events(n_vertices=20, n_events=200, seed=22)
        adj = TemporalAdjacency.from_events(events)
        deg = adj.out_csr.degrees(1_000, 6_000)
        compact = adj.out_csr.compact_window(1_000, 6_000)
        assert deg.tolist() == compact.out_degrees().tolist()

    def test_empty_window(self, adjacency):
        deg = adjacency.out_csr.degrees(10**9, 2 * 10**9)
        assert deg.sum() == 0


class TestWindowView:
    def test_counts(self, events, spec, adjacency):
        w = spec.window(1)
        view = adjacency.window_view(w)
        edges = brute_force_window_edges(events, w.t_start, w.t_end)
        assert view.n_active_edges == len(edges)
        vertices = {u for u, v in edges} | {v for u, v in edges}
        assert view.n_active_vertices == len(vertices)

    def test_inverse_out_degrees(self, spec, adjacency):
        view = adjacency.window_view(spec.window(0))
        inv = view.inverse_out_degrees()
        nz = view.out_degrees > 0
        assert np.allclose(inv[nz] * view.out_degrees[nz], 1.0)
        assert np.all(inv[~nz] == 0)
        # cached
        assert view.inverse_out_degrees() is inv

    def test_compact_graph_matches_events(self, events, spec, adjacency):
        w = spec.window(2)
        view = adjacency.window_view(w)
        g = view.compact_graph()
        s, d = g.edges()
        assert set(zip(s.tolist(), d.tolist())) == brute_force_window_edges(
            events, w.t_start, w.t_end
        )


class TestPaperExample:
    """The worked example of Figures 2a/2b: 14 events, 3 intervals."""

    T1 = (0, 106)    # 6/1/2021 .. 9/15/2021
    T2 = (30, 136)   # 7/1/2021 .. 10/15/2021
    T3 = (61, 228)   # 8/1/2021 .. 1/15/2022

    EXPECTED = {
        T1: {(1, 2), (3, 5), (4, 6), (2, 3), (2, 4), (5, 6)},
        T2: {(4, 6), (2, 3), (2, 4), (5, 6), (2, 7), (4, 7), (5, 7), (6, 7)},
        T3: {
            (2, 3), (2, 4), (5, 6), (2, 7), (4, 7), (5, 7), (6, 7),
            (1, 2), (1, 3), (2, 5), (3, 5),
        },
    }

    def test_interval_edge_sets(self, paper_example_events):
        adj = TemporalAdjacency.from_events(paper_example_events)
        for (t0, t1), expected in self.EXPECTED.items():
            dedup = adj.out_csr.dedup_mask(t0, t1)
            rows = adj.out_csr.row_ids()[dedup]
            cols = adj.out_csr.col[dedup]
            assert set(zip(rows.tolist(), cols.tolist())) == expected

    def test_duplicate_edge_once_per_window(self, paper_example_events):
        # (1, 2) occurs at days 20 and 157; a window covering both must
        # still yield a single simple edge
        adj = TemporalAdjacency.from_events(paper_example_events)
        view = adj.window_view(Window(index=0, t_start=0, t_end=200))
        g = view.compact_graph()
        assert g.neighbors(1).tolist() == [2, 3]

    def test_active_counts(self, paper_example_events):
        adj = TemporalAdjacency.from_events(paper_example_events)
        view = adj.window_view(Window(0, *self.T1))
        assert view.n_active_edges == 6
        assert view.n_active_vertices == 6  # vertices 1..6, not 7
