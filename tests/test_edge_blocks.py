"""Unit tests for the STINGER-like edge-block structure."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.streaming.edge_blocks import EdgeBlock, EdgeBlockAdjacency


class TestEdgeBlock:
    def test_append_fills(self):
        b = EdgeBlock(4)
        taken = b.append(np.array([1, 2, 3]), np.array([10, 20, 30]))
        assert taken == 3
        assert b.fill == 3
        assert b.space == 1

    def test_append_overflow(self):
        b = EdgeBlock(2)
        taken = b.append(np.array([1, 2, 3]), np.array([1, 2, 3]))
        assert taken == 2
        assert b.space == 0

    def test_compact_keep(self):
        b = EdgeBlock(4)
        b.append(np.array([1, 2, 3]), np.array([10, 20, 30]))
        b.compact_keep(np.array([True, False, True]))
        nbrs, times = b.live()
        assert nbrs.tolist() == [1, 3]
        assert times.tolist() == [10, 30]


class TestAdjacency:
    def test_insert_and_degree(self):
        adj = EdgeBlockAdjacency(5, block_size=2)
        adj.insert_batch(
            np.array([0, 0, 0]), np.array([1, 2, 1]), np.array([1, 2, 3])
        )
        assert adj.n_entries == 3
        assert adj.out_degree(0) == 2  # distinct neighbors 1, 2
        assert adj.out_degree(1) == 0

    def test_blocks_allocated_on_overflow(self):
        adj = EdgeBlockAdjacency(2, block_size=2)
        adj.insert_batch(
            np.zeros(5, dtype=np.int64),
            np.ones(5, dtype=np.int64),
            np.arange(5),
        )
        assert adj.blocks_allocated >= 3
        adj.check_invariants()

    def test_expire_before(self):
        adj = EdgeBlockAdjacency(3)
        adj.insert_batch(
            np.array([0, 0, 1]), np.array([1, 2, 2]), np.array([5, 15, 25])
        )
        removed = adj.expire_before(10)
        assert removed == 1
        assert adj.n_entries == 2
        nbrs, times = adj.vertex_entries(0)
        assert times.tolist() == [15]
        adj.check_invariants()

    def test_expire_updates_min_time(self):
        adj = EdgeBlockAdjacency(2)
        adj.insert_batch(
            np.array([0, 0]), np.array([1, 1]), np.array([5, 50])
        )
        adj.expire_before(10)
        # expiring again with a cut below the new minimum touches nothing
        assert adj.expire_before(20) == 0 or adj.n_entries == 1
        adj.check_invariants()

    def test_expire_everything(self):
        adj = EdgeBlockAdjacency(2)
        adj.insert_batch(np.array([0]), np.array([1]), np.array([5]))
        assert adj.expire_before(100) == 1
        assert adj.n_entries == 0
        adj.check_invariants()

    def test_snapshot_dedups(self):
        adj = EdgeBlockAdjacency(4)
        adj.insert_batch(
            np.array([0, 0, 2]), np.array([1, 1, 3]), np.array([1, 2, 3])
        )
        g = adj.snapshot_csr()
        assert g.n_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 3)

    def test_snapshot_empty(self):
        adj = EdgeBlockAdjacency(3)
        g = adj.snapshot_csr()
        assert g.n_edges == 0

    def test_rejects_bad_batches(self):
        adj = EdgeBlockAdjacency(3)
        with pytest.raises(ValidationError):
            adj.insert_batch(np.array([0]), np.array([1, 2]), np.array([1]))
        with pytest.raises(ValidationError):
            adj.insert_batch(np.array([5]), np.array([1]), np.array([1]))
        with pytest.raises(ValidationError):
            adj.insert_batch(np.array([0]), np.array([9]), np.array([1]))

    def test_counters(self):
        adj = EdgeBlockAdjacency(3)
        adj.insert_batch(np.array([0, 1]), np.array([1, 2]), np.array([1, 2]))
        adj.expire_before(2)
        assert adj.entries_inserted == 2
        assert adj.entries_expired == 1

    def test_matches_reference_under_random_ops(self):
        """The structure's live entry multiset always equals a brute-force
        reference after arbitrary insert/expire interleavings."""
        rng = np.random.default_rng(71)
        adj = EdgeBlockAdjacency(10, block_size=3)
        reference = []  # list of (src, dst, t)
        t_clock = 0
        for step in range(30):
            n = int(rng.integers(1, 8))
            src = rng.integers(0, 10, n)
            dst = rng.integers(0, 10, n)
            t = t_clock + np.sort(rng.integers(0, 5, n))
            adj.insert_batch(src, dst, t)
            reference.extend(zip(src.tolist(), dst.tolist(), t.tolist()))
            t_clock += int(rng.integers(0, 4))
            if rng.random() < 0.5:
                cut = t_clock - int(rng.integers(0, 6))
                adj.expire_before(cut)
                reference = [e for e in reference if e[2] >= cut]
            adj.check_invariants()
            assert adj.n_entries == len(reference)

        got = []
        for u in range(10):
            nbrs, times = adj.vertex_entries(u)
            got.extend(zip([u] * nbrs.size, nbrs.tolist(), times.tolist()))
        assert sorted(got) == sorted(reference)
