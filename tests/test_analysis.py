"""Unit tests for analysis helpers (edge distributions, comparisons,
metrics)."""

import numpy as np
import pytest

from repro.analysis import (
    compare_models,
    distribution_summary,
    edge_distribution,
    l1_distance,
    spearman_rank_correlation,
    speedup_grid,
    topk_overlap,
)
from repro.errors import EmptyEventSetError, ValidationError
from repro.events import TemporalEventSet, WindowSpec
from repro.pagerank import PagerankConfig
from tests.conftest import random_events


class TestEdgeDistribution:
    def test_counts_sum_to_events(self, events):
        _, counts = edge_distribution(events, n_bins=20)
        assert counts.sum() == len(events)

    def test_bin_count(self, events):
        starts, counts = edge_distribution(events, n_bins=13)
        assert starts.size == 13 and counts.size == 13

    def test_empty_raises(self):
        with pytest.raises(EmptyEventSetError):
            edge_distribution(TemporalEventSet([], [], []))

    def test_summary_fields(self, events):
        s = distribution_summary(events)
        assert s.peak_to_mean >= 1.0
        assert 0.0 <= s.gini <= 1.0
        assert -1.0 <= s.trend <= 1.0
        assert s.shape_class in ("spike", "growth", "bursty", "steady")

    def test_uniform_distribution_summary(self):
        # perfectly regular events -> near-zero gini, steady class
        t = np.arange(1_000)
        es = TemporalEventSet(
            np.zeros(1_000, dtype=int), np.ones(1_000, dtype=int), t
        )
        s = distribution_summary(es, n_bins=10)
        assert s.gini < 0.05
        assert s.peak_to_mean < 1.2


class TestCompareModels:
    def test_timings_and_agreement(self):
        events = random_events(n_vertices=25, n_events=400, seed=95)
        spec = WindowSpec.covering(events, delta=3_000, sw=1_500)
        cfg = PagerankConfig(tolerance=1e-11, max_iterations=300)
        t = compare_models(events, spec, cfg, check_agreement=True)
        assert t.offline_seconds > 0
        assert t.streaming_seconds > 0
        assert t.postmortem_seconds > 0
        assert t.n_windows == spec.n_windows
        assert t.postmortem_vs_streaming == pytest.approx(
            t.streaming_seconds / t.postmortem_seconds
        )
        assert set(t.phase_breakdown) == {"offline", "streaming", "postmortem"}


class TestSpeedupGrid:
    def test_grid_shape_and_values(self):
        events = random_events(n_vertices=20, n_events=300, t_max=40 * 86_400,
                               seed=96)
        calls = []

        def fake_speedup(spec):
            calls.append((spec.sw, spec.delta))
            return float(spec.n_windows)

        grid, sws, wss = speedup_grid(
            events, [86_400, 2 * 86_400], [5, 10], fake_speedup
        )
        assert grid.shape == (2, 2)
        assert len(calls) == 4
        assert np.all(grid > 0)

    def test_max_windows_cap(self):
        events = random_events(n_vertices=20, n_events=300,
                               t_max=400 * 86_400, seed=97)

        def windows_seen(spec):
            return float(spec.n_windows)

        grid, _, _ = speedup_grid(
            events, [86_400], [5], windows_seen, max_windows=7
        )
        assert grid[0, 0] == 7


class TestMetrics:
    def test_spearman_identical(self):
        v = np.array([0.1, 0.3, 0.2])
        assert spearman_rank_correlation(v, v) == pytest.approx(1.0)

    def test_spearman_reversed(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_spearman_constant(self):
        assert spearman_rank_correlation(
            np.ones(5), np.arange(5.0)
        ) == pytest.approx(1.0)

    def test_topk_overlap(self):
        a = np.array([0.9, 0.8, 0.1, 0.0])
        b = np.array([0.8, 0.9, 0.0, 0.1])
        assert topk_overlap(a, b, k=2) == 1.0
        c = np.array([0.0, 0.1, 0.8, 0.9])
        assert topk_overlap(a, c, k=2) == 0.0

    def test_topk_validation(self):
        with pytest.raises(ValidationError):
            topk_overlap(np.ones(3), np.ones(3), k=0)

    def test_l1(self):
        assert l1_distance([0.0, 1.0], [1.0, 1.0]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            l1_distance(np.ones(2), np.ones(3))
