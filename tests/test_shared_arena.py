"""Tests for the shared-memory process backend (repro.parallel.shared_arena).

Covers the three acceptance properties of the zero-copy executor:

* **parity** — ``executor="shared"`` produces bitwise-identical window
  results (and identical rank stores via ``value_sink``) to the thread
  and pickled-process executors;
* **zero payload** — task submissions carry only handles, asserted with a
  pickle-size probe against the published array volume;
* **lifecycle** — no ``/dev/shm`` segment survives a normal run, a driver
  exception, or a killed worker.
"""

import glob
import os
import pickle
import signal

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.graph.multiwindow import MultiWindowPartition
from repro.models import PostmortemDriver, PostmortemOptions
from repro.pagerank import PagerankConfig
from repro.parallel.shared_arena import (
    ARENA_NAME_PREFIX,
    SharedArenaRegistry,
    attach_arena,
    run_shared_tasks,
)
from repro.service import RankStore, RankStoreWriter
from tests.conftest import random_events


def shm_segments():
    """Live arena segments in /dev/shm (Linux shared-memory mount)."""
    return glob.glob(f"/dev/shm/{ARENA_NAME_PREFIX}*")


@pytest.fixture
def setup():
    events = random_events(n_vertices=60, n_events=1200, seed=19)
    spec = WindowSpec.covering(events, delta=2_500, sw=700)
    cfg = PagerankConfig(tolerance=1e-11, max_iterations=300)
    return events, spec, cfg


def run_with(events, spec, cfg, executor, kernel="spmv", sink=None,
             store_values=True):
    opts = PostmortemOptions(
        n_multiwindows=3, kernel=kernel, executor=executor, n_threads=2
    )
    driver = PostmortemDriver(events, spec, cfg, opts)
    return driver.run(store_values=store_values, value_sink=sink)


# ----------------------------------------------------------------------
# arena publication round trip
# ----------------------------------------------------------------------
class TestArena:
    def test_round_trip_views(self, setup):
        events, spec, cfg = setup
        part = MultiWindowPartition(events, spec, 3)
        with SharedArenaRegistry() as reg:
            handles = reg.publish_graphs(part.graphs)
            for g, h in zip(part.graphs, handles):
                rebuilt = h.materialize()
                for key, arr in g.shared_arrays().items():
                    view = rebuilt.shared_arrays()[key]
                    assert np.array_equal(arr, view)
                    assert not view.flags.writeable
        assert shm_segments() == []

    def test_materialize_is_cached_per_process(self, setup):
        events, spec, cfg = setup
        part = MultiWindowPartition(events, spec, 2)
        with SharedArenaRegistry() as reg:
            h = reg.publish_graphs(part.graphs)[0]
            assert h.materialize() is h.materialize()

    def test_unknown_key_rejected(self, setup):
        events, spec, cfg = setup
        part = MultiWindowPartition(events, spec, 2)
        with SharedArenaRegistry() as reg:
            handle = reg.publish_graphs(part.graphs)[0].arena
            view = attach_arena(handle)
            with pytest.raises(ValidationError):
                view.shared_view("no-such-array")

    def test_close_is_idempotent(self, setup):
        events, spec, cfg = setup
        part = MultiWindowPartition(events, spec, 2)
        reg = SharedArenaRegistry()
        reg.publish_graphs(part.graphs)
        reg.close()
        reg.close()
        assert shm_segments() == []


# ----------------------------------------------------------------------
# executor parity
# ----------------------------------------------------------------------
class TestExecutorParity:
    @pytest.mark.parametrize("kernel", ["spmv", "spmm"])
    def test_shared_matches_thread_and_process_bitwise(self, setup, kernel):
        events, spec, cfg = setup
        runs = {
            ex: run_with(events, spec, cfg, ex, kernel)
            for ex in ("thread", "process", "shared")
        }
        ref = runs["thread"]
        for name in ("process", "shared"):
            other = runs[name]
            for wa, wb in zip(ref.windows, other.windows):
                assert wa.iterations == wb.iterations, (name, wa.window_index)
                assert np.array_equal(wa.values, wb.values), (
                    name, wa.window_index,
                )

    def test_value_sink_runs_in_parent(self, setup):
        events, spec, cfg = setup
        parent_pid = os.getpid()
        seen = {}

        def sink(window, values, meta):
            assert os.getpid() == parent_pid
            seen[window] = values.copy()

        run_with(events, spec, cfg, "shared", sink=sink, store_values=False)
        ref = run_with(events, spec, cfg, "serial")
        assert sorted(seen) == list(range(spec.n_windows))
        for w, values in seen.items():
            assert np.array_equal(values, ref.windows[w].values)

    def test_identical_rank_stores(self, setup, tmp_path):
        events, spec, cfg = setup
        paths = {}
        for ex in ("thread", "shared"):
            path = tmp_path / f"{ex}.rankstore"
            with RankStoreWriter(
                path,
                n_windows=spec.n_windows,
                n_vertices=events.n_vertices,
                spec=spec,
                dtype="float64",
            ) as writer:
                run_with(
                    events, spec, cfg, ex,
                    sink=writer.write_window, store_values=False,
                )
            paths[ex] = path
        with RankStore(paths["thread"]) as a, RankStore(paths["shared"]) as b:
            for w in range(spec.n_windows):
                assert np.array_equal(a.row(w), b.row(w)), w

    def test_pickled_process_still_rejects_sink(self, setup):
        events, spec, cfg = setup
        with pytest.raises(ValidationError, match="shared"):
            run_with(events, spec, cfg, "process", sink=lambda *a: None)


# ----------------------------------------------------------------------
# the zero-pickling guarantee
# ----------------------------------------------------------------------
class TestPayloadProbe:
    def test_handles_ship_no_array_payload(self, setup):
        events, spec, cfg = setup
        run = run_with(events, spec, cfg, "shared")
        stats = run.metadata["shared_arena"]
        part = MultiWindowPartition(events, spec, 3)
        pickled_graphs = sum(
            len(pickle.dumps(g.shared_arrays(), pickle.HIGHEST_PROTOCOL))
            for g in part.graphs
        )
        # the probe: total submitted task bytes must be a sliver of what
        # pickling the graphs' arrays would cost, and far below the arena
        assert stats["n_tasks"] == 3
        assert stats["payload_bytes"] < pickled_graphs / 10
        assert stats["payload_bytes"] < stats["arena_bytes"]

    def test_handle_pickle_size_is_flat_in_events(self):
        sizes = []
        for n_events in (500, 4000):
            events = random_events(n_vertices=80, n_events=n_events, seed=5)
            spec = WindowSpec.covering(events, delta=2_500, sw=900)
            part = MultiWindowPartition(events, spec, 2)
            with SharedArenaRegistry() as reg:
                handles = reg.publish_graphs(part.graphs)
                sizes.append(
                    len(pickle.dumps(handles, pickle.HIGHEST_PROTOCOL))
                )
        # 8x the events moves the handle size only by metadata jitter
        # (integer field widths), never by array payload
        assert abs(sizes[0] - sizes[1]) < 128
        assert max(sizes) < 4096


# ----------------------------------------------------------------------
# lifecycle: nothing leaks into /dev/shm
# ----------------------------------------------------------------------
def _killed_worker(graph, index, sink):
    os.kill(os.getpid(), signal.SIGKILL)


def _failing_worker(graph, index, sink):
    raise RuntimeError("worker boom")


class TestLifecycle:
    def test_normal_run_unlinks(self, setup):
        events, spec, cfg = setup
        run_with(events, spec, cfg, "shared")
        assert shm_segments() == []

    def test_failing_sink_surfaces_and_unlinks(self, setup):
        events, spec, cfg = setup

        def bad_sink(window, values, meta):
            raise RuntimeError("sink boom")

        with pytest.raises(RuntimeError, match="sink boom"):
            run_with(
                events, spec, cfg, "shared",
                sink=bad_sink, store_values=False,
            )
        assert shm_segments() == []

    def test_failing_worker_unlinks(self, setup):
        events, spec, cfg = setup
        part = MultiWindowPartition(events, spec, 3)
        with pytest.raises(RuntimeError, match="worker boom"):
            run_shared_tasks(part.graphs, _failing_worker, n_workers=2)
        assert shm_segments() == []

    def test_killed_worker_unlinks(self, setup):
        events, spec, cfg = setup
        part = MultiWindowPartition(events, spec, 3)
        with pytest.raises(BrokenProcessPool):
            run_shared_tasks(part.graphs, _killed_worker, n_workers=2)
        assert shm_segments() == []

    def test_convergence_error_unlinks(self, setup):
        events, spec, cfg = setup
        from repro.errors import ConvergenceError

        strict = PagerankConfig(
            tolerance=1e-16, max_iterations=2, strict=True
        )
        with pytest.raises(ConvergenceError):
            run_with(events, spec, strict, "shared")
        assert shm_segments() == []
