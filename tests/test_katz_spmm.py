"""Tests for the SpMM-batched Katz kernel."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import Window, WindowSpec
from repro.graph import TemporalAdjacency
from repro.kernels import KatzConfig, katz_window, katz_windows_spmm
from tests.conftest import random_events

CFG = KatzConfig(tolerance=1e-12, max_iterations=500)


@pytest.fixture(scope="module")
def setup():
    events = random_events(n_vertices=35, n_events=450, seed=77)
    spec = WindowSpec.covering(events, delta=3_000, sw=1_000)
    adj = TemporalAdjacency.from_events(events)
    return adj, spec


class TestKatzSpmm:
    def test_matches_single_kernel(self, setup):
        adj, spec = setup
        views = [adj.window_view(w) for w in spec]
        batch = katz_windows_spmm(views, CFG)
        for j, v in enumerate(views):
            single = katz_window(v, CFG)
            assert np.allclose(batch.values[:, j], single.values,
                               atol=1e-8), j

    def test_columns_are_distributions(self, setup):
        adj, spec = setup
        views = [adj.window_view(w) for w in spec]
        batch = katz_windows_spmm(views, CFG)
        for j, v in enumerate(views):
            if v.n_active_vertices:
                assert batch.values[:, j].sum() == pytest.approx(1.0,
                                                                 abs=1e-8)

    def test_empty_column(self, setup):
        adj, spec = setup
        views = [
            adj.window_view(spec.window(0)),
            adj.window_view(Window(1, 10**9, 10**9 + 1)),
        ]
        batch = katz_windows_spmm(views, CFG)
        assert batch.converged[1]
        assert np.all(batch.values[:, 1] == 0)

    def test_shared_structure_work(self, setup):
        adj, spec = setup
        views = [adj.window_view(w) for w in spec]
        batch = katz_windows_spmm(views, CFG)
        assert batch.work.edge_traversals == batch.work.iterations * adj.nnz

    def test_rejects_empty_and_mixed(self, setup):
        adj, spec = setup
        with pytest.raises(ValidationError):
            katz_windows_spmm([], CFG)
        other = TemporalAdjacency.from_events(
            random_events(n_vertices=35, n_events=450, seed=77)
        )
        with pytest.raises(ValidationError):
            katz_windows_spmm(
                [adj.window_view(spec.window(0)),
                 other.window_view(spec.window(1))],
                CFG,
            )

    def test_rejects_bad_x0(self, setup):
        adj, spec = setup
        with pytest.raises(ValidationError):
            katz_windows_spmm(
                [adj.window_view(spec.window(0))], CFG,
                x0=np.zeros((2, 1)),
            )
