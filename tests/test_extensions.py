"""Tests for the extension components: propagation blocking, the delta
incremental engine, and their integration points."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.graph import TemporalAdjacency, build_csr_from_edges
from repro.pagerank import PagerankConfig, pagerank_window
from repro.pagerank.propagation_blocking import (
    PropagationBlockingKernel,
    pagerank_window_pb,
)
from repro.streaming import StreamingDriver
from repro.streaming.delta import delta_incremental_pagerank
from repro.streaming.incremental import incremental_pagerank
from tests.conftest import random_events

CFG = PagerankConfig(tolerance=1e-12, max_iterations=400)


class TestPropagationBlocking:
    def test_matches_pull_kernel(self, events, spec):
        adj = TemporalAdjacency.from_events(events)
        for w in spec:
            view = adj.window_view(w)
            pull = pagerank_window(view, CFG)
            pb = pagerank_window_pb(view, CFG)
            assert np.allclose(pull.values, pb.values, atol=1e-9), w.index

    @pytest.mark.parametrize("n_bins", [1, 3, 16, 1000])
    def test_any_bin_count(self, adjacency, spec, n_bins):
        view = adjacency.window_view(spec.window(1))
        pb = pagerank_window_pb(view, CFG, n_bins=n_bins)
        pull = pagerank_window(view, CFG)
        assert np.allclose(pb.values, pull.values, atol=1e-9)

    def test_kernel_reuse(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        kernel = PropagationBlockingKernel(view, n_bins=8)
        a = pagerank_window_pb(view, CFG, kernel=kernel)
        b = pagerank_window_pb(view, CFG, kernel=kernel)
        assert np.array_equal(a.values, b.values)

    def test_bins_partition_edges(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        kernel = PropagationBlockingKernel(view, n_bins=8)
        covered = sum(
            int(e - s) for s, e in zip(kernel.bin_starts, kernel.bin_ends)
        )
        assert covered == kernel.src.size == view.n_active_edges

    def test_empty_window(self, adjacency):
        from repro.events import Window

        view = adjacency.window_view(Window(0, 10**9, 10**9 + 1))
        r = pagerank_window_pb(view, CFG)
        assert r.converged and np.all(r.values == 0)

    def test_rejects_bad_bins(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        with pytest.raises(ValidationError):
            PropagationBlockingKernel(view, n_bins=0)

    def test_warm_start(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        exact = pagerank_window(view, CFG)
        warm = pagerank_window_pb(view, CFG, x0=exact.values)
        assert warm.iterations <= 2


class TestDeltaIncremental:
    @pytest.fixture
    def sliding(self):
        events = random_events(n_vertices=50, n_events=2_500, t_max=50_000,
                               seed=33)
        spec = WindowSpec.covering(events, delta=15_000, sw=800)
        return events, spec

    def _window_graph(self, events, w):
        src, dst = events.edges_between(w.t_start, w.t_end)
        g = build_csr_from_edges(src, dst, events.n_vertices)
        active = np.zeros(events.n_vertices, dtype=bool)
        active[src] = True
        active[dst] = True
        return g, active

    def test_same_fixed_point_as_full(self, sliding):
        events, spec = sliding
        g0, a0 = self._window_graph(events, spec.window(0))
        prev = incremental_pagerank(g0, CFG, active=a0)
        for i in (1, 2, 3):
            g, a = self._window_graph(events, spec.window(i))
            full = incremental_pagerank(g, CFG, active=a)
            delta = delta_incremental_pagerank(g, prev.values, CFG, active=a)
            assert np.abs(full.values - delta.values).max() < 1e-7, i
            prev = full

    def test_converged_start_is_cheap(self, sliding):
        events, spec = sliding
        g, a = self._window_graph(events, spec.window(0))
        exact = incremental_pagerank(g, CFG, active=a)
        again = delta_incremental_pagerank(g, exact.values, CFG, active=a)
        # starting from the fixed point: little-to-no frontier work
        assert again.work.edge_traversals <= exact.work.edge_traversals // 4

    def test_empty_graph(self):
        g = build_csr_from_edges([], [], 5)
        r = delta_incremental_pagerank(
            g, np.zeros(5), CFG, active=np.zeros(5, dtype=bool)
        )
        assert r.converged

    def test_rejects_bad_prev(self, sliding):
        events, spec = sliding
        g, a = self._window_graph(events, spec.window(0))
        with pytest.raises(ValidationError):
            delta_incremental_pagerank(g, np.zeros(3), CFG, active=a)

    def test_driver_engine_delta_matches_warm(self, sliding):
        events, spec = sliding
        small = WindowSpec(spec.t0, spec.delta, spec.sw, 6)
        warm = StreamingDriver(events, small, CFG, engine="warm").run()
        delta = StreamingDriver(events, small, CFG, engine="delta").run()
        assert warm.max_difference(delta) < 1e-6

    def test_driver_rejects_bad_engine(self, sliding):
        events, spec = sliding
        with pytest.raises(ValueError):
            StreamingDriver(events, spec, CFG, engine="magic")
