"""Unit tests for timers, validation helpers and the error hierarchy."""

import time

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    DatasetError,
    EmptyEventSetError,
    GraphBuildError,
    ReproError,
    SchedulerError,
    ValidationError,
    WindowSpecError,
)
from repro.utils.timer import Timer, TimingAccumulator
from repro.utils.validation import (
    check_1d_float,
    check_1d_int,
    check_nonnegative,
    check_positive,
    check_probability,
    check_same_length,
    check_sorted,
)


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.001)
        assert t.elapsed >= 0.001

    def test_manual(self):
        t = Timer()
        t.start()
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.elapsed == elapsed

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestTimingAccumulator:
    def test_phases(self):
        acc = TimingAccumulator()
        with acc.phase("a"):
            pass
        with acc.phase("a"):
            pass
        with acc.phase("b"):
            pass
        assert acc.counts["a"] == 2
        assert acc.counts["b"] == 1
        assert acc.total == pytest.approx(
            acc.totals["a"] + acc.totals["b"]
        )

    def test_merge(self):
        a, b = TimingAccumulator(), TimingAccumulator()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.totals["x"] == 3.0
        assert a.totals["y"] == 3.0
        assert a.counts["x"] == 2

    def test_as_dict(self):
        acc = TimingAccumulator()
        acc.add("p", 0.5)
        assert acc.as_dict() == {"p": 0.5}


class TestValidation:
    def test_check_1d_int_accepts_lists(self):
        out = check_1d_int([1, 2, 3], "x")
        assert out.dtype == np.int64

    def test_check_1d_int_accepts_whole_floats(self):
        out = check_1d_int(np.array([1.0, 2.0]), "x")
        assert out.dtype == np.int64

    def test_check_1d_int_rejects_fractional(self):
        with pytest.raises(ValidationError):
            check_1d_int(np.array([1.5]), "x")

    def test_check_1d_int_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_1d_int(np.zeros((2, 2)), "x")

    def test_check_1d_int_rejects_strings(self):
        with pytest.raises(ValidationError):
            check_1d_int(np.array(["a"]), "x")

    def test_check_1d_float(self):
        out = check_1d_float([1, 2], "x")
        assert out.dtype == np.float64
        with pytest.raises(ValidationError):
            check_1d_float(np.zeros((2, 2)), "x")

    def test_same_length(self):
        check_same_length(([1], "a"), ([2], "b"))
        with pytest.raises(ValidationError):
            check_same_length(([1], "a"), ([1, 2], "b"))

    def test_scalars(self):
        assert check_nonnegative(0, "x") == 0
        assert check_positive(1, "x") == 1
        assert check_probability(0.5, "x") == 0.5
        with pytest.raises(ValidationError):
            check_nonnegative(-1, "x")
        with pytest.raises(ValidationError):
            check_positive(0, "x")
        with pytest.raises(ValidationError):
            check_probability(1.5, "x")

    def test_sorted(self):
        check_sorted(np.array([1, 2, 2, 3]), "x")
        with pytest.raises(ValidationError):
            check_sorted(np.array([2, 1]), "x")


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ValidationError,
            EmptyEventSetError,
            WindowSpecError,
            GraphBuildError,
            ConvergenceError,
            SchedulerError,
            DatasetError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(WindowSpecError, ValidationError)
        assert issubclass(EmptyEventSetError, ValidationError)
