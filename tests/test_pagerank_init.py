"""Unit tests for full/partial initialization (paper eq. 4)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.graph import TemporalAdjacency
from repro.pagerank import (
    PagerankConfig,
    full_initialization,
    pagerank_window,
    partial_initialization,
)
from tests.conftest import random_events


@pytest.fixture
def overlapping():
    """Events with heavily overlapping consecutive windows."""
    events = random_events(n_vertices=50, n_events=2_000, t_max=50_000, seed=51)
    spec = WindowSpec.covering(events, delta=20_000, sw=1_000)
    adj = TemporalAdjacency.from_events(events)
    return events, spec, adj


class TestFullInitialization:
    def test_uniform_over_active(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        x = full_initialization(view)
        active = view.active_vertices_mask
        assert np.allclose(x[active], 1.0 / view.n_active_vertices)
        assert np.all(x[~active] == 0)
        assert x.sum() == pytest.approx(1.0)

    def test_empty_window(self, adjacency):
        from repro.events import Window

        view = adjacency.window_view(Window(0, 10**9, 10**9 + 5))
        assert np.all(full_initialization(view) == 0)


class TestPartialInitialization:
    def test_sums_to_one(self, overlapping):
        _, spec, adj = overlapping
        v0 = adj.window_view(spec.window(0))
        v1 = adj.window_view(spec.window(1))
        prev = pagerank_window(v0)
        x = partial_initialization(v1, v0, prev.values)
        assert x.sum() == pytest.approx(1.0, abs=1e-9)

    def test_eq4_proportionality(self, overlapping):
        """Shared vertices get values proportional to the previous window's
        PageRank with the eq. 4 normalization."""
        _, spec, adj = overlapping
        v0 = adj.window_view(spec.window(0))
        v1 = adj.window_view(spec.window(1))
        prev = pagerank_window(v0)
        x = partial_initialization(v1, v0, prev.values)

        shared = v0.active_vertices_mask & v1.active_vertices_mask
        n_shared = int(shared.sum())
        n_cur = v1.n_active_vertices
        shared_mass = prev.values[shared].sum()
        expected = prev.values[shared] * (n_shared / n_cur) / shared_mass
        assert np.allclose(x[shared], expected)

    def test_new_vertices_uniform(self, overlapping):
        _, spec, adj = overlapping
        v0 = adj.window_view(spec.window(0))
        v5 = adj.window_view(spec.window(5))
        prev = pagerank_window(v0)
        x = partial_initialization(v5, v0, prev.values)
        new = v5.active_vertices_mask & ~v0.active_vertices_mask
        if new.any():
            assert np.allclose(x[new], 1.0 / v5.n_active_vertices)

    def test_closer_than_cold_start(self, overlapping):
        """The warm start must be closer to the fixed point than uniform —
        the entire premise of Section 4.2."""
        _, spec, adj = overlapping
        cfg = PagerankConfig(tolerance=1e-12, max_iterations=500)
        v0 = adj.window_view(spec.window(3))
        v1 = adj.window_view(spec.window(4))
        prev = pagerank_window(v0, cfg)
        exact = pagerank_window(v1, cfg)
        warm = partial_initialization(v1, v0, prev.values)
        cold = full_initialization(v1)
        d_warm = np.abs(warm - exact.values).sum()
        d_cold = np.abs(cold - exact.values).sum()
        assert d_warm < d_cold

    def test_same_fixed_point(self, overlapping):
        _, spec, adj = overlapping
        cfg = PagerankConfig(tolerance=1e-12, max_iterations=500)
        v0 = adj.window_view(spec.window(0))
        v1 = adj.window_view(spec.window(1))
        prev = pagerank_window(v0, cfg)
        warm = pagerank_window(
            v1, cfg, x0=partial_initialization(v1, v0, prev.values)
        )
        cold = pagerank_window(v1, cfg)
        assert np.allclose(warm.values, cold.values, atol=1e-9)

    def test_disjoint_vertex_sets_fall_back_to_full(self):
        # early window touches vertices 0..3 only, late window 4..7 only:
        # no shared vertices -> eq. 4 degenerates to full initialization
        from repro.events import TemporalEventSet

        events = TemporalEventSet(
            [0, 1, 2, 4, 5, 6],
            [1, 2, 3, 5, 6, 7],
            [10, 20, 30, 1_010, 1_020, 1_030],
        )
        adj = TemporalAdjacency.from_events(events)
        spec = WindowSpec(t0=0, delta=100, sw=1_000, n_windows=2)
        v0 = adj.window_view(spec.window(0))
        v1 = adj.window_view(spec.window(1))
        prev = pagerank_window(v0)
        x = partial_initialization(v1, v0, prev.values)
        assert np.allclose(x, full_initialization(v1))

    def test_rejects_wrong_shape(self, overlapping):
        _, spec, adj = overlapping
        v0 = adj.window_view(spec.window(0))
        v1 = adj.window_view(spec.window(1))
        with pytest.raises(ValidationError):
            partial_initialization(v1, v0, np.ones(3))
