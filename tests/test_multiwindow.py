"""Unit tests for multi-window partitioning."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.graph import MultiWindowPartition, TemporalAdjacency
from tests.conftest import random_events


@pytest.fixture
def setup():
    events = random_events(n_vertices=30, n_events=500, seed=31)
    spec = WindowSpec.covering(events, delta=2_500, sw=700)
    return events, spec


class TestPartitioning:
    def test_covers_all_windows(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 4)
        covered = []
        for g in part:
            covered.extend(g.window_indices())
        assert sorted(covered) == list(range(spec.n_windows))

    def test_uniform_distribution(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 3)
        sizes = [g.n_windows for g in part]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == spec.n_windows

    def test_clamps_to_window_count(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, spec.n_windows * 5)
        assert len(part) == spec.n_windows
        assert all(g.n_windows == 1 for g in part)

    def test_single_partition_holds_everything(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 1)
        assert len(part) == 1
        assert part[0].nnz == len(events)

    def test_rejects_nonpositive(self, setup):
        events, spec = setup
        with pytest.raises(ValidationError):
            MultiWindowPartition(events, spec, 0)

    def test_owner_routing(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 4)
        for w in range(spec.n_windows):
            g = part.graph_of(w)
            assert w in g.window_indices()
        with pytest.raises(ValidationError):
            part.owner_of(spec.n_windows)

    def test_replication_at_least_boundary_truncated(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 4)
        # stored events never exceed events x partitions and the overlap
        # duplication makes Σ|E_w| at least the events inside any window
        assert part.total_stored_events <= len(events) * 4
        assert part.replication_factor > 0
        assert part.memory_bytes() > 0


class TestLocalViews:
    def test_window_views_match_full_adjacency(self, setup):
        events, spec = setup
        full = TemporalAdjacency.from_events(events)
        part = MultiWindowPartition(events, spec, 3)
        for w in spec:
            local = part.window_view(w.index)
            reference = full.window_view(w)
            assert local.n_active_edges == reference.n_active_edges
            assert local.n_active_vertices == reference.n_active_vertices

    def test_local_edges_map_to_global(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 3)
        w = spec.window(2)
        g = part.graph_of(2)
        view = g.window_view(2)
        local_g = view.compact_graph()
        ls, ld = local_g.edges()
        got = set(
            zip(g.global_ids[ls].tolist(), g.global_ids[ld].tolist())
        )
        mask = (events.time >= w.t_start) & (events.time <= w.t_end)
        expected = set(
            zip(events.src[mask].tolist(), events.dst[mask].tolist())
        )
        assert got == expected

    def test_to_global_scatter(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 3)
        g = part[0]
        local = np.arange(g.n_local_vertices, dtype=np.float64) + 1
        out = g.to_global(local, events.n_vertices)
        assert out.shape == (events.n_vertices,)
        assert np.allclose(out[g.global_ids], local)
        others = np.setdiff1d(
            np.arange(events.n_vertices), g.global_ids
        )
        assert np.all(out[others] == 0)

    def test_local_window_rejects_foreign_index(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 3)
        g = part[0]
        foreign = part[1].first_window
        with pytest.raises(ValidationError):
            g.local_window(foreign)

    def test_subspec_timing_preserved(self, setup):
        events, spec = setup
        part = MultiWindowPartition(events, spec, 4)
        for g in part:
            for w_idx in g.window_indices():
                local = g.local_window(w_idx)
                glob = spec.window(w_idx)
                assert local.t_start == glob.t_start
                assert local.t_end == glob.t_end
                assert local.index == w_idx
