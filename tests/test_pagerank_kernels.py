"""Unit tests for the SpMV kernel, references, and cross-validation against
networkx."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.events import Window, WindowSpec
from repro.graph import TemporalAdjacency, build_csr_from_edges
from repro.pagerank import (
    PagerankConfig,
    pagerank_window,
)
from repro.pagerank.reference import (
    pagerank_csr_reference,
    pagerank_dense_reference,
)
from tests.conftest import random_events


@pytest.fixture
def tight():
    return PagerankConfig(tolerance=1e-13, max_iterations=500)


class TestReferencesAgree:
    def test_dense_vs_csr_reference(self, tight):
        rng = np.random.default_rng(41)
        g = build_csr_from_edges(
            rng.integers(0, 15, 60), rng.integers(0, 15, 60), 15
        )
        rd = pagerank_dense_reference(g, tight)
        rc = pagerank_csr_reference(g, tight)
        assert np.allclose(rd.values, rc.values, atol=1e-10)

    @pytest.mark.parametrize("dangling", ["drop", "uniform"])
    def test_both_dangling_modes(self, dangling):
        cfg = PagerankConfig(
            tolerance=1e-13, max_iterations=500, dangling=dangling
        )
        g = build_csr_from_edges([0, 1, 2], [1, 2, 0], 4)
        rd = pagerank_dense_reference(g, cfg)
        rc = pagerank_csr_reference(g, cfg)
        assert np.allclose(rd.values, rc.values, atol=1e-10)


class TestSpmvKernel:
    def test_matches_reference_on_all_windows(self, events, spec, tight):
        adj = TemporalAdjacency.from_events(events)
        for w in spec:
            view = adj.window_view(w)
            fast = pagerank_window(view, tight)
            ref = pagerank_csr_reference(
                view.compact_graph(), tight, active=view.active_vertices_mask
            )
            assert np.allclose(fast.values, ref.values, atol=1e-9), w.index

    def test_matches_networkx(self, tight):
        nx = pytest.importorskip("networkx")
        events = random_events(n_vertices=30, n_events=300, seed=44)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10_000))
        ours = pagerank_window(view, tight)

        g = nx.DiGraph()
        dedup = adj.out_csr.dedup_mask(0, 10_000)
        rows = adj.out_csr.row_ids()[dedup]
        cols = adj.out_csr.col[dedup]
        g.add_edges_from(zip(rows.tolist(), cols.tolist()))
        # networkx alpha is the damping factor = 1 - our teleport alpha;
        # its default dangling handling = uniform redistribution
        nx_pr = nx.pagerank(g, alpha=tight.damping, tol=1e-14, max_iter=1000)
        for v, score in nx_pr.items():
            assert ours.values[v] == pytest.approx(score, abs=1e-8)

    def test_empty_window(self, adjacency):
        view = adjacency.window_view(Window(0, 10**8, 2 * 10**8))
        r = pagerank_window(view)
        assert r.converged
        assert r.iterations == 0
        assert np.all(r.values == 0)

    def test_sum_to_one_with_uniform_dangling(self, events, spec):
        cfg = PagerankConfig(dangling="uniform", tolerance=1e-12,
                             max_iterations=500)
        adj = TemporalAdjacency.from_events(events)
        for w in spec:
            r = pagerank_window(adj.window_view(w), cfg)
            assert r.total_mass == pytest.approx(1.0, abs=1e-9)

    def test_drop_mode_leaks_mass(self, events, spec):
        cfg = PagerankConfig(dangling="drop", tolerance=1e-12,
                             max_iterations=500)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(spec.window(0))
        if (view.active_vertices_mask & (view.out_degrees == 0)).any():
            r = pagerank_window(view, cfg)
            assert r.total_mass < 1.0

    def test_inactive_vertices_zero(self, events, spec):
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(spec.window(0))
        r = pagerank_window(view)
        assert np.all(r.values[~view.active_vertices_mask] == 0)

    def test_x0_shape_validated(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        with pytest.raises(ValidationError):
            pagerank_window(view, x0=np.ones(3))

    def test_strict_convergence_raises(self, adjacency, spec):
        cfg = PagerankConfig(
            tolerance=1e-300, max_iterations=2, strict=True
        )
        view = adjacency.window_view(spec.window(0))
        with pytest.raises(ConvergenceError):
            pagerank_window(view, cfg)

    def test_work_stats_recorded(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        r = pagerank_window(view, PagerankConfig(edge_path="masked"))
        assert r.work.iterations == r.iterations
        assert r.work.edge_traversals == r.iterations * adjacency.nnz
        assert r.work.vertex_ops == r.iterations * view.n_active_vertices

    def test_work_stats_compacted_counts_active_edges(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        r = pagerank_window(view, PagerankConfig(edge_path="compacted"))
        assert (
            r.work.edge_traversals == r.iterations * view.n_active_edges
        )

    def test_fixed_point_property(self, adjacency, spec, tight):
        """The converged vector satisfies the PageRank equation."""
        view = adjacency.window_view(spec.window(1))
        r = pagerank_window(view, tight)
        again = pagerank_window(
            view,
            PagerankConfig(tolerance=1e-13, max_iterations=1),
            x0=r.values,
        )
        assert np.abs(again.values - r.values).sum() < 1e-10

    def test_deterministic(self, adjacency, spec, tight):
        view = adjacency.window_view(spec.window(0))
        r1 = pagerank_window(view, tight)
        r2 = pagerank_window(view, tight)
        assert np.array_equal(r1.values, r2.values)
