"""Smoke tests: every example script runs to completion.

Examples are the public face of the library — a broken one is a
documentation bug.  Each runs in a subprocess with a reduced-size
environment knob where applicable; the slowest (the full tuning sweep) is
skipped unless REPRO_RUN_SLOW_EXAMPLES is set.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "collaboration_network.py",
    "crisis_communication.py",
    "custom_kernel.py",
]

SLOW_EXAMPLES = [
    "streaming_vs_postmortem.py",
    "temporal_connectivity.py",
    "rank_dynamics.py",
    "parameter_tuning.py",
]


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES_DIR.parent,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    out = run_example(name)
    assert out.strip(), name


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW_EXAMPLES"),
    reason="set REPRO_RUN_SLOW_EXAMPLES=1 to run the slow examples",
)
def test_slow_example_runs(name):
    out = run_example(name, timeout=600)
    assert out.strip(), name


def test_all_examples_are_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
