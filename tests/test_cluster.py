"""The sharded serving federation (repro.service.cluster).

Covers the shard map, coordinator parity against the single-process
engine, admission control and load-shedding, the asyncio frontend, the
traffic generator, and the failure drill the tier exists for: a shard
killed mid-load must yield explicitly ``degraded`` (never wrong)
responses and a leak-free teardown.
"""

from __future__ import annotations

import glob
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import (
    OverloadedError,
    ShardUnavailableError,
    ValidationError,
)
from repro.events import WindowSpec
from repro.service import QueryEngine, RankStoreWriter
from repro.service.cluster import (
    ClusterFrontend,
    ReplicaProxy,
    ShardCluster,
    ShardMap,
    generate_queries,
    query_to_url,
    run_load,
)
from repro.service.cluster.shard_map import ShardSpec

N_WINDOWS = 9
N_VERTICES = 40


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    rng = np.random.default_rng(11)
    path = tmp_path_factory.mktemp("cluster") / "c.rankstore"
    spec = WindowSpec(t0=0, delta=100, sw=50, n_windows=N_WINDOWS)
    with RankStoreWriter(
        path, n_windows=N_WINDOWS, n_vertices=N_VERTICES, spec=spec
    ) as w:
        for i in range(N_WINDOWS):
            row = rng.random(N_VERTICES)
            w.write_window(i, row / row.sum())
    return str(path)


@pytest.fixture(scope="module")
def engine(store_path):
    eng = QueryEngine(store_path)
    yield eng
    eng.close()


@pytest.fixture(scope="module")
def cluster(store_path):
    """A healthy 3-shard cluster shared by the read-only tests."""
    with ShardCluster(
        store_path, n_shards=3, replicas=2, max_queue=32
    ) as c:
        yield c


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


class TestShardMap:
    def test_build_partitions_evenly(self):
        m = ShardMap.build(10, 3)
        sizes = [s.n_windows for s in m.shards]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        assert m.shards[0].window_lo == 0
        assert m.shards[-1].window_hi == 10
        for a, b in zip(m.shards, m.shards[1:]):
            assert a.window_hi == b.window_lo

    def test_every_window_owned_once(self):
        m = ShardMap.build(17, 5)
        owners = [m.shard_of(w).shard_id for w in range(17)]
        assert sorted(set(owners)) == [0, 1, 2, 3, 4]
        assert owners == sorted(owners)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardMap.build(0, 2)
        with pytest.raises(ValidationError):
            ShardMap.build(5, 0)
        with pytest.raises(ValidationError, match="at least one window"):
            ShardMap.build(3, 4)
        m = ShardMap.build(6, 2)
        with pytest.raises(ValidationError, match="out of range"):
            m.shard_of(6)

    def test_to_local(self):
        spec = ShardSpec(1, 3, 7)
        assert spec.to_local(3) == 0
        assert spec.to_local(6) == 3
        with pytest.raises(ValidationError, match="outside shard"):
            spec.to_local(7)

    def test_shards_in_range(self):
        m = ShardMap.build(9, 3)
        segs = m.shards_in_range(2, 7)
        assert [(s.shard_id, lo, hi) for s, lo, hi in segs] == [
            (0, 2, 3), (1, 3, 6), (2, 6, 7),
        ]
        only = m.shards_in_range(4, 5)
        assert len(only) == 1 and only[0][0].shard_id == 1
        with pytest.raises(ValidationError, match="invalid"):
            m.shards_in_range(5, 5)

    def test_describe_is_jsonable(self):
        desc = ShardMap.build(9, 3).describe()
        assert json.loads(json.dumps(desc)) == desc


class TestClusterParity:
    """A 3-shard cluster must answer exactly like one QueryEngine."""

    def _normalize(self, results):
        return json.loads(json.dumps(results))

    def test_full_surface_parity(self, engine, cluster):
        queries = [
            {"op": "top_k", "window": w, "k": 5} for w in range(N_WINDOWS)
        ]
        queries += [
            {"op": "rank", "vertex": v, "window": (3 * v) % N_WINDOWS}
            for v in range(10)
        ]
        queries += [
            {"op": "trajectory", "vertex": 2},
            {"op": "trajectory", "vertex": 3, "start": 1, "stop": 8},
            {"op": "trajectory", "vertex": 4, "start": 4, "stop": 5},
            {"op": "movers", "from": 0, "to": 8, "k": 6},
            {"op": "movers", "from": 3, "to": 5, "k": 6},
            {"op": "movers", "from": 4, "to": 4, "k": 6},
            {"op": "windows_at", "t": 120},
            {"op": "windows_at", "t": -5},
        ]
        assert self._normalize(cluster.batch(queries)) == self._normalize(
            engine.batch(queries)
        )

    def test_error_parity(self, engine, cluster):
        queries = [
            {"op": "top_k", "window": 99, "k": 5},
            {"op": "top_k", "window": 0, "k": 0},
            {"op": "rank", "vertex": 999, "window": 0},
            {"op": "movers", "from": 0, "to": 99},
            {"op": "movers", "from": 0, "to": 1, "k": -2},
            {"op": "trajectory", "vertex": 0, "start": 7, "stop": 3},
            {"op": "nope"},
            {"op": "rank"},
        ]
        assert self._normalize(cluster.batch(queries)) == self._normalize(
            engine.batch(queries)
        )

    def test_cross_shard_movers_match_engine(self, engine, cluster):
        for w_from, w_to in [(0, 8), (2, 3), (5, 6), (8, 0)]:
            expected = engine.movers(w_from, w_to, k=7)
            got = cluster.movers(w_from, w_to, k=7)
            assert got["ok"]
            assert self._normalize(got["result"]) == self._normalize(
                expected
            )

    def test_single_op_wrappers(self, engine, cluster):
        assert self._normalize(
            cluster.top_k(1, 3)["result"]
        ) == self._normalize(engine.top_k(1, 3))
        assert cluster.rank(5, 7)["result"] == engine.rank(5, 7)
        traj = cluster.trajectory(1, 2, 6)
        assert traj["result"] == pytest.approx(
            engine.trajectory(1, 2, 6).tolist()
        )
        assert cluster.windows_at(120) == engine.windows_at(120)

    def test_status_and_stats(self, cluster):
        status = cluster.status()
        assert status["degraded"] is False
        assert len(status["shards"]) == 3
        assert all(s["alive"] for s in status["shards"])
        assert all(len(s["replicas"]) == 2 for s in status["shards"])
        cluster.batch([{"op": "top_k", "window": 0, "k": 2}])
        stats = cluster.stats()
        assert stats["router"]["queries_routed"] >= 1
        assert len(stats["replicas"]) == 6

    def test_replicas_round_robin(self, cluster):
        for _ in range(4):
            assert cluster.top_k(0, 2)["ok"]
        flights = [
            cluster._replicas[0][r].replica_id for r in range(2)
        ]
        assert flights == [0, 1]  # both replicas exist and stayed alive
        assert all(r.alive for r in cluster._replicas[0])


class TestReplicaBackpressure:
    """Bounded per-replica admission, deterministically (stub worker)."""

    class _FakeProcess:
        pid = None

        def is_alive(self):
            return True

        def join(self, timeout=None):
            return None

        def close(self):
            return None

    def _proxy(self, max_queue=2):
        import multiprocessing

        parent, child = multiprocessing.Pipe(duplex=True)
        proxy = ReplicaProxy(
            ShardSpec(0, 0, 4), 0, self._FakeProcess(), parent,
            max_queue=max_queue, submit_timeout=0.0,
        )
        return proxy, child

    def test_sheds_past_bound(self, store_path):
        proxy, child = self._proxy(max_queue=2)
        try:
            futures = [proxy.submit("slice", w) for w in range(2)]
            with pytest.raises(OverloadedError, match="shed"):
                proxy.submit("slice", 2)
            # the stub "worker" answers; slots recycle
            for _ in range(2):
                req_id, kind, payload = child.recv()
                child.send((req_id, True, payload))
            assert sorted(f.result(timeout=5) for f in futures) == [0, 1]
            ok = proxy.submit("slice", 3)
            req_id, _, _ = child.recv()
            child.send((req_id, True, "again"))
            assert ok.result(timeout=5) == "again"
        finally:
            child.close()
            proxy.mark_dead("test over")

    def test_death_fails_pending(self):
        proxy, child = self._proxy(max_queue=4)
        pending = [proxy.submit("slice", w) for w in range(3)]
        child.close()  # worker "dies": EOF on the parent's receiver
        for f in pending:
            with pytest.raises(ShardUnavailableError):
                f.result(timeout=5)
        with pytest.raises(ShardUnavailableError):
            proxy.submit("slice", 9)
        assert proxy.in_flight() == 0

    def test_ping_bypasses_admission(self):
        proxy, child = self._proxy(max_queue=1)
        try:
            blocked = proxy.submit("slice", 0)  # occupies the only slot
            ping = proxy.submit("ping", None, admission=False)
            req_id, kind, _ = child.recv()
            assert kind == "slice"
            child.send((req_id, True, 0))
            req_id, kind, _ = child.recv()
            assert kind == "ping"
            child.send((req_id, True, {"alive": True}))
            assert blocked.result(timeout=5) == 0
            assert ping.result(timeout=5) == {"alive": True}
        finally:
            child.close()
            proxy.mark_dead("test over")


class TestFrontend:
    @pytest.fixture
    def frontend(self, cluster):
        with ClusterFrontend(cluster, port=0).start() as fe:
            yield fe

    def test_endpoints_mirror_query_server(self, frontend, engine):
        status, body = get_json(frontend.url + "/top_k?window=1&k=3")
        assert status == 200 and body["ok"]
        assert body["result"] == json.loads(
            json.dumps(engine.top_k(1, 3))
        )
        status, body = get_json(
            frontend.url + "/trajectory?vertex=2&start=1&stop=8"
        )
        assert status == 200 and len(body["result"]) == 7
        status, body = get_json(frontend.url + "/windows_at?t=120")
        assert status == 200 and body["ok"]

    def test_health_and_topology(self, frontend):
        assert get_json(frontend.url + "/health") == (
            200, {"status": "ok"}
        )
        status, hz = get_json(frontend.url + "/healthz")
        assert status == 200
        assert hz["degraded"] is False
        assert hz["shards_alive"] == 3
        status, topo = get_json(frontend.url + "/cluster")
        assert status == 200 and len(topo["shards"]) == 3
        status, info = get_json(frontend.url + "/store")
        assert info["windows"] == N_WINDOWS
        assert info["shards"] == 3

    def test_stats(self, frontend):
        get_json(frontend.url + "/top_k?window=0&k=2")
        status, stats = get_json(frontend.url + "/stats")
        assert status == 200
        assert stats["frontend"]["requests_served"] >= 1
        assert stats["router"]["queries_routed"] >= 1

    def test_batch_post(self, frontend):
        req = urllib.request.Request(
            frontend.url + "/batch",
            data=json.dumps(
                [
                    {"op": "top_k", "window": 0, "k": 2},
                    {"op": "rank", "vertex": 1, "window": 8},
                    {"op": "bogus"},
                ]
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            body = json.loads(resp.read())
        assert [r["ok"] for r in body["results"]] == [True, True, False]

    def test_bad_requests(self, frontend):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(frontend.url + "/no_such_thing")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(frontend.url + "/top_k?window=99&k=2")
        assert err.value.code == 400

    def test_global_admission_cap_sheds(self, cluster):
        fe = ClusterFrontend(cluster, port=0, max_inflight=1).start()
        try:
            gate = threading.Event()
            original = cluster.batch

            def slow_batch(queries):
                gate.wait(timeout=10)
                return original(queries)

            cluster.batch = slow_batch
            statuses = []

            def fire():
                try:
                    statuses.append(
                        get_json(fe.url + "/top_k?window=0&k=2")[0]
                    )
                except urllib.error.HTTPError as err:
                    if err.code == 429:
                        assert json.loads(err.read())["shed"] is True
                    statuses.append(err.code)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for t in threads:
                t.start()
            # let the first request occupy the single in-flight slot
            deadline = threading.Event()
            deadline.wait(timeout=0.3)
            gate.set()
            for t in threads:
                t.join(timeout=10)
            assert statuses.count(429) >= 1
            assert statuses.count(200) >= 1
            assert fe.stats()["frontend"]["requests_shed"] >= 1
        finally:
            gate.set()
            cluster.batch = original
            fe.shutdown()


class TestTraffic:
    def test_deterministic_given_seed(self):
        a = generate_queries(100, N_WINDOWS, N_VERTICES, seed=3)
        b = generate_queries(100, N_WINDOWS, N_VERTICES, seed=3)
        c = generate_queries(100, N_WINDOWS, N_VERTICES, seed=4)
        assert a == b
        assert a != c

    def test_mix_and_bounds(self):
        queries = generate_queries(
            500, N_WINDOWS, N_VERTICES,
            mix={"top_k": 0.5, "rank": 0.5}, seed=0,
        )
        ops = {q["op"] for q in queries}
        assert ops == {"top_k", "rank"}
        for q in queries:
            assert 0 <= q["window"] < N_WINDOWS
            if q["op"] == "rank":
                assert 0 <= q["vertex"] < N_VERTICES

    def test_zipf_skews_popularity(self):
        queries = generate_queries(
            2000, N_WINDOWS, 1000, mix={"rank": 1.0}, zipf_s=1.4, seed=5
        )
        counts = {}
        for q in queries:
            counts[q["vertex"]] = counts.get(q["vertex"], 0) + 1
        top_share = max(counts.values()) / len(queries)
        assert top_share > 0.05  # one hot vertex absorbs real share
        assert len(counts) < 1000  # the tail is not uniform-covered

    def test_validation(self):
        with pytest.raises(ValidationError):
            generate_queries(0, 5, 5)
        with pytest.raises(ValidationError, match="unknown ops"):
            generate_queries(5, 5, 5, mix={"flush": 1.0})
        with pytest.raises(ValidationError):
            generate_queries(5, 5, 5, mix={"top_k": 0.0})

    def test_query_to_url(self):
        assert query_to_url(
            "http://h:1/", {"op": "top_k", "window": 3, "k": 2}
        ) == "http://h:1/top_k?window=3&k=2"
        assert query_to_url(
            "http://h:1", {"op": "movers", "from": 1, "to": 2, "k": 3}
        ) == "http://h:1/movers?from=1&to=2&k=3"
        with pytest.raises(ValidationError):
            query_to_url("http://h:1", {"op": "nope"})

    def test_run_load_against_frontend(self, cluster):
        with ClusterFrontend(cluster, port=0).start() as fe:
            queries = generate_queries(
                120, N_WINDOWS, N_VERTICES, seed=9
            )
            report = run_load(fe.url, queries, concurrency=4)
        assert report.total == 120
        assert report.ok == 120
        assert report.errors == 0
        payload = report.as_dict()
        assert payload["qps"] > 0
        for stats in payload["ops"].values():
            assert stats["p99_ms"] >= stats["p50_ms"]


class TestDegradation:
    """The failure drill: kill a shard mid-load, degrade explicitly,
    tear down leak-free."""

    def test_shard_kill_mid_load(self, store_path, engine):
        cluster = ShardCluster(
            store_path, n_shards=3, replicas=1, max_queue=64,
            health_interval=0.1,
        )
        frontend = ClusterFrontend(cluster, port=0).start()
        dead = cluster.shard_map.shards[1]
        stop = threading.Event()
        failures = []

        def load():
            queries = generate_queries(
                10_000, N_WINDOWS, N_VERTICES, seed=2
            )
            for q in queries:
                if stop.is_set():
                    return
                try:
                    status, body = get_json(
                        query_to_url(frontend.url, q)
                    )
                    if not body.get("ok"):
                        failures.append(body)
                except urllib.error.HTTPError as err:
                    payload = json.loads(err.read())
                    # under the drill only explicit degradation or
                    # shedding is acceptable, never a silent error
                    if not (
                        payload.get("degraded") or payload.get("shed")
                    ):
                        failures.append(payload)
                except urllib.error.URLError:
                    return  # frontend going down at teardown

        threads = [
            threading.Thread(target=load, daemon=True) for _ in range(3)
        ]
        try:
            for t in threads:
                t.start()
            cluster.kill_shard(1)
            # wait until the router has actually noticed the death
            noticed = False
            for _ in range(100):
                if cluster.degraded():
                    noticed = True
                    break
                threading.Event().wait(0.05)
            assert noticed

            # dead range: explicit degradation on the exact window span
            res = cluster.top_k(dead.window_lo, 3)
            assert res["ok"] is False and res["degraded"] is True
            assert f"shard {dead.shard_id}" in res["error"]

            # partial answer: trajectory across the hole still serves
            # the live windows and names the missing ones
            traj = cluster.trajectory(0)
            assert traj["ok"] is True and traj["degraded"] is True
            assert traj["missing_windows"] == [
                [dead.window_lo, dead.window_hi]
            ]
            expected = engine.trajectory(0).tolist()
            for w, value in enumerate(traj["result"]):
                if dead.window_lo <= w < dead.window_hi:
                    assert value is None
                else:
                    assert value == pytest.approx(expected[w])

            # live shards keep answering correctly
            live = cluster.top_k(0, 3)
            assert live["ok"] and "degraded" not in live
            assert json.loads(json.dumps(live["result"])) == json.loads(
                json.dumps(engine.top_k(0, 3))
            )

            # the frontend reports the degradation
            _, hz = get_json(frontend.url + "/healthz")
            assert hz["degraded"] is True and hz["shards_alive"] == 2
            with pytest.raises(urllib.error.HTTPError) as err:
                get_json(
                    frontend.url + f"/top_k?window={dead.window_lo}&k=2"
                )
            assert err.value.code == 503
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
            frontend.shutdown()
            cluster.shutdown()
        assert not failures

    def test_leak_free_teardown(self, store_path):
        before = set(glob.glob("/dev/shm/repro_arena*"))
        cluster = ShardCluster(store_path, n_shards=2, replicas=2)
        procs = [
            r.process
            for replicas in cluster._replicas.values()
            for r in replicas
        ]
        assert len(procs) == 4
        # the store is file-backed, so shard publication is zero-copy
        # mapped handles: no shm segment ever exists to leak
        segments = list(cluster._registry.segments)
        assert len(segments) == 0
        assert cluster._registry.mapped_bytes > 0
        assert cluster.top_k(0, 2)["ok"]
        cluster.shutdown()
        cluster.shutdown()  # idempotent
        # no orphan worker processes
        for p in procs:
            with pytest.raises(ValueError):
                p.is_alive()  # closed handles: processes were joined
        # no /dev/shm leaks, even ones created before this test
        after = set(glob.glob("/dev/shm/repro_arena*"))
        assert after - before == set()
        for seg in segments:
            assert not glob.glob(f"/dev/shm/*{seg}*")

    def test_teardown_after_kill_still_leak_free(self, store_path):
        before = set(glob.glob("/dev/shm/repro_arena*"))
        cluster = ShardCluster(store_path, n_shards=2, replicas=1,
                               health_interval=0.1)
        cluster.kill_shard(0)
        for _ in range(100):
            if cluster.degraded():
                break
            threading.Event().wait(0.05)
        assert cluster.degraded()
        res = cluster.batch([{"op": "top_k", "window": 0, "k": 2}])
        assert res[0]["degraded"] is True
        cluster.shutdown()
        assert set(glob.glob("/dev/shm/repro_arena*")) - before == set()

    def test_replica_failover_keeps_serving(self, store_path):
        """One replica of a shard dies; the other keeps the shard alive
        (no degradation)."""
        cluster = ShardCluster(store_path, n_shards=2, replicas=2,
                               health_interval=0.1)
        try:
            cluster._replicas[0][0].kill()
            for _ in range(100):
                if not cluster._replicas[0][0].alive:
                    break
                threading.Event().wait(0.05)
            assert cluster.shard_alive(0)
            assert not cluster.degraded()
            for _ in range(6):
                assert cluster.top_k(0, 2)["ok"]
            status = cluster.status()
            replicas = status["shards"][0]["replicas"]
            assert [r["alive"] for r in replicas] == [False, True]
        finally:
            cluster.shutdown()
