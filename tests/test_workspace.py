"""Tests for the kernel workspace (repro.pagerank.workspace).

The contract under test: every kernel produces **bitwise-identical**
results with and without a workspace, returned values are freshly owned
(never aliases of workspace scratch), and buffers are actually reused
across the windows of a chain.
"""

import numpy as np
import pytest

from repro.events import WindowSpec
from repro.graph.multiwindow import MultiWindowPartition
from repro.pagerank import PagerankConfig, Workspace
from repro.pagerank.propagation_blocking import pagerank_window_pb
from repro.pagerank.spmm import pagerank_windows_spmm
from repro.pagerank.spmv import pagerank_window
from repro.pagerank.weighted import pagerank_window_weighted
from tests.conftest import random_events


@pytest.fixture
def graph():
    events = random_events(n_vertices=50, n_events=900, seed=23)
    spec = WindowSpec.covering(events, delta=2_000, sw=600)
    return MultiWindowPartition(events, spec, 1).graphs[0]


CFG = PagerankConfig(tolerance=1e-11, max_iterations=200)


class TestWorkspaceBuffers:
    def test_reuse_and_miss_accounting(self):
        ws = Workspace()
        a = ws.buffer("x", (16,), np.float64)
        b = ws.buffer("x", (16,), np.float64)
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_shape_change_reallocates(self):
        ws = Workspace()
        a = ws.buffer("x", (16,), np.float64)
        b = ws.buffer("x", (32,), np.float64)
        assert a is not b and b.shape == (32,)

    def test_zeros_is_cleared(self):
        ws = Workspace()
        buf = ws.buffer("x", (8,), np.float64)
        buf[:] = 7.0
        assert not ws.zeros("x", (8,), np.float64).any()

    def test_clear_empties(self):
        ws = Workspace()
        ws.buffer("x", (8,), np.float64)
        assert len(ws) == 1 and ws.nbytes > 0
        ws.clear()
        assert len(ws) == 0 and ws.nbytes == 0


class TestKernelParity:
    def test_window_view_construction_parity(self, graph):
        ws = Workspace()
        for w in graph.window_indices():
            plain = graph.window_view(w)
            wsv = graph.window_view(w, workspace=ws)
            assert np.array_equal(plain.in_dedup, wsv.in_dedup)
            assert np.array_equal(plain.in_degrees, wsv.in_degrees)
            assert np.array_equal(plain.out_degrees, wsv.out_degrees)
            assert np.array_equal(
                plain.active_vertices_mask, wsv.active_vertices_mask
            )
        assert ws.hits > 0

    @pytest.mark.parametrize(
        "solver", [pagerank_window, pagerank_window_weighted,
                   pagerank_window_pb],
        ids=["spmv", "weighted", "pb"],
    )
    def test_chained_window_parity(self, graph, solver):
        ws = Workspace()
        x_plain = x_ws = None
        for w in graph.window_indices():
            plain_view = graph.window_view(w)
            ws_view = graph.window_view(w, workspace=ws)
            r_plain = solver(plain_view, CFG, x0=x_plain)
            r_ws = solver(ws_view, CFG, x0=x_ws, workspace=ws)
            assert r_plain.iterations == r_ws.iterations
            assert np.array_equal(r_plain.values, r_ws.values)
            x_plain, x_ws = r_plain.values, r_ws.values
        assert ws.hits > ws.misses

    def test_spmm_batch_parity(self, graph):
        ws = Workspace()
        windows = list(graph.window_indices())[:4]
        plain_views = [graph.window_view(w) for w in windows]
        ws_views = [graph.window_view(w, workspace=ws) for w in windows]
        r_plain = pagerank_windows_spmm(plain_views, CFG)
        r_ws = pagerank_windows_spmm(ws_views, CFG, workspace=ws)
        assert np.array_equal(r_plain.values, r_ws.values)
        assert np.array_equal(
            r_plain.iterations_per_window, r_ws.iterations_per_window
        )

    def test_returned_values_are_owned(self, graph):
        """A later window's solve must not mutate an earlier result."""
        ws = Workspace()
        windows = list(graph.window_indices())
        first = pagerank_window(
            graph.window_view(windows[0], workspace=ws), CFG, workspace=ws
        )
        snapshot = first.values.copy()
        for w in windows[1:3]:
            pagerank_window(
                graph.window_view(w, workspace=ws), CFG, workspace=ws
            )
        assert np.array_equal(first.values, snapshot)


class TestDriverParity:
    @pytest.mark.parametrize("kernel", ["spmv", "spmm"])
    @pytest.mark.parametrize("partial", [True, False])
    def test_run_matches_pre_workspace_reference(self, kernel, partial):
        """The driver (which now threads one workspace through each
        chain) must match a workspace-free solve window by window."""
        from repro.models import PostmortemDriver, PostmortemOptions
        from repro.pagerank.init import full_initialization

        events = random_events(n_vertices=40, n_events=700, seed=31)
        spec = WindowSpec.covering(events, delta=2_000, sw=800)
        opts = PostmortemOptions(
            n_multiwindows=2, kernel=kernel, partial_init=partial,
            vector_length=4,
        )
        run = PostmortemDriver(events, spec, CFG, opts).run()
        if kernel == "spmv" and not partial:
            part = MultiWindowPartition(events, spec, 2)
            for g in part.graphs:
                for w in g.window_indices():
                    view = g.window_view(w)
                    ref = pagerank_window(
                        view, CFG, x0=full_initialization(view)
                    )
                    got = run.windows[w]
                    assert got.iterations == ref.iterations
                    assert np.array_equal(
                        got.values,
                        g.to_global(ref.values, events.n_vertices),
                    )
