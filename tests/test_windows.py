"""Unit tests for the sliding-window model."""

import numpy as np
import pytest

from repro.errors import WindowSpecError
from repro.events import TemporalEventSet, Window, WindowSpec
from tests.conftest import random_events


class TestWindow:
    def test_contains_inclusive(self):
        w = Window(index=0, t_start=10, t_end=20)
        assert w.contains(10) and w.contains(20)
        assert not w.contains(9) and not w.contains(21)

    def test_contains_vectorized(self):
        w = Window(index=0, t_start=10, t_end=20)
        out = w.contains(np.array([5, 10, 15, 25]))
        assert out.tolist() == [False, True, True, False]

    def test_overlaps(self):
        a = Window(0, 0, 10)
        b = Window(1, 5, 15)
        c = Window(2, 11, 20)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_length(self):
        assert Window(0, 3, 10).length == 7


class TestWindowSpec:
    def test_windows_slide(self):
        spec = WindowSpec(t0=0, delta=100, sw=30, n_windows=4)
        ws = spec.windows()
        assert [w.t_start for w in ws] == [0, 30, 60, 90]
        assert [w.t_end for w in ws] == [100, 130, 160, 190]
        assert [w.index for w in ws] == [0, 1, 2, 3]

    def test_rejects_bad_params(self):
        with pytest.raises(WindowSpecError):
            WindowSpec(t0=0, delta=0, sw=1, n_windows=1)
        with pytest.raises(WindowSpecError):
            WindowSpec(t0=0, delta=1, sw=0, n_windows=1)
        with pytest.raises(WindowSpecError):
            WindowSpec(t0=0, delta=1, sw=1, n_windows=0)

    def test_window_index_bounds(self):
        spec = WindowSpec(t0=0, delta=10, sw=5, n_windows=3)
        with pytest.raises(WindowSpecError):
            spec.window(3)
        with pytest.raises(WindowSpecError):
            spec.window(-1)

    def test_covering_starts_at_dataset(self):
        es = random_events(seed=2)
        spec = WindowSpec.covering(es, delta=2_000, sw=700)
        assert spec.t0 == es.t_min
        # last window starts at or before t_max, next would start after
        last_start = spec.t0 + (spec.n_windows - 1) * spec.sw
        assert last_start <= es.t_max
        assert last_start + spec.sw > es.t_max

    def test_covering_days(self):
        es = TemporalEventSet([0, 1], [1, 0], [0, 40 * 86_400])
        spec = WindowSpec.covering_days(es, 10, 86_400 * 5)
        assert spec.delta == 10 * 86_400
        assert spec.sw == 5 * 86_400

    def test_overlap_fraction(self):
        assert WindowSpec(0, 100, 25, 2).overlap_fraction == 0.75
        assert WindowSpec(0, 10, 20, 2).overlap_fraction == 0.0

    def test_starts_ends(self):
        spec = WindowSpec(t0=5, delta=10, sw=3, n_windows=3)
        assert spec.starts().tolist() == [5, 8, 11]
        assert spec.ends().tolist() == [15, 18, 21]
        assert spec.t_end == 21

    def test_iteration(self):
        spec = WindowSpec(t0=0, delta=10, sw=5, n_windows=4)
        assert len(list(spec)) == 4
        assert len(spec) == 4


class TestWindowMembership:
    def test_windows_containing(self):
        spec = WindowSpec(t0=0, delta=100, sw=30, n_windows=4)
        # t=95 is in windows starting at 0, 30, 60, 90 (all contain 95)
        assert spec.windows_containing(95).tolist() == [0, 1, 2, 3]
        # t=10 only in window 0
        assert spec.windows_containing(10).tolist() == [0]
        # before all windows
        assert spec.windows_containing(-1).size == 0

    def test_windows_containing_matches_bruteforce(self):
        spec = WindowSpec(t0=7, delta=50, sw=13, n_windows=9)
        for t in range(0, 250, 3):
            brute = [w.index for w in spec if w.t_start <= t <= w.t_end]
            assert spec.windows_containing(t).tolist() == brute, t

    def test_first_last_window_vectorized(self):
        spec = WindowSpec(t0=0, delta=100, sw=30, n_windows=4)
        t = np.array([0, 31, 95, 130])
        firsts = spec.first_window_of(t)
        lasts = spec.last_window_of(t)
        for i, tt in enumerate(t):
            members = spec.windows_containing(int(tt))
            if members.size:
                assert firsts[i] == members[0]
                assert lasts[i] == members[-1]

    def test_multiplicity(self):
        spec = WindowSpec(t0=0, delta=100, sw=30, n_windows=4)
        mult = spec.event_window_multiplicity(np.array([95, 10, 200]))
        assert mult.tolist() == [4, 1, 0]


class TestSubspec:
    def test_subspec_times(self):
        spec = WindowSpec(t0=0, delta=100, sw=30, n_windows=10)
        sub = spec.subspec(3, 4)
        assert sub.t0 == 90
        assert sub.n_windows == 4
        assert sub.window(0).t_start == spec.window(3).t_start

    def test_subspec_bounds(self):
        spec = WindowSpec(t0=0, delta=10, sw=5, n_windows=4)
        with pytest.raises(WindowSpecError):
            spec.subspec(2, 3)
        with pytest.raises(WindowSpecError):
            spec.subspec(-1, 2)
