"""Tests for the streaming sampling estimators (Section 3.2 related
work)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import Window
from repro.graph import TemporalAdjacency
from repro.analysis.graph_stats import triangle_count
from repro.streaming.estimators import (
    EdgeSampleTriangleCounter,
    HeadTailDegreeEstimator,
)
from tests.conftest import random_events


class TestDegreeEstimator:
    def test_full_sample_is_exact(self):
        events = random_events(n_vertices=30, n_events=400, seed=201)
        est = HeadTailDegreeEstimator(30, sample_rate=1.0)
        est.observe_batch(events.src, events.dst)
        exact = np.zeros(30, dtype=np.int64)
        np.add.at(exact, events.src, 1)
        np.add.at(exact, events.dst, 1)
        degrees, counts = est.estimate_distribution()
        assert counts.sum() == 30
        expected = np.bincount(exact, minlength=degrees.size)
        assert np.array_equal(counts.astype(int), expected)
        assert est.estimate_mean_degree() == pytest.approx(exact.mean())

    def test_sampled_estimate_close(self):
        rng = np.random.default_rng(202)
        n, m = 500, 20_000
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        est = HeadTailDegreeEstimator(n, sample_rate=0.3, seed=3)
        est.observe_batch(src, dst)
        exact_mean = 2 * m / n
        assert est.estimate_mean_degree() == pytest.approx(
            exact_mean, rel=0.15
        )
        _, counts = est.estimate_distribution()
        assert counts.sum() == pytest.approx(n, rel=0.01)

    def test_reset(self):
        est = HeadTailDegreeEstimator(10, sample_rate=1.0)
        est.observe_batch(np.array([0]), np.array([1]))
        est.reset()
        assert est.edges_seen == 0
        assert est.estimate_mean_degree() == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            HeadTailDegreeEstimator(0)
        with pytest.raises(ValidationError):
            HeadTailDegreeEstimator(10, sample_rate=0.0)
        est = HeadTailDegreeEstimator(10)
        with pytest.raises(ValidationError):
            est.observe_batch(np.array([0]), np.array([1, 2]))


class TestTriangleCounter:
    def exact_triangles(self, events):
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(
            Window(0, int(events.t_min), int(events.t_max))
        )
        return triangle_count(view)

    def test_large_capacity_is_exact_for_simple_streams(self):
        # distinct undirected edges, capacity >= stream: estimate counts
        # every closed wedge exactly once per closing edge
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 0), (1, 3)]
        counter = EdgeSampleTriangleCounter(capacity=100)
        for u, v in edges:
            counter.observe(u, v)
        # K4 has 4 triangles
        assert counter.triangles == pytest.approx(4.0)

    def test_estimate_close_on_random_graph(self):
        rng = np.random.default_rng(204)
        n, m = 60, 1_500
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        # dedupe so the exact count matches the simple-graph reference
        pairs = sorted(
            {tuple(sorted(p)) for p in zip(src[keep], dst[keep])}
        )
        from repro.events import TemporalEventSet

        events = TemporalEventSet(
            [p[0] for p in pairs],
            [p[1] for p in pairs],
            list(range(len(pairs))),
            n_vertices=n,
        )
        exact = self.exact_triangles(events)

        estimates = []
        for seed in range(5):
            counter = EdgeSampleTriangleCounter(capacity=len(pairs) // 2,
                                                seed=seed)
            counter.observe_batch(events.src, events.dst)
            estimates.append(counter.triangles)
        mean_est = float(np.mean(estimates))
        assert mean_est == pytest.approx(exact, rel=0.35)

    def test_self_loops_ignored(self):
        counter = EdgeSampleTriangleCounter(capacity=10)
        counter.observe(1, 1)
        assert counter._t == 0
        assert counter.triangles == 0.0

    def test_reset(self):
        counter = EdgeSampleTriangleCounter(capacity=10)
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            counter.observe(u, v)
        assert counter.triangles > 0
        counter.reset()
        assert counter.triangles == 0.0
        assert counter._t == 0

    def test_reservoir_bounded(self):
        counter = EdgeSampleTriangleCounter(capacity=5, seed=1)
        rng = np.random.default_rng(5)
        for _ in range(200):
            u, v = rng.integers(0, 20, 2)
            if u != v:
                counter.observe(int(u), int(v))
        assert len(counter._slots) <= 5

    def test_validation(self):
        with pytest.raises(ValidationError):
            EdgeSampleTriangleCounter(capacity=1)
        c = EdgeSampleTriangleCounter()
        with pytest.raises(ValidationError):
            c.observe_batch(np.array([0]), np.array([1, 2]))
