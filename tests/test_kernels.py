"""Tests for the additional temporal analysis kernels."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import Window, WindowSpec
from repro.graph import TemporalAdjacency
from repro.kernels import (
    KatzConfig,
    TemporalKernelDriver,
    connected_components,
    core_numbers,
    degree_centrality,
    katz_partial_init,
    katz_window,
    max_core,
)
from tests.conftest import random_events


@pytest.fixture
def view(adjacency, spec):
    return adjacency.window_view(spec.window(1))


class TestDegreeCentrality:
    def test_modes_sum(self, view):
        d_in = degree_centrality(view, "in", normalized=False)
        d_out = degree_centrality(view, "out", normalized=False)
        d_tot = degree_centrality(view, "total", normalized=False)
        assert np.allclose(d_tot, d_in + d_out)

    def test_matches_compact_graph(self, view):
        g = view.compact_graph()
        d_out = degree_centrality(view, "out", normalized=False)
        assert np.array_equal(d_out, g.out_degrees().astype(float))

    def test_normalization(self, view):
        raw = degree_centrality(view, "total", normalized=False)
        norm = degree_centrality(view, "total", normalized=True)
        denom = max(view.n_active_vertices - 1, 1)
        assert np.allclose(norm, raw / denom)

    def test_inactive_zero(self, view):
        d = degree_centrality(view)
        assert np.all(d[~view.active_vertices_mask] == 0)

    def test_bad_mode(self, view):
        with pytest.raises(ValidationError):
            degree_centrality(view, "between")


class TestConnectedComponents:
    def test_matches_scipy(self, adjacency, spec):
        sp = pytest.importorskip("scipy.sparse.csgraph")
        for w in spec:
            view = adjacency.window_view(w)
            got = connected_components(view)
            g = view.compact_graph().to_scipy()
            n_ref, labels_ref = sp.connected_components(
                g + g.T, directed=False
            )
            active = view.active_vertices_mask
            # compare only over active vertices (scipy labels isolated
            # inactive vertices as singletons)
            ref_active = labels_ref[active]
            got_active = got.labels[active]
            # same partition: labels must be a bijection
            pairs = set(zip(got_active.tolist(), ref_active.tolist()))
            assert len(pairs) == got.n_components
            assert got.n_components == len(set(ref_active.tolist()))

    def test_labels_inactive_minus_one(self, view):
        got = connected_components(view)
        assert np.all(got.labels[~view.active_vertices_mask] == -1)

    def test_sizes_and_giant(self, view):
        got = connected_components(view)
        sizes = got.sizes()
        assert sizes.sum() == view.n_active_vertices
        assert 0 < got.giant_fraction() <= 1.0

    def test_two_triangles(self):
        from repro.events import TemporalEventSet

        events = TemporalEventSet(
            [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3], [1, 2, 3, 4, 5, 6]
        )
        adj = TemporalAdjacency.from_events(events)
        got = connected_components(adj.window_view(Window(0, 0, 10)))
        assert got.n_components == 2
        assert got.labels[0] == got.labels[1] == got.labels[2]
        assert got.labels[3] == got.labels[4] == got.labels[5]
        assert got.labels[0] != got.labels[3]


class TestKCore:
    def test_matches_networkx(self, adjacency, spec):
        nx = pytest.importorskip("networkx")
        view = adjacency.window_view(spec.window(2))
        got = core_numbers(view)
        g = nx.Graph()
        compact = view.compact_graph()
        src, dst = compact.edges()
        g.add_edges_from(
            (int(u), int(v)) for u, v in zip(src, dst) if u != v
        )
        ref = nx.core_number(g)
        for v, k in ref.items():
            assert got[v] == k, v

    def test_clique_core(self):
        from repro.events import TemporalEventSet

        # K4: everyone has core number 3
        src, dst, t = [], [], []
        for i in range(4):
            for j in range(4):
                if i != j:
                    src.append(i)
                    dst.append(j)
                    t.append(len(t))
        events = TemporalEventSet(src, dst, t)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 100))
        assert core_numbers(view).tolist() == [3, 3, 3, 3]
        assert max_core(view) == 3

    def test_path_core_one(self):
        from repro.events import TemporalEventSet

        events = TemporalEventSet([0, 1, 2], [1, 2, 3], [1, 2, 3])
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10))
        assert core_numbers(view).tolist() == [1, 1, 1, 1]

    def test_empty_window(self, adjacency):
        view = adjacency.window_view(Window(0, 10**9, 10**9 + 1))
        assert max_core(view) == 0


class TestKatz:
    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        events = random_events(n_vertices=25, n_events=250, seed=45)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10_000))
        cfg = KatzConfig(attenuation=0.05, tolerance=1e-12,
                         max_iterations=1000, auto_clamp=False)
        ours = katz_window(view, cfg)

        g = nx.DiGraph()
        compact = view.compact_graph()
        src, dst = compact.edges()
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        ref = nx.katz_centrality(
            g, alpha=0.05, beta=1.0, tol=1e-14, max_iter=5000,
            normalized=False,
        )
        # compare rankings after normalizing both to unit L1 mass
        ref_vec = np.zeros(events.n_vertices)
        for v, s in ref.items():
            ref_vec[v] = s
        ref_vec /= ref_vec.sum()
        active = view.active_vertices_mask
        assert np.allclose(ours.values[active], ref_vec[active], atol=1e-6)

    def test_converges_and_positive(self, adjacency, spec):
        for w in spec:
            view = adjacency.window_view(w)
            r = katz_window(view)
            assert r.converged
            active = view.active_vertices_mask
            assert np.all(r.values[active] > 0)
            assert np.all(r.values[~active] == 0)
            if view.n_active_vertices:
                assert r.values.sum() == pytest.approx(1.0, abs=1e-8)

    def test_auto_clamp_guarantees_convergence(self, adjacency, spec):
        cfg = KatzConfig(attenuation=0.9, auto_clamp=True,
                         max_iterations=500)
        view = adjacency.window_view(spec.window(0))
        r = katz_window(view, cfg)
        assert r.converged

    def test_warm_start_helps_or_equal(self, adjacency, spec):
        cfg = KatzConfig(tolerance=1e-11, max_iterations=500)
        v0 = adjacency.window_view(spec.window(0))
        v1 = adjacency.window_view(spec.window(1))
        prev = katz_window(v0, cfg)
        x0 = katz_partial_init(v1, v0, prev.values)
        warm = katz_window(v1, cfg, x0=x0)
        cold = katz_window(v1, cfg)
        assert np.allclose(warm.values, cold.values, atol=1e-8)
        assert warm.iterations <= cold.iterations + 1

    def test_bad_config(self):
        with pytest.raises(ValidationError):
            KatzConfig(attenuation=0.0)
        with pytest.raises(ValidationError):
            KatzConfig(base=0.0)


class TestTemporalKernelDriver:
    def test_runs_all_windows(self, events, spec):
        driver = TemporalKernelDriver(events, spec, n_multiwindows=3)
        result = driver.run(connected_components)
        assert len(result.windows) == spec.n_windows
        series = result.series(lambda c: c.n_components)
        assert series.shape == (spec.n_windows,)
        assert np.all(series >= 0)

    def test_per_vertex_kernels_to_global(self, events, spec):
        driver = TemporalKernelDriver(
            events, spec, n_multiwindows=3, to_global=True
        )
        result = driver.run(core_numbers)
        for w in result.windows:
            assert w.value.shape == (events.n_vertices,)

    def test_matches_full_adjacency(self, events, spec, adjacency):
        driver = TemporalKernelDriver(events, spec, n_multiwindows=4)
        result = driver.run(max_core, name="max_core")
        for w in spec:
            direct = max_core(adjacency.window_view(w))
            assert result.windows[w.index].value == direct

    def test_validation(self, events, spec):
        with pytest.raises(ValidationError):
            TemporalKernelDriver(events, spec, n_multiwindows=0)
