"""Validate the power-iteration kernels against the paper's eq. 2: the
PageRank vector solves the sparse linear system

    (I - alpha' A^T D^-1) x = alpha/|V_i| * e_active

(with alpha' the damping factor and dangling mass folded in).  Solving the
system directly with scipy and comparing against the iterative kernels
confirms both the formulation and the fixed point, independent of the
iteration scheme."""

import numpy as np
import pytest

from repro.events import Window
from repro.graph import TemporalAdjacency
from repro.pagerank import PagerankConfig, pagerank_window
from tests.conftest import random_events

scipy_sparse = pytest.importorskip("scipy.sparse")
from scipy.sparse.linalg import spsolve  # noqa: E402


def solve_linear_system(view, config):
    """Direct solve of eq. 2 on the window's simple graph, with uniform
    dangling redistribution folded into the operator."""
    n = view.adjacency.n_vertices
    active = view.active_vertices_mask
    n_active = int(active.sum())
    graph = view.compact_graph()
    src, dst = graph.edges()
    deg = graph.out_degrees().astype(np.float64)

    damping = config.damping
    # column-stochastic A^T D^-1 over active vertices
    data = 1.0 / deg[src]
    M = scipy_sparse.csr_matrix(
        (data, (dst, src)), shape=(n, n)
    ).tolil()
    # dangling columns: uniform over active vertices
    dangling = np.flatnonzero(active & (deg == 0))
    act_idx = np.flatnonzero(active)
    for u in dangling:
        M[act_idx, u] = 1.0 / n_active
    M = M.tocsr()

    A = scipy_sparse.identity(n, format="csr") - damping * M
    b = np.where(active, config.alpha / n_active, 0.0)
    # restrict to active vertices (inactive rows are identity with b=0)
    x = spsolve(A.tocsc(), b)
    x[~active] = 0.0
    return x


class TestEq2LinearSystem:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_power_iteration_solves_eq2(self, seed):
        events = random_events(n_vertices=30, n_events=300, seed=seed)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10_000))
        config = PagerankConfig(tolerance=1e-13, max_iterations=1_000)

        direct = solve_linear_system(view, config)
        iterative = pagerank_window(view, config)
        assert np.allclose(iterative.values, direct, atol=1e-9)

    def test_solution_is_distribution(self):
        events = random_events(n_vertices=20, n_events=150, seed=9)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10_000))
        config = PagerankConfig()
        direct = solve_linear_system(view, config)
        assert direct.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(direct >= -1e-12)
