"""Unit + property tests for cost-balanced multi-window partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import get_profile
from repro.errors import ValidationError
from repro.events import TemporalEventSet, WindowSpec
from repro.graph import (
    BalancedMultiWindowPartition,
    MultiWindowPartition,
    balanced_boundaries,
    greedy_boundaries,
    window_event_counts,
)
from repro.graph.balanced import run_work
from repro.models import OfflineDriver, PostmortemDriver, PostmortemOptions
from repro.pagerank import PagerankConfig
from tests.conftest import random_events


@pytest.fixture
def spiky():
    """Events concentrated in one burst: the case where uniform window
    splits are maximally imbalanced."""
    rng = np.random.default_rng(17)
    n = 2_000
    # 80% of events in the middle 10% of the time span
    t_burst = rng.integers(45_000, 55_000, int(n * 0.8))
    t_rest = rng.integers(0, 100_000, n - t_burst.size)
    t = np.sort(np.concatenate([t_burst, t_rest]))
    src = rng.integers(0, 50, n)
    dst = (src + 1 + rng.integers(0, 48, n)) % 50
    return TemporalEventSet(src, dst, t, n_vertices=50)


class TestBoundaries:
    def test_window_event_counts(self, events, spec):
        counts = window_event_counts(events, spec)
        for w in spec:
            assert counts[w.index] == events.count_between(
                w.t_start, w.t_end
            )

    def test_boundaries_are_a_partition(self, spiky):
        spec = WindowSpec.covering(spiky, delta=8_000, sw=2_000)
        for fn in (balanced_boundaries, greedy_boundaries):
            b = fn(spiky, spec, 5)
            assert b[0] == 0 and b[-1] == spec.n_windows
            assert all(x < y for x, y in zip(b, b[1:]))

    def test_minimax_beats_uniform_on_spiky_data(self, spiky):
        spec = WindowSpec.covering(spiky, delta=8_000, sw=2_000)
        balanced = BalancedMultiWindowPartition(spiky, spec, 6)
        uniform = MultiWindowPartition(spiky, spec, 6)
        uniform_max = max(
            run_work(spiky, spec, g.first_window,
                     g.first_window + g.n_windows)
            for g in uniform
        )
        assert balanced.max_run_work() <= uniform_max

    def test_minimax_is_optimal_vs_bruteforce(self):
        """Exhaustively check tiny instances against all contiguous
        partitions."""
        from itertools import combinations

        events = random_events(n_vertices=10, n_events=120, t_max=1_000,
                               seed=19)
        spec = WindowSpec.covering(events, delta=200, sw=120)
        n = spec.n_windows
        for parts in (2, 3):
            got = balanced_boundaries(events, spec, parts)
            got_max = max(
                run_work(events, spec, a, b)
                for a, b in zip(got[:-1], got[1:])
            )
            best = None
            for cuts in combinations(range(1, n), parts - 1):
                b = [0, *cuts, n]
                val = max(
                    run_work(events, spec, x, y)
                    for x, y in zip(b[:-1], b[1:])
                )
                best = val if best is None else min(best, val)
            assert got_max == best, (parts, got)

    def test_single_part(self, events, spec):
        assert balanced_boundaries(events, spec, 1) == [0, spec.n_windows]

    def test_rejects_nonpositive(self, events, spec):
        with pytest.raises(ValidationError):
            balanced_boundaries(events, spec, 0)

    @given(st.integers(2, 10), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_property_partition_valid(self, seed, parts):
        events = random_events(n_vertices=15, n_events=200, t_max=5_000,
                               seed=seed)
        spec = WindowSpec.covering(events, delta=1_500, sw=400)
        b = balanced_boundaries(events, spec, parts)
        assert b[0] == 0 and b[-1] == spec.n_windows
        assert len(b) - 1 <= max(parts, 1)
        assert all(x < y for x, y in zip(b, b[1:]))


class TestBalancedPartitionInDriver:
    @pytest.mark.parametrize("method", ["minimax", "greedy"])
    def test_same_pagerank_as_uniform(self, method):
        events = random_events(n_vertices=30, n_events=600, seed=23)
        spec = WindowSpec.covering(events, delta=2_500, sw=700)
        cfg = PagerankConfig(tolerance=1e-12, max_iterations=300)
        baseline = OfflineDriver(events, spec, cfg).run()
        run = PostmortemDriver(
            events,
            spec,
            cfg,
            PostmortemOptions(n_multiwindows=4, partition_method=method),
        ).run()
        assert baseline.max_difference(run) < 1e-9

    def test_covers_all_windows(self, spiky):
        spec = WindowSpec.covering(spiky, delta=8_000, sw=2_000)
        part = BalancedMultiWindowPartition(spiky, spec, 5)
        covered = sorted(
            w for g in part for w in g.window_indices()
        )
        assert covered == list(range(spec.n_windows))
        for w in range(spec.n_windows):
            assert w in part.graph_of(w).window_indices()

    def test_profiles_smoke(self):
        events = get_profile("ia-enron-email").generate(scale=0.05)
        spec = WindowSpec.covering_days(events, 730, 86_400 * 60)
        part = BalancedMultiWindowPartition(events, spec, 4)
        assert part.max_run_work() > 0

    def test_invalid_method(self, spiky):
        spec = WindowSpec.covering(spiky, delta=8_000, sw=2_000)
        with pytest.raises(ValidationError):
            BalancedMultiWindowPartition(spiky, spec, 3, method="dp")
        with pytest.raises(ValidationError):
            PostmortemOptions(partition_method="dp")
