"""Active-edge compaction: structure correctness, bitwise parity of the
masked and compacted kernel paths, the adaptive cost-model decision, and
the driver/CLI threading of ``edge_path``."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.graph import MultiWindowPartition, TemporalAdjacency
from repro.models import PostmortemDriver, PostmortemOptions
from repro.pagerank import (
    PagerankConfig,
    Workspace,
    compact_pull,
    compact_pull_union,
    compact_push,
    pagerank_window,
    pagerank_window_pb,
    pagerank_window_weighted,
    pagerank_windows_spmm,
    resolve_edge_path,
)
from repro.pagerank.compaction import validate_edge_path
from repro.parallel.cost_model import (
    DEFAULT_EXPECTED_ITERATIONS,
    CostModel,
    choose_edge_path,
)
from repro.runtime.context import DriverContext
from tests.conftest import random_events

CFG = PagerankConfig(tolerance=1e-12, max_iterations=300)


def make_view(seed=0, n_vertices=40, n_events=400, delta=3_000, sw=1_000,
              window=0):
    events = random_events(
        n_vertices=n_vertices, n_events=n_events, seed=seed
    )
    adj = TemporalAdjacency.from_events(events)
    spec = WindowSpec.covering(events, delta=delta, sw=sw)
    return adj.window_view(spec.window(window))


# ---------------------------------------------------------------------------
# packed-structure correctness
# ---------------------------------------------------------------------------
class TestCompactStructure:
    def test_matches_boolean_compress(self):
        view = make_view(seed=7)
        in_csr = view.adjacency.in_csr
        packed = compact_pull(view)
        assert packed.n_edges == view.n_active_edges
        assert np.array_equal(packed.col, in_csr.col[view.in_dedup])
        # per-row ranges reproduce the active in-degrees
        lengths = np.diff(packed.indptr)
        assert np.array_equal(lengths, view.in_degrees)

    def test_workspace_and_owned_paths_agree(self):
        view_owned = make_view(seed=11)
        ws = Workspace()
        events = random_events(seed=11)
        adj = TemporalAdjacency.from_events(events)
        spec = WindowSpec.covering(events, delta=3_000, sw=1_000)
        view_ws = adj.window_view(spec.window(0), workspace=ws)
        a = view_owned.compact_pull()
        b = view_ws.compact_pull()
        assert np.array_equal(a.col, b.col)
        assert np.array_equal(a.indptr, b.indptr)

    def test_owned_result_is_cached(self):
        view = make_view(seed=3)
        assert view.compact_pull() is view.compact_pull()

    def test_empty_window(self):
        view = make_view(seed=5, window=0, delta=1, sw=1)
        # shrink the window until nothing is active (t range below min t)
        events = random_events(seed=5)
        adj = TemporalAdjacency.from_events(events)
        from repro.events import Window

        view = adj.window_view(Window(0, -10, -5))
        packed = compact_pull(view)
        assert packed.n_edges == 0
        assert packed.indptr[-1] == 0

    def test_union_covers_every_window(self):
        events = random_events(seed=13)
        adj = TemporalAdjacency.from_events(events)
        spec = WindowSpec.covering(events, delta=3_000, sw=1_000)
        views = [adj.window_view(spec.window(i)) for i in range(3)]
        packed = compact_pull_union(views)
        union = np.zeros(adj.nnz, dtype=np.bool_)
        for v in views:
            union |= v.in_dedup
        assert packed.n_edges == int(union.sum())
        assert np.array_equal(packed.col, adj.in_csr.col[union])
        positions = np.flatnonzero(union)
        for j, v in enumerate(views):
            assert np.array_equal(packed.active[:, j], v.in_dedup[positions])

    def test_push_orientation(self):
        view = make_view(seed=17)
        out_csr = view.adjacency.out_csr
        ts, te = view.window.t_start, view.window.t_end
        dedup = out_csr.dedup_mask(ts, te)
        src, dst = compact_push(view)
        assert np.array_equal(src, out_csr.row_ids()[dedup])
        assert np.array_equal(dst, out_csr.col[dedup])
        ws_src, ws_dst = compact_push(view, workspace=Workspace())
        assert np.array_equal(ws_src, src)
        assert np.array_equal(ws_dst, dst)


# ---------------------------------------------------------------------------
# bitwise parity: masked vs compacted vs auto, all four kernels
# ---------------------------------------------------------------------------
def _views_regimes():
    """(name, view) pairs covering empty, sparse, and fully-active
    windows, plus a dangling-heavy one."""
    from repro.events import TemporalEventSet, Window

    regimes = []
    # sparse: one window of a long event stream
    regimes.append(("sparse", make_view(seed=23)))
    # fully active: window spans all of time
    events = random_events(seed=29)
    adj = TemporalAdjacency.from_events(events)
    regimes.append(("full", adj.window_view(Window(0, 0, 10_000))))
    # empty
    regimes.append(("empty", adj.window_view(Window(0, -10, -5))))
    # dangling-heavy: a star where leaves never point back
    src = [0] * 12 + [1, 2, 3]
    dst = list(range(1, 13)) + [13, 14, 15]
    t = list(range(15))
    ev = TemporalEventSet(src, dst, t, n_vertices=16)
    adj2 = TemporalAdjacency.from_events(ev)
    regimes.append(("dangling", adj2.window_view(Window(0, 0, 20))))
    return regimes


@pytest.mark.parametrize("use_workspace", [False, True], ids=["owned", "ws"])
@pytest.mark.parametrize(
    "name,view", _views_regimes(), ids=[n for n, _ in _views_regimes()]
)
class TestBitwiseParity:
    def _solve(self, kernel, view, path, use_workspace, **kw):
        ws = Workspace() if use_workspace else None
        return kernel(
            view, replace(CFG, edge_path=path), workspace=ws, **kw
        )

    def test_spmv(self, name, view, use_workspace):
        base = self._solve(pagerank_window, view, "masked", use_workspace)
        for path in ("compacted", "auto"):
            r = self._solve(pagerank_window, view, path, use_workspace)
            assert np.array_equal(r.values, base.values)
            assert r.iterations == base.iterations

    def test_weighted(self, name, view, use_workspace):
        base = self._solve(
            pagerank_window_weighted, view, "masked", use_workspace
        )
        for path in ("compacted", "auto"):
            r = self._solve(
                pagerank_window_weighted, view, path, use_workspace
            )
            assert np.array_equal(r.values, base.values)
            assert r.iterations == base.iterations

    def test_pb_matches_spmv_all_paths(self, name, view, use_workspace):
        """PB is inherently compacted; it must keep matching the pull
        kernel whichever path the pull kernel takes."""
        ws = Workspace() if use_workspace else None
        pb = pagerank_window_pb(view, CFG, workspace=ws)
        for path in ("masked", "compacted"):
            r = self._solve(pagerank_window, view, path, use_workspace)
            assert np.allclose(pb.values, r.values, atol=1e-12)

    def test_spmm(self, name, view, use_workspace):
        views = [view] * 3
        ws0 = Workspace() if use_workspace else None
        base = pagerank_windows_spmm(
            views, replace(CFG, edge_path="masked"), workspace=ws0
        )
        for path in ("compacted", "auto"):
            ws = Workspace() if use_workspace else None
            r = pagerank_windows_spmm(
                views, replace(CFG, edge_path=path), workspace=ws
            )
            assert np.array_equal(r.values, base.values)
            assert np.array_equal(
                r.iterations_per_window, base.iterations_per_window
            )


def test_spmm_distinct_windows_parity():
    events = random_events(seed=31)
    adj = TemporalAdjacency.from_events(events)
    spec = WindowSpec.covering(events, delta=3_000, sw=1_000)
    views = [adj.window_view(spec.window(i)) for i in range(4)]
    base = pagerank_windows_spmm(views, replace(CFG, edge_path="masked"))
    comp = pagerank_windows_spmm(views, replace(CFG, edge_path="compacted"))
    assert np.array_equal(comp.values, base.values)


# ---------------------------------------------------------------------------
# adaptive selection
# ---------------------------------------------------------------------------
class TestEdgePathSelection:
    def test_sparse_long_run_compacts(self):
        # 5% activity over many iterations: packing obviously amortizes
        assert choose_edge_path(10_000, 500, 100, 50) == "compacted"

    def test_fully_active_stays_masked(self):
        assert choose_edge_path(10_000, 10_000, 100, 50) == "masked"

    def test_single_iteration_stays_masked(self):
        # one iteration cannot repay a pack priced at ~2 edge-traversals
        assert choose_edge_path(10_000, 9_000, 100, 1) == "masked"

    def test_empty_structure_masked(self):
        assert choose_edge_path(0, 0, 100, 50) == "masked"

    def test_crossover_moves_with_pack_cost(self):
        cheap = CostModel(c_pack=1e-12)
        dear = CostModel(c_pack=1.0)
        args = (10_000, 9_999, 100, 2)
        assert cheap.choose_edge_path(*args) == "compacted"
        assert dear.choose_edge_path(*args) == "masked"

    def test_resolve_pinned_paths_bypass_model(self):
        for path in ("masked", "compacted"):
            cfg = PagerankConfig(edge_path=path)
            assert resolve_edge_path(cfg, 100, 1, 10) == path

    def test_resolve_auto_uses_hint(self):
        cfg = PagerankConfig(edge_path="auto", max_iterations=500)
        # hint=1 -> never repays; large hint -> compacts
        assert resolve_edge_path(cfg, 10_000, 500, 100, 1) == "masked"
        assert (
            resolve_edge_path(cfg, 10_000, 500, 100, 100) == "compacted"
        )

    def test_resolve_auto_caps_hint_by_budget(self):
        cfg = PagerankConfig(edge_path="auto", max_iterations=1)
        assert resolve_edge_path(cfg, 10_000, 500, 100, 400) == "masked"

    def test_nonpositive_hint_falls_back_to_default_audibly(
        self, monkeypatch, caplog
    ):
        import logging

        from repro.pagerank import compaction

        monkeypatch.setattr(compaction, "_NONPOSITIVE_HINT_NOTED", False)
        cfg = PagerankConfig(edge_path="auto", max_iterations=500)
        with caplog.at_level(
            logging.DEBUG, logger="repro.pagerank.compaction"
        ):
            # hint=0 (a previous empty window) behaves exactly like "no
            # hint": the conservative default, not "zero iterations"
            assert resolve_edge_path(cfg, 10_000, 500, 100, 0) \
                == resolve_edge_path(cfg, 10_000, 500, 100, None)
            notes = [
                r for r in caplog.records
                if "iteration_hint=0" in r.getMessage()
            ]
            assert len(notes) == 1
            assert "DEFAULT_EXPECTED_ITERATIONS" in notes[0].getMessage()
            # the note is a one-shot latch, not per-call noise
            resolve_edge_path(cfg, 10_000, 500, 100, 0)
            assert len(
                [
                    r for r in caplog.records
                    if "iteration_hint" in r.getMessage()
                ]
            ) == 1

    def test_nonpositive_hint_crossover_boundary(self):
        # at the 10_000/500 structure the default (20 expected
        # iterations) amortizes the pack but a true hint of 1 does not:
        # hint=0 must land on the default's side of the crossover
        cfg = PagerankConfig(edge_path="auto", max_iterations=500)
        assert resolve_edge_path(cfg, 10_000, 500, 100, 0) == "compacted"
        assert resolve_edge_path(cfg, 10_000, 500, 100, 1) == "masked"

    def test_default_expected_iterations_positive(self):
        assert DEFAULT_EXPECTED_ITERATIONS > 0

    def test_validate_edge_path(self):
        assert validate_edge_path("auto") == "auto"
        with pytest.raises(ValidationError):
            validate_edge_path("fastest")

    def test_config_rejects_bad_edge_path(self):
        with pytest.raises(ValidationError):
            PagerankConfig(edge_path="fastest")


# ---------------------------------------------------------------------------
# driver / context / CLI threading
# ---------------------------------------------------------------------------
class TestDriverThreading:
    def _run(self, edge_path, kernel="spmv", context=None):
        events = random_events(seed=37, n_events=300)
        spec = WindowSpec.covering(events, delta=3_000, sw=1_500)
        cfg = replace(CFG, edge_path=edge_path)
        driver = PostmortemDriver(
            events, spec, cfg,
            PostmortemOptions(n_multiwindows=2, kernel=kernel),
            context=context,
        )
        return driver.run()

    @pytest.mark.parametrize("kernel", ["spmv", "spmm"])
    def test_driver_paths_agree(self, kernel):
        runs = {
            p: self._run(p, kernel) for p in ("masked", "compacted", "auto")
        }
        base = runs["masked"]
        for p in ("compacted", "auto"):
            for w_base, w in zip(base.windows, runs[p].windows):
                assert np.array_equal(w_base.values, w.values)
                assert w_base.iterations == w.iterations

    def test_compacted_does_less_edge_work(self):
        masked = self._run("masked")
        comp = self._run("compacted")
        assert (
            comp.work.edge_traversals < masked.work.edge_traversals
        )

    def test_context_override_wins(self):
        # config says masked, context pins compacted: context wins
        ctx = DriverContext(edge_path="compacted")
        via_ctx = self._run("masked", context=ctx)
        comp = self._run("compacted")
        assert via_ctx.work.edge_traversals == comp.work.edge_traversals

    def test_context_validates_edge_path(self):
        with pytest.raises(ValidationError):
            DriverContext(edge_path="fastest")

    def test_multiwindow_views_forward_workspace(self):
        events = random_events(seed=41)
        spec = WindowSpec.covering(events, delta=3_000, sw=1_000)
        part = MultiWindowPartition(events, spec, 2)
        ws = Workspace()
        view = part.window_view(0, workspace=ws)
        packed = view.compact_pull()
        assert packed.n_edges == view.n_active_edges


def test_cli_run_accepts_edge_path(tmp_path, capsys):
    import io

    from repro.cli import main
    from repro.events import save_events_npz

    events = random_events(seed=43, n_events=200)
    path = tmp_path / "ev.npz"
    save_events_npz(events, str(path))
    outs = {}
    for edge_path in ("masked", "compacted"):
        buf = io.StringIO()
        rc = main(
            [
                "run", str(path), "--delta-days", "0.03", "--sw", "1000",
                "--kernel", "spmv", "--edge-path", edge_path,
            ],
            out=buf,
        )
        assert rc == 0
        outs[edge_path] = buf.getvalue()
    # same solve, different execution strategy: identical tables
    table = {
        k: "\n".join(
            line for line in v.splitlines() if not line.startswith("total")
        )
        for k, v in outs.items()
    }
    assert table["masked"] == table["compacted"]
