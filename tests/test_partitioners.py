"""Unit tests for TBB-style partitioners."""

import pytest

from repro.errors import ValidationError
from repro.parallel.partitioners import (
    AUTO,
    SIMPLE,
    STATIC,
    chunk_ranges,
    contiguous_blocks,
    get_partitioner,
    round_robin_owner,
)


def covers(ranges, n):
    flat = []
    for lo, hi in ranges:
        assert lo < hi
        flat.extend(range(lo, hi))
    return flat == list(range(n))


class TestChunkRanges:
    def test_simple_exact_granularity(self):
        ranges = chunk_ranges(10, 3, SIMPLE)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert covers(ranges, 10)

    def test_simple_granularity_one(self):
        ranges = chunk_ranges(5, 1, SIMPLE)
        assert len(ranges) == 5

    def test_auto_caps_chunk_count(self):
        # auto never creates more than ~factor * workers chunks
        ranges = chunk_ranges(10_000, 1, AUTO, n_workers=4)
        assert len(ranges) <= AUTO.initial_split_factor * 4 + 1
        assert covers(ranges, 10_000)

    def test_auto_respects_granularity_floor(self):
        ranges = chunk_ranges(100, 50, AUTO, n_workers=8)
        assert all(hi - lo <= 50 or len(ranges) <= 2 for lo, hi in ranges)
        assert covers(ranges, 100)

    def test_static_one_block_per_worker(self):
        ranges = chunk_ranges(100, 1, STATIC, n_workers=4)
        assert len(ranges) == 4
        assert covers(ranges, 100)

    def test_static_granularity_limits_blocks(self):
        # 10 items at granularity 5 -> at most 2 blocks even with 8 workers
        ranges = chunk_ranges(10, 5, STATIC, n_workers=8)
        assert len(ranges) == 2

    def test_empty(self):
        assert chunk_ranges(0, 1, SIMPLE) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            chunk_ranges(-1, 1, SIMPLE)
        with pytest.raises(ValidationError):
            chunk_ranges(5, 0, SIMPLE)
        with pytest.raises(ValidationError):
            chunk_ranges(5, 1, SIMPLE, n_workers=0)


class TestContiguousBlocks:
    def test_even_split(self):
        assert contiguous_blocks(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_uneven_split(self):
        blocks = contiguous_blocks(10, 3)
        assert blocks == [(0, 4), (4, 7), (7, 10)]

    def test_more_blocks_than_items(self):
        blocks = contiguous_blocks(2, 5)
        assert len(blocks) == 2

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValidationError):
            contiguous_blocks(5, 0)


class TestLookup:
    def test_by_name(self):
        assert get_partitioner("auto") is AUTO
        assert get_partitioner("simple") is SIMPLE
        assert get_partitioner("static") is STATIC

    def test_unknown(self):
        with pytest.raises(ValidationError):
            get_partitioner("affinity")

    def test_round_robin(self):
        owner = round_robin_owner(5, 2)
        assert owner.tolist() == [0, 1, 0, 1, 0]
        with pytest.raises(ValidationError):
            round_robin_owner(3, 0)

    def test_steal_flags(self):
        assert AUTO.steals and SIMPLE.steals
        assert not STATIC.steals
