"""Tests for weighted PageRank and per-window structural statistics."""

import numpy as np
import pytest

from repro.analysis.graph_stats import (
    degree_histogram,
    triangle_count,
    window_stats,
)
from repro.events import TemporalEventSet, Window
from repro.graph import TemporalAdjacency
from repro.pagerank import PagerankConfig, pagerank_window
from repro.pagerank.weighted import (
    pagerank_window_weighted,
    window_edge_weights,
)
from tests.conftest import random_events

CFG = PagerankConfig(tolerance=1e-12, max_iterations=400)


class TestWindowEdgeWeights:
    def test_counts_multiplicities(self):
        # (0 -> 1) three times, twice inside the window; (0 -> 2) once
        events = TemporalEventSet(
            [0, 0, 0, 0], [1, 1, 1, 2], [5, 10, 50, 12]
        )
        adj = TemporalAdjacency.from_events(events)
        dedup, weights = window_edge_weights(adj.out_csr, 0, 20)
        got = {
            (int(adj.out_csr.row_ids()[j]), int(adj.out_csr.col[j])):
                weights[j]
            for j in np.flatnonzero(dedup)
        }
        assert got == {(0, 1): 2.0, (0, 2): 1.0}

    def test_total_weight_equals_active_events(self, adjacency, spec):
        for w in spec:
            dedup, weights = window_edge_weights(
                adjacency.in_csr, w.t_start, w.t_end
            )
            active = adjacency.in_csr.active_mask(w.t_start, w.t_end)
            assert weights[dedup].sum() == active.sum()

    def test_empty_structure(self):
        events = TemporalEventSet([], [], [], n_vertices=3)
        adj = TemporalAdjacency.from_events(events)
        dedup, weights = window_edge_weights(adj.in_csr, 0, 10)
        assert dedup.size == 0 and weights.size == 0


class TestWeightedPagerank:
    def test_equals_unweighted_when_no_duplicates(self):
        # distinct (u, v) pairs only -> all multiplicities are 1
        events = TemporalEventSet(
            [0, 1, 2, 3], [1, 2, 3, 0], [1, 2, 3, 4]
        )
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10))
        a = pagerank_window(view, CFG)
        b = pagerank_window_weighted(view, CFG)
        assert np.allclose(a.values, b.values, atol=1e-12)

    def test_matches_networkx_weighted(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(83)
        n, m = 20, 300
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        t = np.sort(rng.integers(0, 1_000, int(keep.sum())))
        events = TemporalEventSet(src[keep], dst[keep], t, n_vertices=n)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 1_000))
        ours = pagerank_window_weighted(view, CFG)

        g = nx.DiGraph()
        for u, v in zip(events.src.tolist(), events.dst.tolist()):
            if g.has_edge(u, v):
                g[u][v]["weight"] += 1.0
            else:
                g.add_edge(u, v, weight=1.0)
        ref = nx.pagerank(g, alpha=CFG.damping, tol=1e-14, max_iter=2000,
                          weight="weight")
        for v, s in ref.items():
            assert ours.values[v] == pytest.approx(s, abs=1e-8), v

    def test_multiplicity_shifts_rank(self):
        # v1 and v2 both receive from v0, but v0 -> v1 fires 9 times
        rows = [(0, 1, t) for t in range(9)] + [
            (0, 2, 9), (1, 0, 10), (2, 0, 11),
        ]
        events = TemporalEventSet(
            [r[0] for r in rows], [r[1] for r in rows], [r[2] for r in rows]
        )
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 20))
        unweighted = pagerank_window(view, CFG)
        weighted = pagerank_window_weighted(view, CFG)
        # unweighted treats v1 and v2 symmetrically
        assert unweighted.values[1] == pytest.approx(unweighted.values[2])
        # weighted favours the high-multiplicity target
        assert weighted.values[1] > weighted.values[2]

    def test_mass_conserved(self, adjacency, spec):
        for w in spec:
            view = adjacency.window_view(w)
            r = pagerank_window_weighted(view, CFG)
            if view.n_active_vertices:
                assert r.total_mass == pytest.approx(1.0, abs=1e-8)


class TestGraphStats:
    def test_triangles_match_networkx(self):
        nx = pytest.importorskip("networkx")
        events = random_events(n_vertices=25, n_events=300, seed=87)
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10_000))
        got = triangle_count(view)
        g = nx.Graph()
        compact = view.compact_graph()
        src, dst = compact.edges()
        g.add_edges_from(
            (int(u), int(v)) for u, v in zip(src, dst) if u != v
        )
        ref = sum(nx.triangles(g).values()) // 3
        assert got == ref

    def test_known_triangle(self):
        events = TemporalEventSet([0, 1, 2], [1, 2, 0], [1, 2, 3])
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10))
        assert triangle_count(view) == 1
        stats = window_stats(view)
        assert stats.triangles == 1
        assert stats.transitivity == pytest.approx(1.0)
        assert stats.n_vertices == 3 and stats.n_edges == 3

    def test_degree_histogram_sums_to_vertices(self, adjacency, spec):
        view = adjacency.window_view(spec.window(0))
        hist = degree_histogram(view)
        assert hist.sum() == view.n_active_vertices

    def test_empty_window_stats(self, adjacency):
        view = adjacency.window_view(Window(0, 10**9, 10**9 + 1))
        assert triangle_count(view) == 0
        s = window_stats(view)
        assert s.n_vertices == 0 and s.density == 0.0
