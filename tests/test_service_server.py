"""End-to-end tests for the JSON/HTTP query server (repro.service.server)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.service import QueryEngine, QueryServer, RankStoreWriter
from repro.service.server import BatchingExecutor


@pytest.fixture
def store_path(tmp_path):
    rng = np.random.default_rng(7)
    path = tmp_path / "srv.rankstore"
    with RankStoreWriter(path, n_windows=6, n_vertices=50) as w:
        for i in range(6):
            row = rng.random(50)
            w.write_window(i, row / row.sum())
    return path


@pytest.fixture
def server(store_path):
    srv = QueryServer(store_path, port=0, workers=2).start()
    yield srv
    srv.shutdown()


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def post_json(url: str, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


class TestEndpoints:
    def test_health(self, server):
        assert get_json(server.url + "/health") == (200, {"status": "ok"})

    def test_store_info(self, server):
        status, info = get_json(server.url + "/store")
        assert status == 200
        assert info["windows"] == 6
        assert info["vertices"] == 50

    def test_top_k(self, server):
        status, body = get_json(server.url + "/top_k?window=0&k=3")
        assert status == 200 and body["ok"]
        scores = [s for _, s in body["result"]]
        assert len(body["result"]) == 3
        assert scores == sorted(scores, reverse=True)

    def test_rank_matches_top_k(self, server):
        _, top = get_json(server.url + "/top_k?window=2&k=1")
        vertex, score = top["result"][0]
        _, body = get_json(
            server.url + f"/rank?vertex={vertex}&window=2"
        )
        assert body["result"] == pytest.approx(score)

    def test_trajectory(self, server):
        status, body = get_json(
            server.url + "/trajectory?vertex=3&start=1&stop=5"
        )
        assert status == 200
        assert len(body["result"]) == 4

    def test_movers(self, server):
        status, body = get_json(server.url + "/movers?from=0&to=5&k=4")
        assert status == 200
        assert len(body["result"]) == 4

    def test_bad_window_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(server.url + "/top_k?window=42")
        assert err.value.code == 400
        assert "out of range" in json.loads(err.value.read())["error"]

    def test_bad_param_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(server.url + "/top_k?window=abc")
        assert err.value.code == 400

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(server.url + "/flush_everything")
        assert err.value.code == 404

    def test_batch_post(self, server):
        status, body = post_json(
            server.url + "/batch",
            [
                {"op": "top_k", "window": 0, "k": 2},
                {"op": "rank", "vertex": 0, "window": 0},
                {"op": "windows_at", "t": 0},
            ],
        )
        assert status == 200
        ok = [r["ok"] for r in body["results"]]
        # the store has no window intervals, so windows_at fails cleanly
        assert ok == [True, True, False]

    def test_batch_post_rejects_non_list(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(server.url + "/batch", {"op": "top_k"})
        assert err.value.code == 400

    def test_stats_counts_batches(self, server):
        for _ in range(3):
            get_json(server.url + "/top_k?window=1&k=2")
        status, stats = get_json(server.url + "/stats")
        assert status == 200
        assert stats["batching"]["jobs_submitted"] >= 3
        assert stats["batching"]["batches_executed"] >= 1
        assert stats["topk_cache"]["hits"] >= 2


class TestConcurrency:
    def test_concurrent_load_and_coalescing(self, server):
        errors = []

        def hammer():
            try:
                for _ in range(15):
                    status, body = get_json(
                        server.url + "/top_k?window=3&k=5"
                    )
                    assert status == 200 and body["ok"]
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        _, stats = get_json(server.url + "/stats")
        assert stats["batching"]["jobs_submitted"] >= 90

    def test_shutdown_is_idempotent(self, store_path):
        srv = QueryServer(store_path, port=0).start()
        assert get_json(srv.url + "/health")[0] == 200
        srv.shutdown()
        srv.shutdown()
        with pytest.raises(urllib.error.URLError):
            get_json(srv.url + "/health")


class TestBatchingExecutor:
    def test_coalesces_queued_jobs(self, store_path):
        engine = QueryEngine(store_path)
        executor = BatchingExecutor(engine, workers=1, max_batch=16)
        # stall the single worker so subsequent jobs queue behind it
        gate = threading.Event()
        blocker = executor.submit(
            [{"op": "rank", "vertex": 0, "window": 0}]
        )
        original_batch = engine.batch

        def slow_batch(queries):
            gate.wait(timeout=5)
            return original_batch(queries)

        engine.batch = slow_batch
        futures = [
            executor.submit([{"op": "rank", "vertex": v, "window": 1}])
            for v in range(5)
        ]
        gate.set()
        results = [f.result(timeout=5) for f in futures]
        blocker.result(timeout=5)
        assert all(r[0]["ok"] for r in results)
        stats = executor.stats()
        assert stats["jobs_submitted"] == 6
        # the 5 stalled jobs ran in fewer batches than jobs
        assert stats["batches_executed"] < stats["jobs_submitted"]
        executor.stop()
        engine.close()

    def test_submit_after_stop_rejected(self, store_path):
        engine = QueryEngine(store_path)
        executor = BatchingExecutor(engine, workers=1)
        executor.stop()
        with pytest.raises(ValidationError, match="stopped"):
            executor.submit([{"op": "rank", "vertex": 0, "window": 0}])
        engine.close()

    def test_validates_params(self, store_path):
        engine = QueryEngine(store_path)
        with pytest.raises(ValidationError):
            BatchingExecutor(engine, workers=0)
        with pytest.raises(ValidationError):
            BatchingExecutor(engine, max_batch=0)
        engine.close()

    def test_stop_reports_worker_exit(self, store_path):
        engine = QueryEngine(store_path)
        executor = BatchingExecutor(engine, workers=2)
        assert executor.stop() is True
        assert executor.stop() is True  # idempotent
        engine.close()

    def test_stop_timeout_fails_queued_jobs(self, store_path):
        """A worker stuck past the stop timeout: stop() reports failure
        (so the caller knows not to unmap the store) and queued jobs get
        an immediate error instead of hanging until request timeout."""
        engine = QueryEngine(store_path)
        executor = BatchingExecutor(engine, workers=1, max_batch=1)
        entered, gate = threading.Event(), threading.Event()
        original_batch = engine.batch

        def slow_batch(queries):
            entered.set()
            gate.wait(timeout=10)
            return original_batch(queries)

        engine.batch = slow_batch
        blocker = executor.submit([{"op": "rank", "vertex": 0, "window": 0}])
        assert entered.wait(timeout=5)
        queued = executor.submit([{"op": "rank", "vertex": 1, "window": 0}])
        assert executor.stop(timeout=0.2) is False  # worker still stalled
        with pytest.raises(ValidationError, match="stopped"):
            queued.result(timeout=1)
        with pytest.raises(ValidationError, match="stopped"):
            executor.submit([{"op": "rank", "vertex": 2, "window": 0}])
        gate.set()
        assert blocker.result(timeout=5)[0]["ok"]
        for t in executor._workers:
            t.join(timeout=5)
        assert executor.stop() is True
        engine.close()


class TestAdmissionControl:
    """The bounded admission queue: real load-shedding, not latency."""

    def _stalled_executor(self, store_path, max_queue):
        engine = QueryEngine(store_path)
        executor = BatchingExecutor(
            engine, workers=1, max_batch=1, max_queue=max_queue,
            submit_timeout=0.0,
        )
        entered, gate = threading.Event(), threading.Event()
        original_batch = engine.batch

        def slow_batch(queries):
            entered.set()
            gate.wait(timeout=10)
            return original_batch(queries)

        engine.batch = slow_batch
        return engine, executor, entered, gate

    def test_validates_bounds(self, store_path):
        engine = QueryEngine(store_path)
        with pytest.raises(ValidationError):
            BatchingExecutor(engine, max_queue=0)
        with pytest.raises(ValidationError):
            BatchingExecutor(engine, submit_timeout=-1.0)
        engine.close()

    def test_full_queue_sheds(self, store_path):
        from repro.errors import OverloadedError

        engine, executor, entered, gate = self._stalled_executor(
            store_path, max_queue=2
        )
        try:
            # one job occupies the worker (its slot is recycled once the
            # worker dequeues it), then two more fill the admission queue
            futures = [
                executor.submit([{"op": "rank", "vertex": 0, "window": 0}])
            ]
            assert entered.wait(timeout=5)
            futures += [
                executor.submit([{"op": "rank", "vertex": v, "window": 0}])
                for v in (1, 2)
            ]
            with pytest.raises(OverloadedError, match="shed"):
                executor.submit([{"op": "rank", "vertex": 9, "window": 0}])
            assert executor.stats()["jobs_shed"] == 1
            gate.set()
            assert all(
                f.result(timeout=5)[0]["ok"] for f in futures
            )
            # slots were recycled: submits admit again after the drain
            ok = executor.submit([{"op": "rank", "vertex": 1, "window": 1}])
            assert ok.result(timeout=5)[0]["ok"]
        finally:
            gate.set()
            executor.stop()
            engine.close()

    def test_unbounded_by_default(self, store_path):
        engine = QueryEngine(store_path)
        executor = BatchingExecutor(engine, workers=1)
        assert executor._slots is None
        futures = [
            executor.submit([{"op": "rank", "vertex": v, "window": 0}])
            for v in range(50)
        ]
        assert all(f.result(timeout=10)[0]["ok"] for f in futures)
        assert executor.stats()["jobs_shed"] == 0
        executor.stop()
        engine.close()

    def test_http_429_when_saturated(self, store_path):
        srv = QueryServer(
            store_path, port=0, workers=1, max_batch=1, max_queue=1,
            submit_timeout=0.0,
        ).start()
        try:
            entered, gate = threading.Event(), threading.Event()
            original_batch = srv.engine.batch

            def slow_batch(queries):
                entered.set()
                gate.wait(timeout=10)
                return original_batch(queries)

            srv.engine.batch = slow_batch
            statuses = []

            def fire():
                try:
                    statuses.append(
                        get_json(srv.url + "/top_k?window=0&k=2")[0]
                    )
                except urllib.error.HTTPError as err:
                    statuses.append(err.code)
                    if err.code == 429:
                        assert json.loads(err.read())["shed"] is True

            threads = [
                threading.Thread(target=fire) for _ in range(8)
            ]
            for t in threads:
                t.start()
            assert entered.wait(timeout=5)
            gate.set()
            for t in threads:
                t.join(timeout=10)
            assert statuses.count(429) >= 1
            assert statuses.count(200) >= 1
            assert srv.executor.stats()["jobs_shed"] >= 1
        finally:
            gate.set()
            srv.shutdown()


class TestHealthz:
    def test_healthz_reports_load(self, server):
        status, body = get_json(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["in_flight"] == 0
        assert body["workers"] == 2

    def test_stats_expose_admission_fields(self, server):
        get_json(server.url + "/top_k?window=0&k=2")
        _, stats = get_json(server.url + "/stats")
        batching = stats["batching"]
        for key in ("jobs_shed", "in_flight", "mean_batch_queries",
                    "max_queue", "jobs_completed"):
            assert key in batching
        assert batching["in_flight"] == 0
        assert batching["jobs_completed"] >= 1
