"""Unit tests for the SpMM region schedule (Section 4.4)."""

import pytest

from repro.models.schedule import (
    SpmmBatch,
    sequential_schedule,
    spmm_region_schedule,
)


def all_windows(batches):
    out = []
    for b in batches:
        out.extend(b.windows)
    return out


class TestSequential:
    def test_order_and_predecessors(self):
        batches = sequential_schedule(10, 4)
        assert [b.windows for b in batches] == [[10], [11], [12], [13]]
        assert [b.predecessors for b in batches] == [
            [None], [10], [11], [12]
        ]


class TestRegionSchedule:
    def test_paper_example_pattern(self):
        """80 windows, vector length 8 -> first batch picks each region's
        head: G0, G10, G20, ... G70 (the paper's example)."""
        batches = spmm_region_schedule(0, 80, 8)
        assert batches[0].windows == [0, 10, 20, 30, 40, 50, 60, 70]
        assert batches[0].predecessors == [None] * 8
        assert batches[1].windows == [1, 11, 21, 31, 41, 51, 61, 71]
        assert batches[1].predecessors == [0, 10, 20, 30, 40, 50, 60, 70]

    def test_every_window_exactly_once(self):
        for n, L in [(8, 4), (10, 3), (7, 16), (1, 1), (100, 16)]:
            batches = spmm_region_schedule(5, n, L)
            assert sorted(all_windows(batches)) == list(range(5, 5 + n))

    def test_only_first_batch_cold(self):
        batches = spmm_region_schedule(0, 64, 8)
        assert all(p is None for p in batches[0].predecessors)
        for b in batches[1:]:
            assert all(p is not None for p in b.predecessors)

    def test_predecessor_solved_in_earlier_batch(self):
        batches = spmm_region_schedule(0, 50, 8)
        solved = set()
        for b in batches:
            for w, p in zip(b.windows, b.predecessors):
                if p is not None:
                    assert p in solved, (w, p)
            solved.update(b.windows)

    def test_uneven_regions(self):
        # 10 windows into 3 regions -> sizes 4, 3, 3
        batches = spmm_region_schedule(0, 10, 3)
        assert batches[0].windows == [0, 4, 7]
        assert batches[-1].width >= 1
        assert sorted(all_windows(batches)) == list(range(10))

    def test_vector_length_larger_than_windows(self):
        batches = spmm_region_schedule(0, 3, 16)
        assert len(batches) == 1
        assert batches[0].windows == [0, 1, 2]

    def test_rejects_bad_vector_length(self):
        with pytest.raises(ValueError):
            spmm_region_schedule(0, 4, 0)

    def test_batch_width(self):
        b = SpmmBatch(windows=[1, 2], predecessors=[None, 1])
        assert b.width == 2
