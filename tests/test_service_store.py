"""Tests for the on-disk rank store (repro.service.store)."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.models import PostmortemDriver, PostmortemOptions
from repro.service import RankStore, RankStoreWriter, write_store
from repro.service.store import is_rank_store


@pytest.fixture
def run_and_spec(events, spec, config):
    run = PostmortemDriver(events, spec, config).run()
    return run, spec


class TestWriter:
    def test_rows_out_of_order(self, tmp_path):
        path = tmp_path / "s.rankstore"
        rng = np.random.default_rng(0)
        rows = rng.random((5, 8)).astype(np.float32)
        with RankStoreWriter(path, n_windows=5, n_vertices=8) as w:
            for i in (3, 0, 4, 1, 2):
                w.write_window(i, rows[i])
        store = RankStore(path)
        assert np.array_equal(np.asarray(store.matrix), rows)

    def test_missing_window_fails_close(self, tmp_path):
        w = RankStoreWriter(tmp_path / "s.rankstore", n_windows=3,
                            n_vertices=4)
        w.write_window(0, np.zeros(4))
        w.write_window(2, np.zeros(4))
        with pytest.raises(ValidationError, match="1 windows never written"):
            w.close()

    def test_wrong_shape_rejected(self, tmp_path):
        with RankStoreWriter(tmp_path / "s.rankstore", n_windows=1,
                             n_vertices=4) as w:
            with pytest.raises(ValidationError, match="expected shape"):
                w.write_window(0, np.zeros(5))
            w.write_window(0, np.zeros(4))

    def test_window_index_out_of_range(self, tmp_path):
        w = RankStoreWriter(tmp_path / "s.rankstore", n_windows=2,
                            n_vertices=4)
        with pytest.raises(ValidationError, match="out of range"):
            w.write_window(2, np.zeros(4))
        w.abort()

    def test_spec_window_count_mismatch(self, tmp_path, spec):
        with pytest.raises(ValidationError, match="windows"):
            RankStoreWriter(tmp_path / "s.rankstore",
                            n_windows=spec.n_windows + 1, n_vertices=4,
                            spec=spec)

    def test_write_after_close_rejected(self, tmp_path):
        with RankStoreWriter(tmp_path / "s.rankstore", n_windows=1,
                             n_vertices=2) as w:
            w.write_window(0, np.zeros(2))
        with pytest.raises(ValidationError, match="closed"):
            w.write_window(0, np.zeros(2))

    def test_bad_dtype_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="float32 or float64"):
            RankStoreWriter(tmp_path / "s.rankstore", n_windows=1,
                            n_vertices=2, dtype=np.int32)


class TestReader:
    def test_not_a_store(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\0" * 256)
        with pytest.raises(ValidationError, match="bad magic"):
            RankStore(path)
        assert not is_rank_store(path)
        assert not is_rank_store(tmp_path / "missing")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "short.rankstore"
        path.write_bytes(b"RANKSTR1")
        with pytest.raises(ValidationError, match="too short"):
            RankStore(path)

    def test_unfinalized_store_rejected(self, tmp_path):
        path = tmp_path / "s.rankstore"
        w = RankStoreWriter(path, n_windows=1, n_vertices=2)
        w.write_window(0, np.zeros(2))
        w.abort()  # close() never ran: index_offset still 0
        with pytest.raises(ValidationError, match="never finalized"):
            RankStore(path)

    def test_row_is_mmap_view(self, tmp_path):
        with RankStoreWriter(tmp_path / "s.rankstore", n_windows=2,
                             n_vertices=8) as w:
            w.write_window(0, np.arange(8))
            w.write_window(1, np.arange(8) * 2)
        store = RankStore(tmp_path / "s.rankstore")
        row = store.row(1)
        assert isinstance(store.matrix, np.memmap)
        assert not row.flags["OWNDATA"]
        assert row[3] == pytest.approx(6.0)

    def test_windows_at_requires_intervals(self, tmp_path):
        with RankStoreWriter(tmp_path / "s.rankstore", n_windows=1,
                             n_vertices=2) as w:
            w.write_window(0, np.zeros(2))
        store = RankStore(tmp_path / "s.rankstore")
        with pytest.raises(ValidationError, match="no window intervals"):
            store.windows_at(0)

    def test_windows_at_matches_spec(self, tmp_path, spec):
        with RankStoreWriter(tmp_path / "s.rankstore",
                             n_windows=spec.n_windows, n_vertices=2,
                             spec=spec) as w:
            for i in range(spec.n_windows):
                w.write_window(i, np.zeros(2))
        store = RankStore(tmp_path / "s.rankstore")
        for t in (spec.t0 - 1, spec.t0, spec.t0 + spec.delta,
                  spec.t_end, spec.t_end + 1):
            expected = spec.windows_containing(t)
            assert np.array_equal(store.windows_at(t), expected)


class TestRoundTrip:
    """Acceptance: served ranks are bitwise-equal to the run's vectors."""

    def test_float64_store_is_bitwise_exact(self, tmp_path, run_and_spec):
        run, spec = run_and_spec
        path = tmp_path / "exact.rankstore"
        write_store(run, path, spec=spec, dtype=np.float64)
        store = RankStore(path)
        assert store.n_windows == spec.n_windows
        for w in run.windows:
            assert np.array_equal(
                np.asarray(store.row(w.window_index)), w.values
            )
            meta = store.window_meta(w.window_index)
            assert meta["iterations"] == w.iterations
            assert meta["converged"] == w.converged
            assert meta["residual"] == pytest.approx(w.residual)
            assert meta["n_active_vertices"] == w.n_active_vertices
            assert meta["n_active_edges"] == w.n_active_edges

    def test_float32_store_matches_cast(self, tmp_path, run_and_spec):
        run, spec = run_and_spec
        path = tmp_path / "f32.rankstore"
        write_store(run, path, spec=spec)
        store = RankStore(path)
        for w in run.windows:
            assert np.array_equal(
                np.asarray(store.row(w.window_index)),
                w.values.astype(np.float32),
            )

    def test_store_values_false_refused(self, events, spec, config,
                                        tmp_path):
        run = PostmortemDriver(events, spec, config).run(store_values=False)
        with pytest.raises(ValidationError, match="store_values=False"):
            write_store(run, tmp_path / "x.rankstore")


class TestDriverSink:
    """The streaming writer hook on the postmortem driver."""

    def test_sink_equals_write_store(self, events, spec, config, tmp_path):
        driver = PostmortemDriver(events, spec, config)
        eager = tmp_path / "eager.rankstore"
        streamed = tmp_path / "streamed.rankstore"

        run = driver.run()
        write_store(run, eager, spec=spec, dtype=np.float64)

        with RankStoreWriter(streamed, n_windows=spec.n_windows,
                             n_vertices=events.n_vertices, spec=spec,
                             dtype=np.float64) as writer:
            run2 = driver.run(store_values=False,
                              value_sink=writer.write_window)
        assert all(w.values is None for w in run2.windows)

        a, b = RankStore(eager), RankStore(streamed)
        assert np.array_equal(np.asarray(a.matrix), np.asarray(b.matrix))
        for i in range(spec.n_windows):
            assert a.window_meta(i) == b.window_meta(i)

    def test_sink_with_thread_executor(self, events, spec, config,
                                       tmp_path):
        options = PostmortemOptions(executor="thread", n_threads=3)
        path = tmp_path / "threaded.rankstore"
        with RankStoreWriter(path, n_windows=spec.n_windows,
                             n_vertices=events.n_vertices, spec=spec,
                             dtype=np.float64) as writer:
            PostmortemDriver(events, spec, config, options).run(
                store_values=False, value_sink=writer.write_window
            )
        reference = PostmortemDriver(events, spec, config).run()
        store = RankStore(path)
        for w in reference.windows:
            np.testing.assert_allclose(
                np.asarray(store.row(w.window_index)), w.values,
                atol=1e-12,
            )

    def test_sink_with_process_executor_rejected(self, events, spec,
                                                 config):
        options = PostmortemOptions(executor="process")
        driver = PostmortemDriver(events, spec, config, options)
        with pytest.raises(ValidationError, match="process"):
            driver.run(value_sink=lambda *a: None)

    def test_streaming_peak_memory_independent_of_window_count(
        self, tmp_path
    ):
        """Acceptance: the sink path never holds the full matrix."""
        n_vertices = 20_000
        row = np.random.default_rng(0).random(n_vertices)

        def peak_for(n_windows: int) -> int:
            writer = RankStoreWriter(
                tmp_path / f"m{n_windows}.rankstore",
                n_windows=n_windows, n_vertices=n_vertices,
            )
            tracemalloc.start()
            for i in range(n_windows):
                writer.write_window(i, row)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            writer.close()
            return peak

        few, many = peak_for(8), peak_for(64)
        row_bytes = n_vertices * 4
        # peak stays within a few rows regardless of window count
        assert many < 8 * row_bytes
        assert many < few * 2 + row_bytes


class TestCliIntegration:
    def test_run_store_save_inspect_roundtrip(self, tmp_path):
        import io

        from repro.cli import main

        events_path = tmp_path / "ev.npz"
        store_path = tmp_path / "ev.rankstore"
        save_path = tmp_path / "run.npz"
        assert main(
            ["generate", "askubuntu", "--scale", "0.05", "--out",
             str(events_path)],
            out=io.StringIO(),
        ) == 0
        out = io.StringIO()
        assert main(
            ["run", str(events_path), "--delta-days", "180",
             "--sw", "5184000", "--max-windows", "6",
             "--store", str(store_path), "--save", str(save_path),
             "--no-compress"],
            out=out,
        ) == 0
        assert "wrote rank store" in out.getvalue()

        out = io.StringIO()
        assert main(["inspect", str(store_path)], out=out) == 0
        assert "rankstore v1" in out.getvalue()

        out = io.StringIO()
        assert main(["inspect", str(save_path)], out=out) == 0
        assert "run archive" in out.getvalue()

        out = io.StringIO()
        assert main(
            ["query", str(store_path), "top-k", "--window", "1", "-k", "3"],
            out=out,
        ) == 0
        assert "top-3 of window 1" in out.getvalue()

        out = io.StringIO()
        assert main(
            ["query", str(store_path), "trajectory", "--vertex", "0",
             "--start", "0", "--stop", "4"],
            out=out,
        ) == 0
        assert "trajectory of vertex 0" in out.getvalue()

        out = io.StringIO()
        assert main(
            ["query", str(store_path), "movers", "--from", "0", "--to",
             "1"],
            out=out,
        ) == 0
        assert "movers 0 -> 1" in out.getvalue()

    def test_query_bad_window_exits_nonzero(self, tmp_path):
        import io

        from repro.cli import main

        path = tmp_path / "s.rankstore"
        with RankStoreWriter(path, n_windows=1, n_vertices=4) as w:
            w.write_window(0, np.ones(4))
        assert main(
            ["query", str(path), "top-k", "--window", "9"],
            out=io.StringIO(),
        ) == 1
