"""Lint infrastructure: suppression spans, scoping, --explain, doc drift.

These are the edge cases of the *engine*, as opposed to the rules and
analyses themselves — a ``# lint: disable=`` above a decorator must reach
the ``def`` it decorates, a disable on the last line of a five-line call
must reach the call, nested packages must inherit a scope from any
ancestor path fragment, and the ``--explain`` text must stay identical
to the docs table so neither can drift.
"""

from __future__ import annotations

import ast
import io
import re
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import ALL_RULES, lint_source, statement_spans
from repro.lint.analyses import ALL_ANALYSES
from repro.lint.core import Finding, filter_suppressed
from repro.lint.rules import MmapEscapeRule, UnseededRngRule

REPO_ROOT = Path(__file__).resolve().parents[1]


def spans_for(source: str):
    return statement_spans(ast.parse(textwrap.dedent(source)))


# ----------------------------------------------------------------------
# statement spans
# ----------------------------------------------------------------------
class TestStatementSpans:
    def test_multiline_simple_statement_spans_all_lines(self):
        spans = spans_for("""\
            value = compute(
                a,
                b,
            )
            """)
        assert (1, 4) in spans

    def test_decorated_def_span_starts_at_decorator(self):
        spans = spans_for("""\
            @retry
            @timeout(30)
            def fetch(
                url,
            ):
                return url
            """)
        # decorator line 1 through the multi-line header, stopping
        # before the body (line 6)
        assert (1, 5) in spans

    def test_compound_statement_spans_header_only(self):
        spans = spans_for("""\
            if condition:
                a = 1
                b = 2
            """)
        assert (1, 1) in spans
        assert not any(s == (1, 3) for s in spans)

    def test_nested_statements_each_get_a_span(self):
        spans = spans_for("""\
            class C:
                def m(self):
                    x = call(
                        1,
                    )
            """)
        assert (1, 1) in spans  # class header
        assert (2, 2) in spans  # def header
        assert (3, 5) in spans  # the multiline assign


# ----------------------------------------------------------------------
# suppression across spans
# ----------------------------------------------------------------------
class TestSuppressionSpans:
    def test_disable_on_last_line_of_multiline_statement(self):
        source = textwrap.dedent("""\
            def f():
                return np.random.rand(
                    10,
                )  # lint: disable=unseeded-rng — fixture noise
            """)
        assert lint_source(source, path="kernels/fx.py") == []

    def test_disable_above_decorator_reaches_the_def(self):
        # mutable-default reports at the def line; the disable sits two
        # lines above it, on the line before the decorator
        source = textwrap.dedent("""\
            # lint: disable=mutable-default — sentinel list, never mutated
            @staticmethod
            def f(acc=[]):
                return acc
            """)
        assert lint_source(source, path="any/fx.py") == []

    def test_disable_on_decorator_line_reaches_the_def(self):
        source = textwrap.dedent("""\
            @staticmethod  # lint: disable=mutable-default — sentinel
            def f(acc=[]):
                return acc
            """)
        assert lint_source(source, path="any/fx.py") == []

    def test_disable_inside_body_does_not_blanket_the_header(self):
        # a disable on a body line must not reach a finding on the
        # compound statement's header
        source = textwrap.dedent("""\
            def f(acc=[]):
                x = 1  # lint: disable=mutable-default — wrong place
                return acc
            """)
        findings = lint_source(source, path="any/fx.py")
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_disable_other_rule_does_not_suppress(self):
        source = textwrap.dedent("""\
            def f(acc=[]):  # lint: disable=unseeded-rng
                return acc
            """)
        findings = lint_source(source, path="any/fx.py")
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_filter_suppressed_without_tree_is_line_based_only(self):
        # the disable covers its own line and the line below, no more
        source = "x = 1  # lint: disable=some-rule\ny = 2\nz = 3\n"
        f1 = Finding(path="p", line=1, col=0, rule="some-rule", message="m")
        f2 = Finding(path="p", line=2, col=0, rule="some-rule", message="m")
        f3 = Finding(path="p", line=3, col=0, rule="some-rule", message="m")
        kept = filter_suppressed([f1, f2, f3], source)
        assert kept == [f3]


# ----------------------------------------------------------------------
# scope inheritance
# ----------------------------------------------------------------------
class TestScopeInheritance:
    def test_scoped_rule_applies_to_nested_packages(self):
        # a scope fragment matches anywhere in the posix path, so new
        # sub-packages inherit their ancestors' rules automatically
        assert MmapEscapeRule.applies_to("src/repro/service/store.py")
        assert MmapEscapeRule.applies_to(
            "src/repro/service/cluster/deep/nested/shard.py"
        )
        assert not MmapEscapeRule.applies_to("src/repro/graphs/io.py")

    def test_scoped_rule_fires_in_nested_package_path(self):
        source = textwrap.dedent("""\
            import numpy as np


            def draw():
                return np.random.rand(4)
            """)
        nested = "src/repro/kernels/experimental/sub/fx.py"
        outside = "src/repro/graphs/fx.py"
        assert [f.rule for f in lint_source(source, path=nested)] == [
            "unseeded-rng"
        ]
        assert lint_source(source, path=outside) == []
        assert UnseededRngRule.applies_to(nested)
        assert not UnseededRngRule.applies_to(outside)

    def test_unscoped_rules_apply_everywhere(self):
        unscoped = [r for r in ALL_RULES if not r.scopes]
        assert unscoped, "expected at least one unscoped rule"
        for rule in unscoped:
            assert rule.applies_to("anything/at/all.py")


# ----------------------------------------------------------------------
# --explain and the docs (anti-drift)
# ----------------------------------------------------------------------
def normalize(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


class TestExplain:
    def test_every_rule_and_analysis_has_motivation(self):
        for cls in list(ALL_RULES) + list(ALL_ANALYSES):
            assert cls.name, cls
            assert cls.description, cls.name
            assert cls.motivation, cls.name

    def test_explain_per_file_rule(self):
        out = io.StringIO()
        assert main(["lint", "--explain", "mutable-default"], out=out) == 0
        text = out.getvalue()
        assert text.startswith("mutable-default:")
        assert "Motivating bug:" in text
        assert "(whole-program" not in text

    def test_explain_analysis_mentions_deep(self):
        out = io.StringIO()
        assert main(["lint", "--explain", "lock-order"], out=out) == 0
        text = out.getvalue()
        assert "(whole-program, needs --deep)" in text
        assert "Motivating bug:" in text

    def test_explain_unknown_rule_fails(self, capsys):
        assert main(
            ["lint", "--explain", "no-such-rule"], out=io.StringIO()
        ) == 1
        assert "no-such-rule" in capsys.readouterr().err

    def test_explain_text_matches_docs_table(self):
        # the --explain text and the docs table render the same
        # motivation attribute, so neither can drift from the other
        docs = normalize(
            (REPO_ROOT / "docs" / "linting.md").read_text(encoding="utf-8")
        )
        for cls in list(ALL_RULES) + list(ALL_ANALYSES):
            assert normalize(cls.motivation) in docs, (
                f"motivation of {cls.name!r} not found in docs/linting.md"
            )

    def test_docs_name_every_rule_and_analysis(self):
        docs = (REPO_ROOT / "docs" / "linting.md").read_text(
            encoding="utf-8"
        )
        for cls in list(ALL_RULES) + list(ALL_ANALYSES):
            assert f"`{cls.name}`" in docs, cls.name


# ----------------------------------------------------------------------
# the CI typecheck gate, when mypy is available
# ----------------------------------------------------------------------
class TestTypecheck:
    def test_analysis_and_cluster_layers_are_mypy_clean(self):
        pytest.importorskip("mypy")
        from mypy import api as mypy_api

        stdout, stderr, status = mypy_api.run([
            str(REPO_ROOT / "src" / "repro" / "lint"),
            str(REPO_ROOT / "src" / "repro" / "service" / "cluster"),
        ])
        assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
