"""Fault-injection tests: corrupted structures and hostile inputs must be
*detected*, not silently produce wrong analysis results."""

import numpy as np
import pytest

from repro.errors import (
    GraphBuildError,
    SchedulerError,
    ValidationError,
)
from repro.events import TemporalEventSet, Window, WindowSpec
from repro.graph import TemporalAdjacency
from repro.graph.temporal_csr import TemporalCSR
from repro.pagerank import PagerankConfig, pagerank_window
from repro.streaming.edge_blocks import EdgeBlockAdjacency
from tests.conftest import random_events


class TestCorruptedEdgeBlocks:
    def test_stale_min_time_detected(self):
        adj = EdgeBlockAdjacency(3)
        adj.insert_batch(np.array([0]), np.array([1]), np.array([50]))
        adj._min_time[0] = 100  # corrupt the ageing cache
        with pytest.raises(ValidationError, match="stale"):
            adj.check_invariants()

    def test_counter_drift_detected(self):
        adj = EdgeBlockAdjacency(3)
        adj.insert_batch(np.array([0, 1]), np.array([1, 2]),
                         np.array([1, 2]))
        adj._n_entries = 5  # corrupt the entry counter
        with pytest.raises(ValidationError, match="counter"):
            adj.check_invariants()

    def test_bad_fill_detected(self):
        adj = EdgeBlockAdjacency(2)
        adj.insert_batch(np.array([0]), np.array([1]), np.array([1]))
        adj._blocks[0][0].fill = 999
        with pytest.raises(ValidationError, match="fill"):
            adj.check_invariants()


class TestMalformedStructures:
    def test_temporal_csr_size_mismatch(self):
        with pytest.raises(GraphBuildError):
            TemporalCSR(
                np.array([0, 2]), np.array([0]), np.array([1, 2]), 1
            )

    def test_adjacency_orientation_mismatch(self):
        from repro.graph.temporal_csr import (
            TemporalAdjacency,
            _build_orientation,
        )

        a = _build_orientation(
            np.array([0]), np.array([1]), np.array([5]), 2
        )
        b = _build_orientation(
            np.array([0, 1]), np.array([1, 0]), np.array([5, 6]), 2
        )
        with pytest.raises(GraphBuildError):
            TemporalAdjacency(a, b)

    def test_nan_in_x0_does_not_go_unnoticed(self, adjacency, spec):
        """A NaN warm start must not silently converge: the residual is
        NaN, so the solver reports non-convergence."""
        view = adjacency.window_view(spec.window(0))
        x0 = np.zeros(adjacency.n_vertices)
        x0[0] = np.nan
        result = pagerank_window(
            view, PagerankConfig(max_iterations=5), x0=x0
        )
        assert not result.converged


class TestHostileInputs:
    def test_timestamp_overflow_range(self):
        # near-int64-max timestamps must not wrap in window arithmetic
        big = np.iinfo(np.int64).max // 4
        events = TemporalEventSet([0, 1], [1, 0], [big, big + 1000])
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, big, big + 1000))
        assert view.n_active_edges == 2

    def test_duplicate_heavy_multigraph(self):
        # 500 copies of one edge: still a single simple edge per window
        events = TemporalEventSet(
            np.zeros(500, dtype=int),
            np.ones(500, dtype=int),
            np.arange(500),
        )
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 499))
        assert view.n_active_edges == 1
        r = pagerank_window(view, PagerankConfig(tolerance=1e-12,
                                                 max_iterations=200))
        assert r.converged

    def test_star_graph_hub(self):
        # extreme degree skew: hub with 200 spokes
        n = 201
        events = TemporalEventSet(
            np.arange(1, n), np.zeros(n - 1, dtype=int),
            np.arange(n - 1),
        )
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, n))
        r = pagerank_window(view, PagerankConfig(tolerance=1e-12,
                                                 max_iterations=200))
        assert r.converged
        # the hub dominates
        assert int(np.argmax(r.values)) == 0

    def test_scheduler_rejects_nan_costs(self):
        from repro.parallel.simulator import simulate_chunk_schedule

        with pytest.raises(SchedulerError):
            simulate_chunk_schedule(np.array([1.0, -5.0]), 2)

    def test_single_event_dataset(self):
        events = TemporalEventSet([3], [7], [42])
        spec = WindowSpec.covering(events, delta=10, sw=5)
        from repro.models import PostmortemDriver

        run = PostmortemDriver(events, spec).run()
        assert run.all_converged
        assert run.windows[0].n_active_edges == 1
