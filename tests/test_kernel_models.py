"""Tests for the generic three-model kernel runners, time-series
analytics, and run persistence."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    detect_change_points,
    rank_stability_series,
    rising_vertices,
    topk_churn_series,
)
from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.kernels import connected_components, max_core
from repro.models import PostmortemDriver
from repro.models.kernel_models import (
    adapt_view_kernel,
    offline_kernel_run,
    postmortem_kernel_run,
    streaming_kernel_run,
)
from repro.models.results_io import load_run, save_run
from repro.pagerank import PagerankConfig
from tests.conftest import random_events


def kcore_graph_kernel(graph, active):
    """Max core number from a (graph, active) pair — a model-agnostic
    kernel used across all three runners."""
    import numpy as np

    deg_out = graph.out_degrees()
    tr = graph.transpose()
    deg = deg_out + tr.out_degrees()
    # quick degeneracy via peeling on the symmetrized graph
    from repro.graph.csr import build_csr_from_edges

    src, dst = graph.edges()
    keep = src != dst
    und = build_csr_from_edges(
        np.concatenate([src[keep], dst[keep]]),
        np.concatenate([dst[keep], src[keep]]),
        graph.n_vertices,
        dedup=True,
    )
    degs = und.out_degrees().astype(int)
    alive = degs > 0
    k = 0
    while alive.any():
        k = max(k, int(degs[alive].min()))
        while True:
            shell = alive & (degs <= k)
            if not shell.any():
                break
            alive[shell] = False
            for v in np.flatnonzero(shell):
                for u in und.neighbors(int(v)):
                    if alive[u]:
                        degs[u] -= 1
    return k


@pytest.fixture(scope="module")
def instance():
    events = random_events(n_vertices=30, n_events=700, seed=101)
    spec = WindowSpec.covering(events, delta=3_000, sw=1_200)
    return events, spec


class TestThreeModelKernels:
    def test_all_models_same_series(self, instance):
        events, spec = instance
        off = offline_kernel_run(events, spec, kcore_graph_kernel)
        stream = streaming_kernel_run(events, spec, kcore_graph_kernel)
        pm = postmortem_kernel_run(events, spec, kcore_graph_kernel, 3)
        assert off.values == stream.values == pm.values
        assert len(off.values) == spec.n_windows

    def test_native_view_kernel_equivalent(self, instance):
        events, spec = instance
        pm_adapted = postmortem_kernel_run(
            events, spec, kcore_graph_kernel, 3
        )
        pm_native = postmortem_kernel_run(
            events, spec, kcore_graph_kernel, 3, view_kernel=max_core
        )
        assert pm_adapted.values == pm_native.values

    def test_adapter_name(self):
        adapted = adapt_view_kernel(kcore_graph_kernel)
        assert adapted.__name__ == "kcore_graph_kernel"

    def test_components_across_models(self, instance):
        events, spec = instance

        def n_comp(graph, active):
            import numpy as np
            # reuse the view-based kernel through a one-off adjacency
            # conversion is overkill; count via scipy for the reference
            from scipy.sparse.csgraph import connected_components as cc

            m = graph.to_scipy()
            n, labels = cc(m + m.T, directed=False)
            return int(len(set(labels[active].tolist())))

        off = offline_kernel_run(events, spec, n_comp)
        pm = postmortem_kernel_run(
            events,
            spec,
            n_comp,
            3,
            view_kernel=lambda v: connected_components(v).n_components,
        )
        assert off.values == pm.values

    def test_timings_present(self, instance):
        events, spec = instance
        off = offline_kernel_run(events, spec, kcore_graph_kernel)
        stream = streaming_kernel_run(events, spec, kcore_graph_kernel)
        assert "build" in off.timings.totals
        assert "snapshot" in stream.timings.totals
        assert off.total_time > 0


class TestTimeseries:
    def test_rank_stability_identical_windows(self):
        v = np.array([0.5, 0.3, 0.2])
        out = rank_stability_series([v, v, v], min_shared=2)
        assert np.allclose(out, 1.0)

    def test_rank_stability_nan_when_disjoint(self):
        a = np.array([1.0, 0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 0.0, 1.0])
        out = rank_stability_series([a, b], min_shared=1)
        assert np.isnan(out[0])

    def test_churn(self):
        a = np.array([0.9, 0.8, 0.1, 0.0])
        b = np.array([0.1, 0.0, 0.9, 0.8])
        assert topk_churn_series([a, b], k=2)[0] == 1.0
        assert topk_churn_series([a, a], k=2)[0] == 0.0

    def test_rising(self):
        a = np.array([0.5, 0.5, 0.0])
        b = np.array([0.2, 0.5, 0.3])
        top = rising_vertices([a, b], 0, 1, top=1)
        assert top[0][0] == 2

    def test_rising_bounds(self):
        a = np.zeros(3)
        with pytest.raises(ValidationError):
            rising_vertices([a, a], 0, 5)

    def test_change_points(self):
        series = np.array([1.0, 1.1, 0.9, 1.0, 1.05, 1.0, 8.0, 1.0])
        flagged = detect_change_points(series, z_threshold=3.0, warmup=4)
        assert 6 in flagged.tolist()

    def test_change_points_validation(self):
        with pytest.raises(ValidationError):
            detect_change_points(np.zeros((2, 2)))
        with pytest.raises(ValidationError):
            detect_change_points(np.zeros(5), z_threshold=0)

    def test_needs_two_windows(self):
        with pytest.raises(ValidationError):
            rank_stability_series([np.zeros(3)])


class TestRunPersistence:
    def test_roundtrip(self, instance, tmp_path):
        events, spec = instance
        run = PostmortemDriver(
            events, spec, PagerankConfig(tolerance=1e-10)
        ).run()
        path = tmp_path / "run.npz"
        save_run(run, path)
        back = load_run(path)
        assert back.model == run.model
        assert back.n_windows == run.n_windows
        assert run.max_difference(back) == 0.0
        assert back.window(0).iterations == run.window(0).iterations

    def test_rejects_valueless_run(self, instance, tmp_path):
        events, spec = instance
        run = PostmortemDriver(
            events, spec, PagerankConfig()
        ).run(store_values=False)
        with pytest.raises(ValidationError):
            save_run(run, tmp_path / "x.npz")

    def test_rejects_bad_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, values=np.zeros((1, 2)))
        with pytest.raises(ValidationError):
            load_run(path)


class TestStatefulStreaming:
    def test_warm_started_katz_through_generic_runner(self, instance):
        import numpy as np

        from repro.models.kernel_models import streaming_kernel_run_stateful

        events, spec = instance

        calls = []

        def counting_kernel(graph, active, prev):
            calls.append(prev is not None)
            return int(graph.n_edges)

        run = streaming_kernel_run_stateful(events, spec, counting_kernel)
        assert len(run.values) == spec.n_windows
        # first call cold, all subsequent calls receive the previous value
        assert calls[0] is False
        assert all(calls[1:])

    def test_stateful_pagerank_matches_driver(self, instance):
        import numpy as np

        from repro.models.kernel_models import streaming_kernel_run_stateful
        from repro.pagerank import PagerankConfig
        from repro.streaming import StreamingDriver
        from repro.streaming.incremental import incremental_pagerank

        events, spec = instance
        cfg = PagerankConfig(tolerance=1e-11, max_iterations=300)

        def pr_kernel(graph, active, prev):
            return incremental_pagerank(
                graph,
                cfg,
                active=active,
                prev_values=None if prev is None else prev.values,
            )

        run = streaming_kernel_run_stateful(events, spec, pr_kernel)
        ref = StreamingDriver(events, spec, cfg).run()
        for i, v in enumerate(run.values):
            assert np.allclose(
                v.values, ref.windows[i].values, atol=1e-7
            ), i
