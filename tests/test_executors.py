"""Unit tests for the real thread executors and work-stealing pool."""

import threading

import pytest

from repro.errors import SchedulerError, ValidationError
from repro.parallel import ChunkedThreadExecutor, WorkStealingPool
from repro.parallel.partitioners import SIMPLE


class TestChunkedThreadExecutor:
    def test_results_in_order(self):
        ex = ChunkedThreadExecutor(n_workers=3, granularity=4)
        out = ex.map_chunks(lambda lo, hi: [i * i for i in range(lo, hi)], 20)
        assert out == [i * i for i in range(20)]

    def test_single_worker_path(self):
        ex = ChunkedThreadExecutor(n_workers=1, granularity=5)
        out = ex.map_chunks(lambda lo, hi: list(range(lo, hi)), 12)
        assert out == list(range(12))

    def test_empty(self):
        ex = ChunkedThreadExecutor()
        assert ex.map_chunks(lambda lo, hi: [], 0) == []

    def test_chunks_are_contiguous(self):
        seen = []
        lock = threading.Lock()

        def fn(lo, hi):
            with lock:
                seen.append((lo, hi))
            return list(range(lo, hi))

        ChunkedThreadExecutor(n_workers=2, granularity=3).map_chunks(fn, 10)
        for lo, hi in seen:
            assert hi - lo <= 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            ChunkedThreadExecutor(n_workers=0)
        with pytest.raises(ValidationError):
            ChunkedThreadExecutor(granularity=0)
        with pytest.raises(ValidationError):
            ChunkedThreadExecutor().map_chunks(lambda lo, hi: [], -1)

    def test_exceptions_propagate(self):
        ex = ChunkedThreadExecutor(n_workers=2, granularity=1)

        def boom(lo, hi):
            raise RuntimeError("kernel failure")

        with pytest.raises(RuntimeError, match="kernel failure"):
            ex.map_chunks(boom, 4)


class TestWorkStealingPool:
    def test_all_items_executed_once(self):
        pool = WorkStealingPool(n_workers=4, granularity=2)
        results, stats = pool.run(lambda lo, hi: list(range(lo, hi)), 37)
        flat = [x for chunk in results for x in chunk]
        assert flat == list(range(37))
        assert stats.tasks_executed >= 1

    def test_granularity_respected(self):
        pool = WorkStealingPool(n_workers=2, granularity=3)
        sizes = []
        lock = threading.Lock()

        def fn(lo, hi):
            with lock:
                sizes.append(hi - lo)
            return None

        pool.run(fn, 20, collect=False)
        assert all(s <= 3 for s in sizes)
        assert sum(sizes) == 20

    def test_stealing_occurs_under_imbalance(self):
        """With one worker given slow items, others must steal."""
        import time

        pool = WorkStealingPool(n_workers=4, granularity=1)

        def fn(lo, hi):
            if lo < 5:
                time.sleep(0.002)
            return lo

        _, stats = pool.run(fn, 40)
        # all items ran; work was spread over more than one worker
        busy_workers = sum(1 for v in stats.per_worker_tasks.values() if v)
        assert busy_workers > 1
        assert stats.tasks_executed == 40

    def test_empty(self):
        pool = WorkStealingPool(2, 1)
        results, stats = pool.run(lambda lo, hi: None, 0)
        assert results == []
        assert stats.tasks_executed == 0

    def test_exception_propagates(self):
        pool = WorkStealingPool(2, 1)

        def boom(lo, hi):
            raise ValueError("bad chunk")

        with pytest.raises(ValueError, match="bad chunk"):
            pool.run(boom, 8)

    def test_validation(self):
        with pytest.raises(ValidationError):
            WorkStealingPool(0, 1)
        with pytest.raises(ValidationError):
            WorkStealingPool(1, 0)
        with pytest.raises(ValidationError):
            WorkStealingPool(1, 1).run(lambda lo, hi: None, -2)

    def test_single_worker(self):
        pool = WorkStealingPool(1, 4)
        results, stats = pool.run(lambda lo, hi: (lo, hi), 10)
        assert stats.steals == 0
        # recursive halving of [0, 10) at grainsize 4 yields 4 leaves
        assert stats.tasks_executed == 4
