"""Unit tests for the segment-reduction primitives."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.segments import (
    indptr_to_row_ids,
    lengths_to_indptr,
    row_lengths,
    segment_count,
    segment_max,
    segment_min,
    segment_sum,
)


class TestSegmentSum:
    def test_basic(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        indptr = np.array([0, 2, 4])
        assert segment_sum(vals, indptr).tolist() == [3.0, 7.0]

    def test_empty_segments_are_zero(self):
        vals = np.array([1.0, 2.0])
        indptr = np.array([0, 0, 2, 2])
        assert segment_sum(vals, indptr).tolist() == [0.0, 3.0, 0.0]

    def test_trailing_empty_does_not_truncate_previous(self):
        # regression: reduceat start-index clamping used to drop the last
        # element of the final non-empty segment
        vals = np.array([1.0, 2.0, 3.0])
        indptr = np.array([0, 1, 3, 3, 3])
        assert segment_sum(vals, indptr).tolist() == [1.0, 5.0, 0.0, 0.0]

    def test_all_empty(self):
        out = segment_sum(np.empty(0), np.array([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]

    def test_single_segment(self):
        vals = np.arange(5.0)
        assert segment_sum(vals, np.array([0, 5])).tolist() == [10.0]

    def test_2d_values(self):
        vals = np.arange(8.0).reshape(4, 2)
        indptr = np.array([0, 1, 1, 4])
        out = segment_sum(vals, indptr)
        assert out.shape == (3, 2)
        assert out[0].tolist() == [0.0, 1.0]
        assert out[1].tolist() == [0.0, 0.0]
        assert out[2].tolist() == [12.0, 15.0]

    def test_matches_bincount(self):
        rng = np.random.default_rng(1)
        n_seg, nnz = 50, 500
        rows = np.sort(rng.integers(0, n_seg, nnz))
        vals = rng.random(nnz)
        counts = np.bincount(rows, minlength=n_seg)
        indptr = lengths_to_indptr(counts)
        expected = np.bincount(rows, weights=vals, minlength=n_seg)
        assert np.allclose(segment_sum(vals, indptr), expected)

    def test_rejects_bad_indptr(self):
        vals = np.ones(3)
        with pytest.raises(ValidationError):
            segment_sum(vals, np.array([1, 3]))  # does not start at 0
        with pytest.raises(ValidationError):
            segment_sum(vals, np.array([0, 2]))  # does not end at nnz
        with pytest.raises(ValidationError):
            segment_sum(vals, np.array([0, 2, 1, 3]))  # decreasing
        with pytest.raises(ValidationError):
            segment_sum(vals, np.array([], dtype=np.int64))


class TestSegmentCount:
    def test_counts_true(self):
        mask = np.array([True, False, True, True])
        indptr = np.array([0, 2, 4])
        assert segment_count(mask, indptr).tolist() == [1, 2]

    def test_rejects_non_bool(self):
        with pytest.raises(ValidationError):
            segment_count(np.array([1, 0]), np.array([0, 2]))


class TestSegmentMaxMin:
    def test_max(self):
        vals = np.array([5, 1, 7, 3])
        indptr = np.array([0, 2, 2, 4])
        assert segment_max(vals, indptr, -1).tolist() == [5, -1, 7]

    def test_min(self):
        vals = np.array([5, 1, 7, 3])
        indptr = np.array([0, 2, 2, 4])
        assert segment_min(vals, indptr, 99).tolist() == [1, 99, 3]

    def test_trailing_empty(self):
        vals = np.array([2, 9])
        indptr = np.array([0, 2, 2])
        assert segment_max(vals, indptr, 0).tolist() == [9, 0]
        assert segment_min(vals, indptr, 0).tolist() == [2, 0]

    def test_empty_values(self):
        out = segment_max(np.empty(0, dtype=np.int64), np.array([0, 0]), 7)
        assert out.tolist() == [7]


class TestIndptrHelpers:
    def test_row_lengths(self):
        assert row_lengths(np.array([0, 3, 3, 7])).tolist() == [3, 0, 4]

    def test_lengths_roundtrip(self):
        lengths = np.array([2, 0, 5, 1])
        indptr = lengths_to_indptr(lengths)
        assert indptr.tolist() == [0, 2, 2, 7, 8]
        assert row_lengths(indptr).tolist() == lengths.tolist()

    def test_lengths_rejects_negative(self):
        with pytest.raises(ValidationError):
            lengths_to_indptr(np.array([1, -1]))

    def test_indptr_to_row_ids(self):
        indptr = np.array([0, 2, 2, 5])
        assert indptr_to_row_ids(indptr).tolist() == [0, 0, 2, 2, 2]

    def test_row_ids_empty(self):
        assert indptr_to_row_ids(np.array([0, 0])).tolist() == []
