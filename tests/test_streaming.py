"""Unit tests for the streaming graph, incremental PageRank and driver."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.graph import build_csr_from_edges
from repro.pagerank import PagerankConfig
from repro.pagerank.reference import pagerank_csr_reference
from repro.streaming import StreamingDriver, StreamingGraph
from repro.streaming.incremental import csr_pull_arrays, incremental_pagerank
from tests.conftest import random_events


class TestStreamingGraph:
    def test_window_state_matches_rebuild(self, events, spec):
        """After each slide the streaming structure must hold exactly the
        window's simple graph."""
        stream = StreamingGraph(events)
        for w in spec:
            stream.advance_to(w)
            graph, active = stream.snapshot()
            lo, hi = events.time_slice_indices(w.t_start, w.t_end)
            expected = build_csr_from_edges(
                events.src[lo:hi], events.dst[lo:hi], events.n_vertices
            )
            assert graph == expected, w.index

    def test_cannot_rewind(self, events, spec):
        stream = StreamingGraph(events)
        stream.advance_to(spec.window(3))
        with pytest.raises(ValidationError):
            stream.advance_to(spec.window(1))

    def test_update_summaries(self, events, spec):
        stream = StreamingGraph(events)
        inserted = 0
        for w in spec:
            s = stream.advance_to(w)
            inserted += s.inserted
            assert s.live_entries == stream.n_live_entries
        # every event whose timestamp <= last window end was streamed in
        last_end = spec.window(spec.n_windows - 1).t_end
        assert inserted == events.count_between(events.t_min, last_end)


class TestIncrementalPagerank:
    def test_pull_arrays_match_transpose(self):
        g = build_csr_from_edges([0, 1, 2], [1, 2, 0], 3)
        indptr, col = csr_pull_arrays(g)
        tr = g.transpose()
        assert np.array_equal(indptr, tr.indptr)
        assert np.array_equal(col, tr.col)

    def test_matches_reference_cold(self, events, spec):
        cfg = PagerankConfig(tolerance=1e-13, max_iterations=500)
        w = spec.window(0)
        src, dst = events.edges_between(w.t_start, w.t_end)
        g = build_csr_from_edges(src, dst, events.n_vertices)
        active = np.zeros(events.n_vertices, dtype=bool)
        active[src] = True
        active[dst] = True
        fast = incremental_pagerank(g, cfg, active=active)
        ref = pagerank_csr_reference(g, cfg, active=active)
        assert np.allclose(fast.values, ref.values, atol=1e-9)

    def test_warm_start_same_fixed_point(self, events, spec):
        cfg = PagerankConfig(tolerance=1e-13, max_iterations=500)
        results = {}
        prev_vals, prev_act = None, None
        for w in list(spec)[:3]:
            src, dst = events.edges_between(w.t_start, w.t_end)
            g = build_csr_from_edges(src, dst, events.n_vertices)
            active = np.zeros(events.n_vertices, dtype=bool)
            active[src] = True
            active[dst] = True
            warm = incremental_pagerank(
                g, cfg, active=active,
                prev_values=prev_vals, prev_active=prev_act,
            )
            cold = incremental_pagerank(g, cfg, active=active)
            assert np.allclose(warm.values, cold.values, atol=1e-9)
            prev_vals, prev_act = warm.values, active

    def test_empty_graph(self):
        g = build_csr_from_edges([], [], 5)
        r = incremental_pagerank(g, active=np.zeros(5, dtype=bool))
        assert r.converged and np.all(r.values == 0)


class TestStreamingDriver:
    def test_runs_all_windows(self, events, spec):
        run = StreamingDriver(events, spec).run()
        assert run.n_windows == spec.n_windows
        assert run.model == "streaming"
        assert [w.window_index for w in run.windows] == list(
            range(spec.n_windows)
        )

    def test_phase_breakdown(self, events, spec):
        run = StreamingDriver(events, spec).run(store_values=False)
        for phase in ("update", "snapshot", "pagerank"):
            assert phase in run.timings.totals
        assert run.metadata["entries_inserted"] > 0

    def test_store_values_flag(self, events, spec):
        run = StreamingDriver(events, spec).run(store_values=False)
        assert all(w.values is None for w in run.windows)
        with pytest.raises(ValidationError):
            run.values_matrix()
