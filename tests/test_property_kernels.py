"""Property-based tests for the temporal analysis kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import TemporalEventSet, Window
from repro.graph import TemporalAdjacency
from repro.kernels import (
    betweenness_centrality,
    closeness_centrality,
    connected_components,
    core_numbers,
    degree_centrality,
    katz_window,
)


@st.composite
def window_views(draw, max_vertices=14, max_events=60):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_events))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    t = draw(st.lists(st.integers(0, 100), min_size=m, max_size=m))
    events = TemporalEventSet(src, dst, t, n_vertices=n)
    adj = TemporalAdjacency.from_events(events)
    return adj.window_view(Window(0, 0, 100))


@given(window_views())
@settings(max_examples=80, deadline=None)
def test_core_number_at_most_degree(view):
    """A vertex's core number never exceeds its undirected degree."""
    cores = core_numbers(view)
    und = degree_centrality(view, "total", normalized=False)
    # total in+out degree over-counts mutual edges, still an upper bound
    assert np.all(cores <= und + 1e-9)
    assert np.all(cores >= 0)


@given(window_views())
@settings(max_examples=80, deadline=None)
def test_kcore_subgraph_property(view):
    """Inside the k-core (vertices with core >= k), every vertex has >= k
    neighbors that are also in the k-core — the defining property."""
    cores = core_numbers(view)
    k = int(cores.max())
    if k == 0:
        return
    from repro.kernels.kcore import _undirected_window_csr

    g = _undirected_window_csr(view)
    members = np.flatnonzero(cores >= k)
    member_set = set(members.tolist())
    for v in members:
        nbrs = g.neighbors(int(v))
        inside = sum(1 for u in nbrs if int(u) in member_set)
        assert inside >= k, (v, k)


@given(window_views())
@settings(max_examples=80, deadline=None)
def test_components_are_equivalence_classes(view):
    got = connected_components(view)
    labels = got.labels
    # every active edge's endpoints share a label
    compact = view.compact_graph()
    src, dst = compact.edges()
    assert np.all(labels[src] == labels[dst])
    # labels are 0..n_components-1 on active vertices, -1 elsewhere
    active = view.active_vertices_mask
    if active.any():
        used = np.unique(labels[active])
        assert used.min() == 0
        assert used.max() == got.n_components - 1
    assert np.all(labels[~active] == -1)


@given(window_views())
@settings(max_examples=50, deadline=None)
def test_closeness_bounds(view):
    c = closeness_centrality(view)
    assert np.all(c >= 0)
    assert np.all(c <= 1.0 + 1e-9)
    assert np.all(c[~view.active_vertices_mask] == 0)


@given(window_views())
@settings(max_examples=40, deadline=None)
def test_betweenness_nonnegative_and_bounded(view):
    b = betweenness_centrality(view, normalized=True)
    assert np.all(b >= -1e-12)
    assert np.all(b <= 1.0 + 1e-9)


@given(window_views())
@settings(max_examples=40, deadline=None)
def test_katz_is_distribution(view):
    r = katz_window(view)
    if view.n_active_vertices:
        assert np.isclose(r.values.sum(), 1.0, atol=1e-8)
        assert np.all(r.values >= 0)


@given(window_views())
@settings(max_examples=50, deadline=None)
def test_degree_centrality_consistent_with_structure(view):
    d_out = degree_centrality(view, "out", normalized=False)
    assert d_out.sum() == view.n_active_edges
    d_in = degree_centrality(view, "in", normalized=False)
    assert d_in.sum() == view.n_active_edges
