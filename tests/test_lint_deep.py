"""The whole-program analyses: seeded faults, baseline, SARIF, CLI.

Each analysis gets a *seeded-fault* fixture — a small multi-module
package with one deliberately planted defect the per-file rules cannot
see — and the test asserts the analysis reports it at the right
file:line.  The negative fixtures plant the fixed variant and assert
silence, which is what keeps the analyses honest about their own false
positives.  The meta-test at the bottom runs ``--deep`` over the real
tree modulo the committed baseline, mirroring the CI ``lint-deep`` job.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import render_sarif
from repro.lint.analyses import (
    ALL_ANALYSES,
    analysis_descriptions,
    run_deep,
)
from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import LintReport, lint_paths
from repro.lint.rules import rule_descriptions

REPO_ROOT = Path(__file__).resolve().parents[1]

ANALYSIS_NAMES = [a.name for a in ALL_ANALYSES]


def write_pkg(tmp_path: Path, files: dict) -> Path:
    """Lay out ``files`` (relative path -> source) as a package tree."""
    root = tmp_path / "proj"
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "__init__.py").write_text("")
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return root


def deep(root: Path, select=None):
    return run_deep(
        [root], select=select, known_rules=list(rule_descriptions())
    )


def only(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# analysis 1: lock-order
# ----------------------------------------------------------------------
class TestLockOrderAnalysis:
    def test_two_module_rank_inversion(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/locks.py": """\
                from repro.sanitize import make_lock

                LOCK_RANK_STORE = 10
                LOCK_RANK_DRIVER = 20


                class Store:
                    def __init__(self):
                        self._lock = make_lock("store-lock", LOCK_RANK_STORE)

                    def write(self):
                        with self._lock:
                            return 1
                """,
            "pkg/driver.py": """\
                from repro.sanitize import make_lock

                from pkg.locks import LOCK_RANK_DRIVER, Store


                class Driver:
                    def __init__(self):
                        self.store = Store()
                        self._lock = make_lock("driver-lock", LOCK_RANK_DRIVER)

                    def flush(self):
                        with self._lock:
                            self.store.write()
                """,
        })
        findings = only(deep(root, ["lock-order"]), "lock-order")
        assert len(findings) == 1
        f = findings[0]
        # the inversion is reported at the acquisition in the *callee*
        # module, with the caller's acquisition in the witness chain
        assert f.path.endswith("pkg/locks.py")
        assert f.line == 12  # `with self._lock:` inside Store.write
        assert "'store-lock' (rank 10)" in f.message
        assert "'driver-lock' (rank 20)" in f.message
        assert "Driver.flush" in f.message

    def test_increasing_ranks_are_clean(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/locks.py": """\
                from repro.sanitize import make_lock

                LOCK_RANK_STORE = 10
                LOCK_RANK_DRIVER = 20


                class Store:
                    def __init__(self):
                        self._lock = make_lock("store-lock", LOCK_RANK_DRIVER)

                    def write(self):
                        with self._lock:
                            return 1


                class Driver:
                    def __init__(self):
                        self.store = Store()
                        self._lock = make_lock("driver-lock", LOCK_RANK_STORE)

                    def flush(self):
                        with self._lock:
                            self.store.write()
                """,
        })
        assert deep(root, ["lock-order"]) == []

    def test_local_inversion_in_one_function(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/one.py": """\
                from repro.sanitize import make_lock

                outer = make_lock("outer", 20)
                inner = make_lock("inner", 10)


                def nest():
                    with outer:
                        with inner:
                            return 1
                """,
        })
        findings = only(deep(root, ["lock-order"]), "lock-order")
        assert len(findings) == 1
        assert findings[0].line == 9
        assert "already holding 'outer' (rank 20)" in findings[0].message

    def test_blocking_call_one_frame_below_lock(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/driver.py": """\
                from repro.sanitize import make_lock


                class Driver:
                    def __init__(self, thread):
                        self._lock = make_lock("driver-lock", 20)
                        self.thread = thread

                    def drain(self):
                        with self._lock:
                            self._stop()

                    def _stop(self):
                        self.thread.join()
                """,
        })
        findings = only(deep(root, ["lock-order"]), "lock-order")
        assert len(findings) == 1
        f = findings[0]
        assert f.line == 14  # the join, one frame below the lock
        assert ".join()" in f.message
        assert "driver-lock" in f.message and "Driver.drain" in f.message


# ----------------------------------------------------------------------
# analysis 2: async-blocking
# ----------------------------------------------------------------------
class TestAsyncBlockingAnalysis:
    def test_future_result_reachable_from_coroutine(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/api.py": """\
                class Gateway:
                    async def handle(self, query):
                        return self._collect(query)

                    def _collect(self, query):
                        fut = self._submit(query)
                        return fut.result()

                    def _submit(self, query):
                        return query
                """,
        })
        findings = only(deep(root, ["async-blocking"]), "async-blocking")
        assert len(findings) == 1
        f = findings[0]
        assert f.path.endswith("pkg/api.py")
        assert f.line == 7  # the fut.result() call
        assert ".result()" in f.message
        assert "Gateway.handle" in f.message  # the witness chain

    def test_awaited_asyncio_sleep_is_clean(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/api.py": """\
                import asyncio


                async def pause():
                    await asyncio.sleep(0.1)
                """,
        })
        assert deep(root, ["async-blocking"]) == []

    def test_run_in_executor_handoff_is_clean(self, tmp_path):
        # the sanctioned fix: handing the blocking callable to the
        # executor must NOT drag its body into the coroutine's tree
        root = write_pkg(tmp_path, {
            "pkg/api.py": """\
                import asyncio


                class Gateway:
                    async def handle(self, query):
                        loop = asyncio.get_running_loop()
                        return await loop.run_in_executor(
                            None, self.blocking, query
                        )

                    def blocking(self, query):
                        fut = self._submit(query)
                        return fut.result()

                    def _submit(self, query):
                        return query
                """,
        })
        assert deep(root, ["async-blocking"]) == []

    def test_frontend_inline_snapshot_regression(self, tmp_path):
        # the exact shape the analysis caught in ClusterFrontend: an
        # async route handler calling straight into a coordinator
        # method that takes a ranked counter lock; fixed in
        # frontend.py by hopping through run_in_executor
        root = write_pkg(tmp_path, {
            "pkg/coordinator.py": """\
                from repro.sanitize import make_lock


                class ShardCluster:
                    def __init__(self):
                        self._counters_lock = make_lock("counters", 8)

                    def stats(self):
                        with self._counters_lock:
                            return {}
                """,
            "pkg/frontend.py": """\
                from pkg.coordinator import ShardCluster


                class Frontend:
                    def __init__(self):
                        self.cluster = ShardCluster()

                    async def route(self, path):
                        if path == "/stats":
                            return 200, self.stats()
                        return 404, {}

                    def stats(self):
                        return self.cluster.stats()
                """,
        })
        findings = only(deep(root, ["async-blocking"]), "async-blocking")
        assert len(findings) == 1
        f = findings[0]
        assert f.path.endswith("pkg/coordinator.py")
        assert "'counters' (rank 8)" in f.message
        assert "Frontend.route" in f.message

    def test_ranked_lock_in_coroutine_fires(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/api.py": """\
                from repro.sanitize import make_lock


                class Gateway:
                    def __init__(self):
                        self._lock = make_lock("gateway", 10)

                    async def handle(self):
                        with self._lock:
                            return 1
                """,
        })
        findings = only(deep(root, ["async-blocking"]), "async-blocking")
        assert len(findings) == 1
        assert findings[0].line == 9
        assert "'gateway' (rank 10)" in findings[0].message


# ----------------------------------------------------------------------
# analysis 3: arena-lifecycle
# ----------------------------------------------------------------------
class TestArenaLifecycleAnalysis:
    def test_shared_view_returned_past_close(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/mem.py": """\
                from repro.parallel.shared_arena import attach_arena


                def grab(handle):
                    view = attach_arena(handle)
                    m = view.shared_view("m")
                    view.close()
                    return m
                """,
        })
        findings = only(deep(root, ["arena-lifecycle"]), "arena-lifecycle")
        assert len(findings) == 1
        f = findings[0]
        assert f.path.endswith("pkg/mem.py")
        assert f.line == 8  # the `return m` after view.close()
        assert "'m' used after 'view.close()'" in f.message

    def test_close_after_use_is_clean(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/mem.py": """\
                from repro.parallel.shared_arena import attach_arena
                import numpy as np


                def grab(handle):
                    view = attach_arena(handle)
                    m = np.array(view.shared_view("m"), copy=True)
                    view.close()
                    return m
                """,
        })
        # m is a copy, not a shared_view result, so no view var exists
        assert deep(root, ["arena-lifecycle"]) == []

    def test_close_in_error_branch_is_clean(self, tmp_path):
        # a close inside an early-return branch must not poison the
        # straight-line path below it
        root = write_pkg(tmp_path, {
            "pkg/mem.py": """\
                from repro.parallel.shared_arena import attach_arena


                def grab(handle, bad):
                    view = attach_arena(handle)
                    m = view.shared_view("m")
                    if bad:
                        view.close()
                        return None
                    total = float(m.sum())
                    view.close()
                    return total
                """,
        })
        assert deep(root, ["arena-lifecycle"]) == []

    def test_transitive_view_return_escape(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/mem.py": """\
                def inner(view):
                    return view.shared_view("m")


                def outer(view):
                    return inner(view)
                """,
        })
        findings = only(deep(root, ["arena-lifecycle"]), "arena-lifecycle")
        assert len(findings) == 1
        f = findings[0]
        assert f.line == 6  # outer's return — the frame per-file cannot see
        assert "pkg.mem.inner" in f.message

    def test_copy_wrapper_defuses_transitive_escape(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/mem.py": """\
                import numpy as np


                def inner(view):
                    return view.shared_view("m")


                def outer(view):
                    return np.array(inner(view), copy=True)
                """,
        })
        assert deep(root, ["arena-lifecycle"]) == []

    def test_unclosed_local_segment_fires(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/mem.py": """\
                from repro.parallel.shared_arena import SharedArena


                def leak(arrays):
                    arena = SharedArena("leak", arrays)
                    return len(arrays)
                """,
        })
        findings = only(deep(root, ["arena-lifecycle"]), "arena-lifecycle")
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "'arena'" in findings[0].message
        assert "leaks" in findings[0].message

    def test_handed_off_segment_is_clean(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/mem.py": """\
                from repro.parallel.shared_arena import SharedArena


                def publish(arrays, registry):
                    arena = SharedArena("pub", arrays)
                    registry.add(arena)
                    return len(arrays)


                def owned(arrays):
                    arena = SharedArena("own", arrays)
                    try:
                        return arena.handle()
                    finally:
                        arena.close()
                """,
        })
        assert deep(root, ["arena-lifecycle"]) == []


# ----------------------------------------------------------------------
# analysis 4: deep-determinism
# ----------------------------------------------------------------------
class TestDeepDeterminismAnalysis:
    def test_set_iteration_feeding_run_result(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/calc.py": """\
                def collect(windows):
                    total = 0.0
                    for w in set(windows):
                        total += w
                    return RunResult(total)
                """,
        })
        findings = only(
            deep(root, ["deep-determinism"]), "deep-determinism"
        )
        assert len(findings) == 1
        f = findings[0]
        assert f.path.endswith("pkg/calc.py")
        assert f.line == 3  # the for statement
        assert "unordered set(...)" in f.message

    def test_sorted_defuses(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/calc.py": """\
                def collect(windows):
                    total = 0.0
                    for w in sorted(set(windows)):
                        total += w
                    return RunResult(total)
                """,
        })
        assert deep(root, ["deep-determinism"]) == []

    def test_set_iteration_in_callee_of_sink(self, tmp_path):
        # the set order flows *up* through feed()'s return value into
        # the RunResult constructed by the caller
        root = write_pkg(tmp_path, {
            "pkg/calc.py": """\
                def feed(windows):
                    out = []
                    for w in {1, 2, 3}:
                        out.append(w)
                    return out


                def save(windows):
                    return RunResult(feed(windows))
                """,
        })
        findings = only(
            deep(root, ["deep-determinism"]), "deep-determinism"
        )
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "set literal" in findings[0].message
        assert "pkg.calc.save" in findings[0].message

    def test_set_iteration_away_from_sinks_is_clean(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/calc.py": """\
                def unrelated(items):
                    for x in set(items):
                        print(x)


                def save(values):
                    return RunResult(values)
                """,
        })
        assert deep(root, ["deep-determinism"]) == []

    def test_unseeded_rng_on_feeding_path(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/calc.py": """\
                import numpy as np


                def jitter(values):
                    rng = np.random.default_rng()
                    return values + rng.normal()


                def save(values):
                    return RunResult(jitter(values))
                """,
        })
        findings = only(
            deep(root, ["deep-determinism"]), "deep-determinism"
        )
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "without a seed" in findings[0].message


# ----------------------------------------------------------------------
# suppression parity with the per-file rules
# ----------------------------------------------------------------------
class TestDeepSuppression:
    def test_inline_disable_suppresses_deep_finding(self, tmp_path):
        root = write_pkg(tmp_path, {
            "pkg/calc.py": """\
                def collect(windows):
                    total = 0.0
                    # lint: disable=deep-determinism — order-independent sum
                    for w in set(windows):
                        total += w
                    return RunResult(total)
                """,
        })
        assert deep(root, ["deep-determinism"]) == []


# ----------------------------------------------------------------------
# the baseline
# ----------------------------------------------------------------------
FAULT = {
    "pkg/calc.py": """\
        def collect(windows):
            total = 0.0
            for w in set(windows):
                total += w
            return RunResult(total)
        """,
}


class TestBaseline:
    def test_round_trip_silences_and_reports_stale(self, tmp_path):
        root = write_pkg(tmp_path, FAULT)
        findings = deep(root, ["deep-determinism"])
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)
        assert len(baseline) == 1
        kept, matched, stale = apply_baseline(findings, baseline)
        assert kept == [] and matched == 1 and stale == []
        # a baseline entry that matches nothing anymore is stale
        kept, matched, stale = apply_baseline([], baseline)
        assert kept == [] and matched == 0 and len(stale) == 1

    def test_baseline_matching_is_line_number_free(self, tmp_path):
        root = write_pkg(tmp_path, FAULT)
        findings = deep(root, ["deep-determinism"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        # an unrelated edit moves the finding down two lines
        target = root / "pkg" / "calc.py"
        target.write_text(
            "# a leading comment moves every line\n\n"
            + target.read_text()
        )
        moved = deep(root, ["deep-determinism"])
        assert moved[0].line == findings[0].line + 2
        kept, matched, _ = apply_baseline(
            moved, load_baseline(baseline_path)
        )
        assert kept == [] and matched == 1

    def test_cli_write_baseline_then_clean(self, tmp_path, monkeypatch):
        root = write_pkg(tmp_path, FAULT)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "accepted.json"
        out = io.StringIO()
        assert main(
            ["lint", "--deep", "--no-cache", "--select",
             "deep-determinism", "--baseline", str(baseline),
             "--write-baseline", str(root)],
            out=out,
        ) == 0
        assert baseline.exists()
        out = io.StringIO()
        assert main(
            ["lint", "--deep", "--no-cache", "--select",
             "deep-determinism", "--baseline", str(baseline), str(root)],
            out=out,
        ) == 0
        assert "matched the baseline" in out.getvalue()


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
#: the load-bearing subset of the SARIF 2.1.0 schema (oasis-tcs
#: sarif-spec), inlined because CI has no network access
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0,
                                },
                                "level": {
                                    "enum": ["none", "note", "warning",
                                             "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type":
                                                                "string",
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum":
                                                                1,
                                                            },
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum":
                                                                1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def _report(self, tmp_path) -> LintReport:
        root = write_pkg(tmp_path, FAULT)
        findings = deep(root, ["deep-determinism"])
        return LintReport(
            findings=findings, files_checked=2,
            rules=sorted(rule_descriptions()) + ANALYSIS_NAMES,
        )

    def test_sarif_validates_against_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        report = self._report(tmp_path)
        descriptions = dict(rule_descriptions())
        descriptions.update(analysis_descriptions())
        doc = json.loads(render_sarif(report, descriptions))
        jsonschema.validate(doc, SARIF_SCHEMA)

    def test_sarif_locations_and_rule_index(self, tmp_path):
        report = self._report(tmp_path)
        doc = json.loads(render_sarif(report))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["tool"]["driver"]["name"] == "repro-temporal-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "deep-determinism"
        assert rules[result["ruleIndex"]]["id"] == "deep-determinism"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == report.findings[0].line
        assert region["startColumn"] == report.findings[0].col + 1
        uri = result["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert uri.endswith("pkg/calc.py") and "\\" not in uri

    def test_empty_report_is_valid_sarif(self):
        doc = json.loads(render_sarif(
            LintReport(findings=[], files_checked=0, rules=[])
        ))
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestDeepCli:
    def test_deep_exits_nonzero_on_fault(self, tmp_path, monkeypatch):
        root = write_pkg(tmp_path, FAULT)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert main(
            ["lint", "--deep", "--no-cache", str(root)], out=out
        ) == 1
        assert "deep-determinism" in out.getvalue()

    def test_sarif_output_file(self, tmp_path, monkeypatch):
        root = write_pkg(tmp_path, FAULT)
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "report.sarif"
        out = io.StringIO()
        assert main(
            ["lint", "--deep", "--no-cache", "--format", "sarif",
             "--output", str(target), str(root)],
            out=out,
        ) == 1
        doc = json.loads(target.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_deep_select_only_analysis(self, tmp_path, monkeypatch):
        # selecting only an analysis must not re-enable per-file rules
        root = write_pkg(tmp_path, {
            "pkg/messy.py": """\
                def f(x=[]):
                    return x
                """,
            **FAULT,
        })
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert main(
            ["lint", "--deep", "--no-cache", "--select",
             "deep-determinism", "--format", "json", str(root)],
            out=out,
        ) == 1
        doc = json.loads(out.getvalue())
        assert {f["rule"] for f in doc["findings"]} == {"deep-determinism"}

    def test_unknown_rule_still_rejected_with_deep(self, tmp_path, capsys):
        root = write_pkg(tmp_path, FAULT)
        code = main(["lint", "--deep", "--no-cache", "--select", "nope",
                     str(root)], out=io.StringIO())
        assert code == 1
        assert "unknown lint rule(s): nope" in capsys.readouterr().err

    def test_cache_round_trip_same_findings(self, tmp_path):
        root = write_pkg(tmp_path, FAULT)
        cache = tmp_path / "cache"
        first = run_deep([root], select=["deep-determinism"],
                         known_rules=list(rule_descriptions()),
                         cache_dir=cache)
        assert list(cache.glob("callgraph-*.pkl"))
        second = run_deep([root], select=["deep-determinism"],
                          known_rules=list(rule_descriptions()),
                          cache_dir=cache)
        assert first == second and len(first) == 1

    def test_cache_invalidates_on_source_change(self, tmp_path):
        root = write_pkg(tmp_path, FAULT)
        cache = tmp_path / "cache"
        kw = dict(select=["deep-determinism"],
                  known_rules=list(rule_descriptions()), cache_dir=cache)
        assert len(run_deep([root], **kw)) == 1
        fixed = textwrap.dedent(FAULT["pkg/calc.py"]).replace(
            "set(windows)", "sorted(windows)"
        )
        (root / "pkg" / "calc.py").write_text(fixed)
        assert run_deep([root], **kw) == []
        assert len(list(cache.glob("callgraph-*.pkl"))) == 2

    def test_list_rules_includes_analyses(self):
        out = io.StringIO()
        assert main(["lint", "--list-rules"], out=out) == 0
        text = out.getvalue()
        for name in ANALYSIS_NAMES:
            assert name in text


# ----------------------------------------------------------------------
# the gate: the real tree is deep-clean modulo the committed baseline
# ----------------------------------------------------------------------
class TestRepositoryIsDeepClean:
    def test_analysis_catalog_is_complete(self):
        assert len(ALL_ANALYSES) == 4
        descriptions = analysis_descriptions()
        assert set(descriptions) == set(ANALYSIS_NAMES)
        assert all(descriptions.values())
        # analysis names must not collide with per-file rule names
        assert not set(descriptions) & set(rule_descriptions())

    def test_src_and_benchmarks_deep_clean_modulo_baseline(self):
        findings = run_deep(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
            known_rules=list(rule_descriptions()),
        )
        baseline_file = REPO_ROOT / "lint-baseline.json"
        assert baseline_file.exists()
        kept, _, stale = apply_baseline(
            findings, load_baseline(baseline_file)
        )
        assert kept == [], "\n".join(f.render() for f in kept)
        assert stale == [], f"stale baseline entries: {stale}"

    def test_per_file_rules_unaffected_by_deep_machinery(self):
        report = lint_paths([REPO_ROOT / "src" / "repro" / "lint"])
        assert report.clean
