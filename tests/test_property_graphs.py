"""Property-based tests for CSR building and the temporal CSR window masks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import TemporalEventSet
from repro.graph import MultiWindowPartition, TemporalAdjacency, build_csr_from_edges
from repro.events.windows import WindowSpec


@st.composite
def edge_lists(draw, max_vertices=12, max_edges=60):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@st.composite
def event_sets(draw, max_vertices=10, max_events=50, max_time=200):
    n, src, dst = draw(edge_lists(max_vertices, max_events))
    t = draw(
        st.lists(
            st.integers(0, max_time), min_size=src.size, max_size=src.size
        )
    )
    return TemporalEventSet(src, dst, np.array(t, dtype=np.int64), n_vertices=n)


@given(edge_lists())
@settings(max_examples=150, deadline=None)
def test_csr_dedup_equals_set_semantics(data):
    n, src, dst = data
    g = build_csr_from_edges(src, dst, n)
    expected = set(zip(src.tolist(), dst.tolist()))
    s, d = g.edges()
    assert set(zip(s.tolist(), d.tolist())) == expected
    assert g.n_edges == len(expected)


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_csr_transpose_involution(data):
    n, src, dst = data
    g = build_csr_from_edges(src, dst, n)
    assert g.transpose().transpose() == g


@given(event_sets(), st.integers(0, 200), st.integers(0, 200))
@settings(max_examples=150, deadline=None)
def test_window_masks_match_bruteforce(events, a, b):
    t0, t1 = min(a, b), max(a, b)
    adj = TemporalAdjacency.from_events(events)
    dedup = adj.out_csr.dedup_mask(t0, t1)
    rows = adj.out_csr.row_ids()[dedup]
    cols = adj.out_csr.col[dedup]
    got = set(zip(rows.tolist(), cols.tolist()))
    mask = (events.time >= t0) & (events.time <= t1)
    expected = set(zip(events.src[mask].tolist(), events.dst[mask].tolist()))
    assert got == expected


@given(event_sets())
@settings(max_examples=100, deadline=None)
def test_orientations_consistent(events):
    """In- and out-orientations must describe the same active edge set for
    any window."""
    adj = TemporalAdjacency.from_events(events)
    if len(events) == 0:
        return
    t0 = int(events.t_min)
    t1 = int(events.t_max)
    out_dedup = adj.out_csr.dedup_mask(t0, t1)
    in_dedup = adj.in_csr.dedup_mask(t0, t1)
    out_edges = set(
        zip(
            adj.out_csr.row_ids()[out_dedup].tolist(),
            adj.out_csr.col[out_dedup].tolist(),
        )
    )
    in_edges = set(
        zip(
            adj.in_csr.col[in_dedup].tolist(),
            adj.in_csr.row_ids()[in_dedup].tolist(),
        )
    )
    assert out_edges == in_edges


@given(event_sets(), st.integers(1, 8))
@settings(max_examples=75, deadline=None)
def test_multiwindow_views_equal_full_views(events, n_mw):
    if len(events) == 0:
        return
    span = max(events.span, 10)
    spec = WindowSpec.covering(events, delta=max(span // 3, 1),
                               sw=max(span // 7, 1))
    full = TemporalAdjacency.from_events(events)
    part = MultiWindowPartition(events, spec, n_mw)
    for w in spec:
        local = part.window_view(w.index)
        ref = full.window_view(w)
        assert local.n_active_edges == ref.n_active_edges
        assert local.n_active_vertices == ref.n_active_vertices
