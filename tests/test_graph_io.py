"""Tests for the out-of-core ``.tcsr`` artifact (``repro.graph.io``).

Covers the acceptance properties of the memory-mapped input path:

* **round-trip parity** — ``from_events → write → open`` equals the
  in-RAM adjacency array-for-array, both orientations, including empty
  windows, dangling-heavy graphs, and duplicate-heavy (weighted) logs;
* **chunked construction** — the builder's bounded-memory merge of
  unsorted chunks is bitwise-identical to a single in-RAM sort;
* **rejection** — truncated, corrupted, and unfinalized artifacts raise
  ``ValidationError`` instead of returning garbage;
* **memory honesty** — mapped arrays report as mapped, not heap;
* **lazy materialization** — postmortem runs from a mapped event set are
  bitwise-identical to the eager in-RAM path under every executor, and
  the shared arena publishes mapped partitions without copying;
* **CLI** — ``generate --out x.tcsr``, ``run --graph``, ``inspect``.
"""

import io
import os
import pickle

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.events import TemporalEventSet, WindowSpec
from repro.graph.io import (
    MAGIC,
    PREAMBLE_SIZE,
    MappedEventSet,
    TcsrFile,
    TemporalCSRBuilder,
    build_tcsr,
    is_tcsr,
    open_adjacency,
    open_events,
    write_tcsr,
)
from repro.graph.multiwindow import (
    LazyMultiWindowPartition,
    MultiWindowPartition,
)
from repro.graph.temporal_csr import TemporalAdjacency
from repro.models import PostmortemDriver, PostmortemOptions
from repro.pagerank import PagerankConfig, window_edge_weights
from repro.utils.arrays import is_mmap_backed
from tests.conftest import random_events


CSR_ARRAYS = ("indptr", "col", "time", "group_start")


def assert_adjacency_equal(mapped: TemporalAdjacency, ram: TemporalAdjacency):
    assert mapped.n_vertices == ram.n_vertices
    for orient in ("in_csr", "out_csr"):
        a, b = getattr(mapped, orient), getattr(ram, orient)
        for name in CSR_ARRAYS:
            np.testing.assert_array_equal(
                getattr(a, name), getattr(b, name),
                err_msg=f"{orient}.{name}",
            )


def roundtrip(tmp_path, events, **kw):
    path = str(tmp_path / "events.tcsr")
    write_tcsr(events, path, **kw)
    return path


# ----------------------------------------------------------------------
# round-trip parity
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_matches_in_ram_adjacency(self, tmp_path):
        events = random_events(n_vertices=50, n_events=2_000, seed=3)
        path = roundtrip(tmp_path, events)
        adj = open_adjacency(path)
        assert_adjacency_equal(adj, TemporalAdjacency.from_events(events))

    def test_event_log_matches_stable_sort(self, tmp_path):
        events = random_events(n_vertices=30, n_events=800, seed=5)
        path = roundtrip(tmp_path, events)
        mapped = open_events(path)
        np.testing.assert_array_equal(mapped.src, events.src)
        np.testing.assert_array_equal(mapped.dst, events.dst)
        np.testing.assert_array_equal(mapped.time, events.time)
        mapped.close()

    def test_empty_event_set(self, tmp_path):
        events = TemporalEventSet(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64), n_vertices=7,
        )
        path = roundtrip(tmp_path, events)
        adj = open_adjacency(path)
        assert_adjacency_equal(adj, TemporalAdjacency.from_events(events))
        assert adj.n_vertices == 7

    def test_dangling_heavy(self, tmp_path):
        # 990 of 1000 vertices have no edges at all (isolated), sources
        # concentrated on a handful — the indptr runs of equal offsets
        # that the scatter pass must reproduce exactly
        rng = np.random.default_rng(11)
        src = rng.integers(0, 5, 600)
        dst = rng.integers(5, 10, 600)
        time = rng.integers(0, 10_000, 600)
        events = TemporalEventSet(src, dst, time, n_vertices=1_000)
        path = roundtrip(tmp_path, events)
        adj = open_adjacency(path)
        assert_adjacency_equal(adj, TemporalAdjacency.from_events(events))

    def test_weighted_duplicate_heavy(self, tmp_path):
        # many repeated (u, v) pairs with tied timestamps: the weighted
        # kernel's per-group multiplicities must come out identical from
        # the mapped structure
        rng = np.random.default_rng(13)
        src = rng.integers(0, 8, 2_000)
        dst = rng.integers(0, 8, 2_000)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        time = rng.integers(0, 50, src.size)  # heavy ties
        events = TemporalEventSet(src, dst, time, n_vertices=8)
        path = roundtrip(tmp_path, events)
        ram = TemporalAdjacency.from_events(events)
        adj = open_adjacency(path)
        assert_adjacency_equal(adj, ram)
        d0, w0 = window_edge_weights(ram.in_csr, 10, 30)
        d1, w1 = window_edge_weights(adj.in_csr, 10, 30)
        np.testing.assert_array_equal(d0, d1)
        np.testing.assert_array_equal(w0, w1)

    def test_empty_windows(self, tmp_path):
        # a long quiet gap in the middle of the span: window views over
        # the gap must be empty from both representations
        src = np.array([0, 1, 2, 3] * 50, dtype=np.int64)
        dst = np.array([1, 2, 3, 0] * 50, dtype=np.int64)
        time = np.concatenate(
            [np.arange(100, dtype=np.int64),
             np.arange(100, dtype=np.int64) + 100_000]
        )
        events = TemporalEventSet(src, dst, time, n_vertices=4)
        path = roundtrip(tmp_path, events)
        ram = TemporalAdjacency.from_events(events)
        adj = open_adjacency(path)
        assert_adjacency_equal(adj, ram)
        for lo, hi in ((200, 300), (50_000, 60_000), (0, 50)):
            np.testing.assert_array_equal(
                adj.in_csr.active_mask(lo, hi),
                ram.in_csr.active_mask(lo, hi),
            )

    def test_temporal_adjacency_open_classmethod(self, tmp_path):
        events = random_events(n_vertices=20, n_events=300, seed=7)
        path = roundtrip(tmp_path, events)
        adj = TemporalAdjacency.open(path)
        assert_adjacency_equal(adj, TemporalAdjacency.from_events(events))
        assert is_mmap_backed(adj.in_csr.col)


# ----------------------------------------------------------------------
# chunked construction
# ----------------------------------------------------------------------
class TestChunkedBuilder:
    def test_unsorted_chunks_match_global_sort(self, tmp_path):
        rng = np.random.default_rng(17)
        chunks = []
        for _ in range(7):
            n = int(rng.integers(50, 200))
            chunks.append(
                (rng.integers(0, 40, n), rng.integers(0, 40, n),
                 rng.integers(0, 500, n))  # heavy ties across chunks
            )
        src = np.concatenate([c[0] for c in chunks])
        dst = np.concatenate([c[1] for c in chunks])
        time = np.concatenate([c[2] for c in chunks])
        events = TemporalEventSet(src, dst, time, n_vertices=40)

        path = str(tmp_path / "chunked.tcsr")
        build_tcsr(iter(chunks), path, 40, chunk_events=128, n_workers=2)
        adj = open_adjacency(path)
        assert_adjacency_equal(adj, TemporalAdjacency.from_events(events))

    def test_add_events_validates(self, tmp_path):
        path = str(tmp_path / "bad.tcsr")
        with pytest.raises(ValidationError):
            with TemporalCSRBuilder(path, n_vertices=4) as b:
                b.add_events(
                    np.array([0, 9], dtype=np.int64),  # 9 out of range
                    np.array([1, 2], dtype=np.int64),
                    np.array([0, 1], dtype=np.int64),
                )
        assert not os.path.exists(path)  # aborted build leaves nothing

    def test_abort_cleans_up(self, tmp_path):
        path = str(tmp_path / "aborted.tcsr")
        b = TemporalCSRBuilder(path, n_vertices=4)
        b.add_events(
            np.array([0], dtype=np.int64), np.array([1], dtype=np.int64),
            np.array([5], dtype=np.int64),
        )
        b.abort()
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".spill")

    def test_spill_file_removed_after_finalize(self, tmp_path):
        events = random_events(n_vertices=10, n_events=100, seed=23)
        path = roundtrip(tmp_path, events)
        assert not os.path.exists(path + ".spill")


# ----------------------------------------------------------------------
# mapped event set
# ----------------------------------------------------------------------
class TestMappedEventSet:
    def test_time_slice_parity(self, tmp_path):
        events = random_events(n_vertices=30, n_events=3_000, seed=29)
        path = roundtrip(tmp_path, events, time_index_stride=64)
        mapped = open_events(path)
        probes = [(-1, 0), (0, 0), (100, 5_000), (9_999, 10_001),
                  (4_000, 4_000), (20_000, 30_000)]
        for lo, hi in probes:
            assert mapped.time_slice_indices(lo, hi) == \
                events.time_slice_indices(lo, hi), (lo, hi)
        mapped.close()

    def test_pickle_reopens_by_path(self, tmp_path):
        events = random_events(n_vertices=15, n_events=200, seed=31)
        path = roundtrip(tmp_path, events)
        mapped = open_events(path)
        clone = pickle.loads(pickle.dumps(mapped))
        assert isinstance(clone, MappedEventSet)
        np.testing.assert_array_equal(clone.time, mapped.time)
        assert len(pickle.dumps(mapped)) < 1_000  # path, not arrays

    def test_is_mmap_backed(self, tmp_path):
        events = random_events(n_vertices=15, n_events=200, seed=37)
        mapped = open_events(roundtrip(tmp_path, events))
        assert is_mmap_backed(mapped.time)
        assert not is_mmap_backed(events.time)


# ----------------------------------------------------------------------
# rejection of damaged artifacts
# ----------------------------------------------------------------------
class TestRejection:
    def _valid(self, tmp_path):
        events = random_events(n_vertices=10, n_events=150, seed=41)
        return roundtrip(tmp_path, events)

    def test_too_short(self, tmp_path):
        path = str(tmp_path / "short.tcsr")
        with open(path, "wb") as f:
            f.write(MAGIC[:4])
        with pytest.raises(ValidationError, match="too short"):
            TcsrFile(path)
        assert not is_tcsr(path)

    def test_bad_magic(self, tmp_path):
        path = self._valid(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[:8] = b"NOTATCSR"
        open(path, "wb").write(bytes(data))
        with pytest.raises(ValidationError, match="magic"):
            TcsrFile(path)
        assert not is_tcsr(path)

    def test_truncated_body(self, tmp_path):
        path = self._valid(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(ValidationError):
            TcsrFile(path)

    def test_unfinalized(self, tmp_path):
        path = self._valid(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[12] = 0  # clear the flags word (little-endian bit 0)
        open(path, "wb").write(bytes(data))
        with pytest.raises(ValidationError, match="finalized"):
            TcsrFile(path)

    def test_bad_version(self, tmp_path):
        path = self._valid(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[8] = 99
        open(path, "wb").write(bytes(data))
        with pytest.raises(ValidationError, match="version"):
            TcsrFile(path)

    def test_not_a_file(self, tmp_path):
        assert not is_tcsr(str(tmp_path / "missing.tcsr"))


# ----------------------------------------------------------------------
# memory honesty
# ----------------------------------------------------------------------
class TestMemoryHonesty:
    def test_mapped_adjacency_reports_zero_heap(self, tmp_path):
        events = random_events(n_vertices=25, n_events=500, seed=43)
        path = roundtrip(tmp_path, events)
        ram = TemporalAdjacency.from_events(events)
        adj = open_adjacency(path)
        assert adj.memory_bytes() == 0
        assert adj.mapped_bytes() == ram.memory_bytes()
        assert ram.mapped_bytes() == 0

    def test_memory_report_splits_residency(self, tmp_path):
        events = random_events(n_vertices=25, n_events=2_000, seed=47)
        path = roundtrip(tmp_path, events)
        spec = WindowSpec.covering(events, delta=2_000, sw=500)
        from repro.analysis import memory_report

        eager = memory_report(MultiWindowPartition(events, spec, 3))
        assert not eager.lazy
        assert eager.total_heap_bytes > 0
        assert eager.raw_event_mapped_bytes == 0

        mapped = open_events(path)
        lazy = memory_report(LazyMultiWindowPartition(mapped, spec, 3))
        assert lazy.lazy
        assert lazy.total_heap_bytes == 0
        assert lazy.peak_transient_bytes > 0
        assert lazy.raw_event_mapped_bytes == 3 * 8 * len(events)
        mapped.close()


# ----------------------------------------------------------------------
# lazy materialization parity
# ----------------------------------------------------------------------
class TestLazyPostmortemParity:
    @pytest.fixture
    def setting(self, tmp_path):
        events = random_events(n_vertices=40, n_events=1_500, seed=53)
        path = roundtrip(tmp_path, events)
        spec = WindowSpec.covering(events, delta=2_500, sw=700)
        cfg = PagerankConfig(tolerance=1e-10, max_iterations=200)
        return events, path, spec, cfg

    def _run(self, events, spec, cfg, executor="serial", **opt_kw):
        opts = PostmortemOptions(
            n_multiwindows=3, executor=executor, n_threads=2, **opt_kw
        )
        return PostmortemDriver(events, spec, cfg, opts).run()

    @pytest.mark.parametrize("executor", ["serial", "thread", "shared"])
    def test_bitwise_parity_vs_eager(self, setting, executor):
        events, path, spec, cfg = setting
        baseline = self._run(events, spec, cfg)
        assert baseline.metadata["materialize"] == "eager"
        mapped = open_events(path)
        run = self._run(mapped, spec, cfg, executor=executor)
        assert run.metadata["materialize"] == "lazy"
        for w0, w1 in zip(baseline.windows, run.windows):
            np.testing.assert_array_equal(w0.values, w1.values)
            assert w0.iterations == w1.iterations
        mapped.close()

    def test_forced_modes(self, setting):
        events, path, spec, cfg = setting
        eager_on_mapped = None
        mapped = open_events(path)
        eager_on_mapped = self._run(
            mapped, spec, cfg, materialize="eager"
        )
        assert eager_on_mapped.metadata["materialize"] == "eager"
        lazy_on_heap = self._run(events, spec, cfg, materialize="lazy")
        assert lazy_on_heap.metadata["materialize"] == "lazy"
        for w0, w1 in zip(eager_on_mapped.windows, lazy_on_heap.windows):
            np.testing.assert_array_equal(w0.values, w1.values)
        mapped.close()

    def test_lazy_rejects_nonuniform(self):
        with pytest.raises(ValidationError, match="uniform"):
            PostmortemOptions(materialize="lazy", partition_method="greedy")
        with pytest.raises(ValidationError, match="materialize"):
            PostmortemOptions(materialize="sometimes")


# ----------------------------------------------------------------------
# zero-copy shared publication
# ----------------------------------------------------------------------
class TestSharedZeroCopy:
    def test_mapped_arrays_publish_as_handles(self, tmp_path):
        from repro.parallel.shared_arena import (
            MappedArenaHandle,
            SharedArenaRegistry,
            attach_arena,
        )

        events = random_events(n_vertices=20, n_events=400, seed=59)
        mapped = open_events(roundtrip(tmp_path, events))
        registry = SharedArenaRegistry()
        try:
            handle = registry.publish(
                {"src": mapped.src, "dst": mapped.dst, "time": mapped.time}
            )
            assert isinstance(handle, MappedArenaHandle)
            assert registry.total_bytes == 0  # no shm copied
            assert registry.mapped_bytes == 3 * mapped.time.nbytes
            view = attach_arena(handle)
            np.testing.assert_array_equal(
                view.shared_view("time"), mapped.time
            )
            assert len(pickle.dumps(handle)) < 2_000
        finally:
            registry.close()
            mapped.close()

    def test_sliced_memmap_publishes_with_correct_offset(self, tmp_path):
        """Slicing a memmap yields another memmap whose inherited
        ``offset`` attribute is stale — the descriptor must locate the
        slice by data pointer against the root mapping (the shard
        coordinator publishes exactly such row slices)."""
        from repro.parallel.shared_arena import (
            MappedArenaHandle,
            SharedArenaRegistry,
            attach_arena,
        )

        events = random_events(n_vertices=20, n_events=400, seed=61)
        mapped = open_events(roundtrip(tmp_path, events))
        registry = SharedArenaRegistry()
        try:
            sliced = np.ascontiguousarray(mapped.time[100:300])
            handle = registry.publish({"t": sliced})
            assert isinstance(handle, MappedArenaHandle)
            view = attach_arena(handle)
            np.testing.assert_array_equal(
                view.shared_view("t"), np.asarray(mapped.time[100:300])
            )
        finally:
            registry.close()
            mapped.close()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_generate_run_inspect_tcsr(self, tmp_path):
        art = str(tmp_path / "ab.tcsr")
        out = io.StringIO()
        assert main(
            ["generate", "askubuntu", "--scale", "0.05", "--out", art],
            out=out,
        ) == 0
        assert "wrote" in out.getvalue() and is_tcsr(art)

        out = io.StringIO()
        assert main(["inspect", art], out=out) == 0
        dump = out.getvalue()
        assert "tcsr v1" in dump and "TCSRART1" in dump
        assert "in_indptr" in dump and "time-index" in dump

        out = io.StringIO()
        assert main(
            ["run", "--graph", art, "--delta-days", "90", "--sw",
             "172800", "--max-windows", "6"],
            out=out,
        ) == 0
        assert "postmortem" in out.getvalue()

    def test_run_requires_exactly_one_input(self, tmp_path, capsys):
        art = str(tmp_path / "x.tcsr")
        main(["generate", "askubuntu", "--scale", "0.05", "--out", art])
        assert main(
            ["run", "--delta-days", "90", "--sw", "172800"], out=io.StringIO()
        ) == 1
        assert main(
            ["run", art, "--graph", art, "--delta-days", "90",
             "--sw", "172800"],
            out=io.StringIO(),
        ) == 1

    def test_positional_events_sniffs_tcsr(self, tmp_path):
        art = str(tmp_path / "x.tcsr")
        main(["generate", "askubuntu", "--scale", "0.05", "--out", art])
        out = io.StringIO()
        assert main(["info", art], out=out) == 0
        assert "events" in out.getvalue()

    def test_xl_profile_listed(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        assert "askubuntu-xl" in out.getvalue()
