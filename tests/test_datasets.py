"""Unit tests for dataset generators, profiles and the registry."""

import numpy as np
import pytest

from repro.analysis import distribution_summary
from repro.datasets import (
    DatasetRegistry,
    PROFILES,
    RateCurve,
    bipartite_endpoints,
    burst_decay_rate,
    bursty_steady_rate,
    generate_events,
    get_profile,
    growth_rate,
    irregular_rate,
    list_profiles,
    preferential_attachment_endpoints,
    spike_rate,
)
from repro.errors import DatasetError


class TestRateCurves:
    def test_sampling_follows_curve(self):
        rng = np.random.default_rng(0)
        curve = RateCurve(np.array([1.0, 0.0, 9.0]))
        t = curve.sample_times(3_000, 0, 300, rng)
        assert np.all(np.diff(t) >= 0)  # sorted
        first = int((t < 100).sum())
        mid = int(((t >= 100) & (t < 200)).sum())
        last = int((t >= 200).sum())
        assert mid == 0
        assert last > 5 * first

    def test_bounds_respected(self):
        rng = np.random.default_rng(1)
        t = growth_rate().sample_times(500, 100, 200, rng)
        assert t.min() >= 100 and t.max() <= 200

    def test_rejects_bad_weights(self):
        with pytest.raises(DatasetError):
            RateCurve(np.array([]))
        with pytest.raises(DatasetError):
            RateCurve(np.array([-1.0, 1.0]))
        with pytest.raises(DatasetError):
            RateCurve(np.array([0.0, 0.0]))

    def test_rejects_bad_range(self):
        rng = np.random.default_rng(2)
        with pytest.raises(DatasetError):
            growth_rate().sample_times(10, 50, 50, rng)

    def test_shapes_classify_correctly(self):
        """Each Figure 4 shape generator must produce its intended
        qualitative class."""
        rng_seed = 9

        def make(curve):
            return generate_events(
                20_000, 500, curve, 0, 10**6, seed=rng_seed
            )

        assert distribution_summary(make(spike_rate())).shape_class == "spike"
        assert (
            distribution_summary(make(growth_rate())).shape_class == "growth"
        )
        steady = distribution_summary(make(bursty_steady_rate()))
        assert steady.shape_class in ("steady", "bursty")
        burst = distribution_summary(make(burst_decay_rate()))
        assert burst.peak_to_mean > 2.0
        irr = distribution_summary(make(irregular_rate()))
        assert irr.gini > 0.1


class TestEndpointSamplers:
    def test_preferential_no_self_loops(self):
        rng = np.random.default_rng(3)
        src, dst = preferential_attachment_endpoints(5_000, 100, rng)
        assert not np.any(src == dst)
        assert src.min() >= 0 and dst.max() < 100

    def test_preferential_heavy_tail(self):
        rng = np.random.default_rng(4)
        src, _ = preferential_attachment_endpoints(20_000, 200, rng, skew=1.0)
        counts = np.bincount(src, minlength=200)
        # the most popular vertex dominates the median vertex
        assert counts.max() > 10 * max(np.median(counts), 1)

    def test_bipartite_direction(self):
        rng = np.random.default_rng(5)
        src, dst = bipartite_endpoints(1_000, 40, 60, rng)
        assert src.max() < 40
        assert dst.min() >= 40 and dst.max() < 100

    def test_rejects_tiny(self):
        rng = np.random.default_rng(6)
        with pytest.raises(DatasetError):
            preferential_attachment_endpoints(10, 1, rng)


class TestGenerateEvents:
    def test_deterministic(self):
        a = generate_events(500, 50, growth_rate(), 0, 10_000, seed=7)
        b = generate_events(500, 50, growth_rate(), 0, 10_000, seed=7)
        assert a == b

    def test_seed_changes_output(self):
        a = generate_events(500, 50, growth_rate(), 0, 10_000, seed=7)
        b = generate_events(500, 50, growth_rate(), 0, 10_000, seed=8)
        assert a != b

    def test_symmetric(self):
        es = generate_events(
            100, 20, growth_rate(), 0, 1_000, seed=9, symmetric=True
        )
        assert len(es) == 200
        pairs = set(zip(es.src.tolist(), es.dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)


class TestProfiles:
    def test_all_seven_present(self):
        names = list_profiles()
        # seven paper datasets, each with an out-of-core -xl variant
        assert len(names) == 14
        for expected in (
            "ca-cit-HepTh",
            "stackoverflow",
            "askubuntu",
            "youtube-growth",
            "epinions-user-ratings",
            "ia-enron-email",
            "wiki-talk",
        ):
            assert expected in names
            assert f"{expected}-xl" in names

    def test_lookup_case_insensitive(self):
        assert get_profile("WIKI-TALK").name == "wiki-talk"
        with pytest.raises(DatasetError):
            get_profile("livejournal")

    def test_generation_matches_declared_size(self):
        p = get_profile("askubuntu")
        es = p.generate(scale=0.1)
        assert len(es) == pytest.approx(p.n_events * 0.1, rel=0.01)
        assert es.span <= p.span_seconds

    def test_scale_factor(self):
        p = get_profile("wiki-talk")
        assert p.scale_factor == pytest.approx(p.paper_events / p.n_events)

    def test_parameter_grid(self):
        p = get_profile("wiki-talk")
        grid = p.parameter_grid()
        assert len(grid) == len(p.sliding_offsets) * len(p.window_sizes_days)

    def test_epinions_bipartite(self):
        es = get_profile("epinions-user-ratings").generate(scale=0.05)
        # strictly one-directional: sources and destinations disjoint
        assert len(set(es.src.tolist()) & set(es.dst.tolist())) == 0

    def test_hepth_symmetric(self):
        es = get_profile("ca-cit-HepTh").generate(scale=0.05)
        pairs = set(zip(es.src.tolist(), es.dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_rejects_bad_scale(self):
        with pytest.raises(DatasetError):
            get_profile("wiki-talk").generate(scale=0)


class TestRegistry:
    def test_memoizes(self):
        reg = DatasetRegistry()
        a = reg.get("askubuntu", scale=0.05)
        b = reg.get("askubuntu", scale=0.05)
        assert a is b

    def test_distinct_keys(self):
        reg = DatasetRegistry()
        a = reg.get("askubuntu", scale=0.05)
        b = reg.get("askubuntu", scale=0.1)
        assert a is not b

    def test_disk_cache(self, tmp_path):
        reg1 = DatasetRegistry(cache_dir=tmp_path)
        a = reg1.get("askubuntu", scale=0.05)
        assert any(tmp_path.iterdir())
        reg2 = DatasetRegistry(cache_dir=tmp_path)
        b = reg2.get("askubuntu", scale=0.05)
        assert a == b

    def test_names_and_clear(self):
        reg = DatasetRegistry()
        assert len(reg.names()) == 14
        reg.get("askubuntu", scale=0.05)
        reg.clear()
        assert reg._memory == {}
