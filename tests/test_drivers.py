"""Unit tests for the offline and postmortem drivers and RunResult."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.models import (
    OfflineDriver,
    PostmortemDriver,
    PostmortemOptions,
    RunResult,
    WindowResult,
)
from repro.pagerank import PagerankConfig
from tests.conftest import random_events


@pytest.fixture
def setup():
    events = random_events(n_vertices=30, n_events=500, seed=81)
    spec = WindowSpec.covering(events, delta=2_500, sw=700)
    cfg = PagerankConfig(tolerance=1e-12, max_iterations=300)
    return events, spec, cfg


class TestOfflineDriver:
    def test_runs(self, setup):
        events, spec, cfg = setup
        run = OfflineDriver(events, spec, cfg).run()
        assert run.model == "offline"
        assert run.n_windows == spec.n_windows
        assert run.all_converged
        assert "build" in run.timings.totals
        assert "pagerank" in run.timings.totals

    def test_window_metadata(self, setup):
        events, spec, cfg = setup
        run = OfflineDriver(events, spec, cfg).run()
        for w in run.windows:
            assert w.n_active_edges >= 0
            assert w.values.shape == (events.n_vertices,)
            assert w.values.sum() == pytest.approx(1.0, abs=1e-8)


class TestPostmortemDriver:
    def test_spmv_matches_offline(self, setup):
        events, spec, cfg = setup
        off = OfflineDriver(events, spec, cfg).run()
        pm = PostmortemDriver(events, spec, cfg).run()
        assert pm.max_difference(off) < 1e-9

    @pytest.mark.parametrize("n_mw", [1, 2, 5])
    @pytest.mark.parametrize("kernel", ["spmv", "spmm"])
    def test_options_grid(self, setup, n_mw, kernel):
        events, spec, cfg = setup
        off = OfflineDriver(events, spec, cfg).run()
        opts = PostmortemOptions(
            n_multiwindows=n_mw, kernel=kernel, vector_length=4
        )
        pm = PostmortemDriver(events, spec, cfg, opts).run()
        assert pm.max_difference(off) < 1e-9, (n_mw, kernel)

    def test_no_partial_init_same_result(self, setup):
        events, spec, cfg = setup
        a = PostmortemDriver(
            events, spec, cfg, PostmortemOptions(partial_init=True)
        ).run()
        b = PostmortemDriver(
            events, spec, cfg, PostmortemOptions(partial_init=False)
        ).run()
        assert a.max_difference(b) < 1e-9

    def test_thread_executor_same_result(self, setup):
        events, spec, cfg = setup
        serial = PostmortemDriver(events, spec, cfg).run()
        threaded = PostmortemDriver(
            events,
            spec,
            cfg,
            PostmortemOptions(executor="thread", n_threads=3,
                              n_multiwindows=4),
        ).run()
        assert serial.max_difference(threaded) < 1e-9

    def test_process_executor_same_result(self, setup):
        events, spec, cfg = setup
        serial = PostmortemDriver(events, spec, cfg).run()
        procs = PostmortemDriver(
            events,
            spec,
            cfg,
            PostmortemOptions(executor="process", n_threads=2,
                              n_multiwindows=3),
        ).run()
        assert serial.max_difference(procs) < 1e-9
        assert procs.all_converged

    def test_task_log(self, setup):
        events, spec, cfg = setup
        opts = PostmortemOptions(n_multiwindows=3, kernel="spmm",
                                 vector_length=4)
        run = PostmortemDriver(events, spec, cfg, opts).run()
        log = run.metadata["task_log"]
        covered = sorted(w for t in log for w in t.windows)
        assert covered == list(range(spec.n_windows))
        assert all(t.kernel in ("spmv", "spmm") for t in log)
        assert run.metadata["replication_factor"] > 0

    def test_windows_in_order(self, setup):
        events, spec, cfg = setup
        run = PostmortemDriver(events, spec, cfg).run()
        assert [w.window_index for w in run.windows] == list(
            range(spec.n_windows)
        )

    def test_invalid_options(self):
        with pytest.raises(ValidationError):
            PostmortemOptions(n_multiwindows=0)
        with pytest.raises(ValidationError):
            PostmortemOptions(kernel="gemm")
        with pytest.raises(ValidationError):
            PostmortemOptions(vector_length=0)
        with pytest.raises(ValidationError):
            PostmortemOptions(executor="mpi")
        with pytest.raises(ValidationError):
            PostmortemOptions(n_threads=0)

    def test_partition_cached(self, setup):
        events, spec, cfg = setup
        drv = PostmortemDriver(events, spec, cfg)
        assert drv.partition is drv.partition


class TestRunResult:
    def test_window_lookup(self):
        rr = RunResult(model="x")
        rr.windows.append(
            WindowResult(3, np.zeros(2), 1, True, 0.0, 1, 1)
        )
        assert rr.window(3).window_index == 3
        with pytest.raises(ValidationError):
            rr.window(9)

    def test_top_vertices(self):
        w = WindowResult(
            0, np.array([0.1, 0.5, 0.4]), 1, True, 0.0, 3, 3
        )
        top = w.top_vertices(2)
        assert top[0][0] == 1
        assert top[1][0] == 2

    def test_top_vertices_requires_values(self):
        w = WindowResult(0, None, 1, True, 0.0, 1, 1)
        with pytest.raises(ValidationError):
            w.top_vertices()

    def test_max_difference_requires_same_window_count(self):
        a, b = RunResult(model="a"), RunResult(model="b")
        a.windows.append(WindowResult(0, np.zeros(2), 1, True, 0.0, 1, 1))
        with pytest.raises(ValidationError):
            a.max_difference(b)

    def test_total_iterations(self):
        rr = RunResult(model="x")
        rr.windows.append(WindowResult(0, None, 3, True, 0.0, 1, 1))
        rr.windows.append(WindowResult(1, None, 4, True, 0.0, 1, 1))
        assert rr.total_iterations == 7
