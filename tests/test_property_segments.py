"""Property-based tests for the segment reductions (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.segments import (
    indptr_to_row_ids,
    lengths_to_indptr,
    row_lengths,
    segment_max,
    segment_min,
    segment_sum,
)


@st.composite
def segmented_values(draw):
    """Random (values, indptr) with arbitrary empty segments."""
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                 max_size=25)
    )
    indptr = lengths_to_indptr(np.array(lengths, dtype=np.int64))
    n = int(indptr[-1])
    values = draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.array(values, dtype=np.float64), indptr


@given(segmented_values())
@settings(max_examples=200, deadline=None)
def test_segment_sum_matches_python(data):
    values, indptr = data
    got = segment_sum(values, indptr)
    expected = [
        values[indptr[i]: indptr[i + 1]].sum()
        for i in range(indptr.size - 1)
    ]
    assert np.allclose(got, expected, atol=1e-6)


@given(segmented_values())
@settings(max_examples=100, deadline=None)
def test_segment_max_min_match_python(data):
    values, indptr = data
    gmax = segment_max(values, indptr, empty_value=-1e9)
    gmin = segment_min(values, indptr, empty_value=1e9)
    for i in range(indptr.size - 1):
        seg = values[indptr[i]: indptr[i + 1]]
        if seg.size:
            assert gmax[i] == seg.max()
            assert gmin[i] == seg.min()
        else:
            assert gmax[i] == -1e9
            assert gmin[i] == 1e9


@given(segmented_values())
@settings(max_examples=100, deadline=None)
def test_total_preserved(data):
    values, indptr = data
    assert np.isclose(
        segment_sum(values, indptr).sum(), values.sum(), atol=1e-6
    )


@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=30)
)
@settings(max_examples=100, deadline=None)
def test_indptr_roundtrip(lengths):
    arr = np.array(lengths, dtype=np.int64)
    indptr = lengths_to_indptr(arr)
    assert row_lengths(indptr).tolist() == lengths
    row_ids = indptr_to_row_ids(indptr)
    assert row_ids.size == arr.sum()
    # row ids are non-decreasing and each id i appears lengths[i] times
    assert np.all(np.diff(row_ids) >= 0)
    counts = np.bincount(row_ids, minlength=arr.size)
    assert counts.tolist() == lengths
