"""Shared fixtures: small deterministic event sets and solver configs."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.events import TemporalEventSet, WindowSpec
from repro.graph import TemporalAdjacency
from repro.pagerank import PagerankConfig
from repro.sanitize import enable_sanitizers, sanitizers_enabled


@pytest.fixture(scope="session", autouse=True)
def _sanitizer_mode():
    """Run the whole suite under runtime sanitizers when asked.

    ``REPRO_SANITIZE=1 pytest`` turns on boundary freezing and lock-order
    assertions (see :mod:`repro.sanitize`) for every test; the seed suite
    is required to stay green in that mode.  The env var is also honored
    by ``repro.sanitize`` at import time — this fixture just makes the
    contract explicit and covers reimport orderings.
    """
    if os.environ.get("REPRO_SANITIZE", "").strip().lower() in {
        "1", "true", "yes", "on"
    }:
        enable_sanitizers()
        assert sanitizers_enabled()
    yield


def random_events(
    n_vertices: int = 40,
    n_events: int = 400,
    t_max: int = 10_000,
    seed: int = 0,
    allow_self_loops: bool = False,
) -> TemporalEventSet:
    """A reproducible random event set for unit tests."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, n_events)
    dst = rng.integers(0, n_vertices, n_events)
    if not allow_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    time = np.sort(rng.integers(0, t_max, src.size))
    return TemporalEventSet(src, dst, time, n_vertices=n_vertices)


@pytest.fixture
def events():
    return random_events()


@pytest.fixture
def small_events():
    return random_events(n_vertices=12, n_events=60, t_max=1_000, seed=3)


@pytest.fixture
def spec(events):
    return WindowSpec.covering(events, delta=3_000, sw=1_000)


@pytest.fixture
def adjacency(events):
    return TemporalAdjacency.from_events(events)


@pytest.fixture
def config():
    """Tight-tolerance config so cross-implementation comparisons are
    meaningful."""
    return PagerankConfig(tolerance=1e-12, max_iterations=300)


@pytest.fixture
def paper_example_events():
    """The exact 14-event temporal edge list of the paper's Figure 2a,
    with dates mapped to day numbers (day 0 = 2021-06-01).

    Vertices are 1..7 in the paper; kept as-is (vertex 0 unused).
    """
    rows = [
        (1, 2, 20),   # 06/21/2021
        (3, 5, 24),   # 06/25/2021
        (4, 6, 40),   # 07/11/2021
        (2, 3, 61),   # 08/01/2021
        (2, 4, 71),   # 08/11/2021
        (5, 6, 104),  # 09/13/2021
        (2, 7, 123),  # 10/02/2021
        (4, 7, 126),  # 10/05/2021
        (5, 7, 127),  # 10/06/2021
        (6, 7, 130),  # 10/09/2021
        (1, 2, 157),  # 11/05/2021
        (1, 3, 158),  # 11/06/2021
        (2, 5, 161),  # 11/09/2021
        (3, 5, 164),  # 11/12/2021
    ]
    src = [r[0] for r in rows]
    dst = [r[1] for r in rows]
    t = [r[2] for r in rows]
    return TemporalEventSet(src, dst, t, n_vertices=8)
