"""Runtime sanitizer mode: boundary freezing and lock-order assertion.

The acceptance demonstration lives in ``TestBoundaryFreezing``: with
sanitizers on, an in-place write to a cached ``QueryEngine`` slice —
exactly the bug class behind PR 1's cache-corruption hazards — raises
``ValueError`` at the write site instead of silently poisoning every
later reader of that cache entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitize
from repro.errors import LockOrderError, ReproError
from repro.sanitize import (
    LOCK_RANK_ENGINE_CACHE,
    LOCK_RANK_EXECUTOR_COUNTERS,
    LOCK_RANK_EXECUTOR_STATE,
    LOCK_RANK_STORE_WRITER,
    OrderedLock,
    disable_sanitizers,
    enable_sanitizers,
    freeze_boundary,
    make_lock,
    sanitizers_enabled,
)
from repro.service import QueryEngine, RankStore, RankStoreWriter


@pytest.fixture
def sanitizers_on():
    """Force sanitizer mode on for one test, restoring the prior state."""
    prev = sanitizers_enabled()
    enable_sanitizers()
    yield
    if not prev:
        disable_sanitizers()


@pytest.fixture
def sanitizers_off():
    """Force sanitizer mode off for one test, restoring the prior state."""
    prev = sanitizers_enabled()
    disable_sanitizers()
    yield
    if prev:
        enable_sanitizers()


@pytest.fixture
def store_path(tmp_path):
    """A finalized 3-window x 6-vertex rank store on disk."""
    path = tmp_path / "s.rankstore"
    rows = np.arange(18, dtype=np.float64).reshape(3, 6) / 100.0
    with RankStoreWriter(path, n_windows=3, n_vertices=6) as w:
        for i in range(3):
            w.write_window(i, rows[i])
    return path


class TestToggles:
    def test_enable_disable_roundtrip(self):
        prev = sanitizers_enabled()
        try:
            enable_sanitizers()
            assert sanitizers_enabled()
            disable_sanitizers()
            assert not sanitizers_enabled()
        finally:
            (enable_sanitizers if prev else disable_sanitizers)()

    def test_env_parsing(self, monkeypatch):
        for value in ("1", "true", "Yes", " ON "):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize._env_requested()
        for value in ("0", "false", "", "off"):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert not sanitize._env_requested()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize._env_requested()

    def test_lock_order_error_is_repro_error(self):
        assert issubclass(LockOrderError, ReproError)


class TestFreezeBoundary:
    def test_noop_when_disabled(self, sanitizers_off):
        a = np.zeros(4, dtype=np.float64)
        assert freeze_boundary(a) is a
        a[0] = 1.0  # still writable

    def test_freezes_when_enabled(self, sanitizers_on):
        a = np.zeros(4, dtype=np.float64)
        assert freeze_boundary(a) is a
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 1.0

    def test_non_array_passthrough(self, sanitizers_on):
        assert freeze_boundary("not an array") == "not an array"


class TestBoundaryFreezing:
    """Sanitizers catch in-place writes to shared service-layer arrays."""

    def test_cached_engine_slice_write_raises(self, store_path,
                                              sanitizers_on):
        engine = QueryEngine(str(store_path))
        try:
            cached = engine.window_slice(1)
            with pytest.raises(ValueError):
                cached[0] = 99.0
            # the cache entry is intact and queries keep working
            assert engine.rank(0, 1) == pytest.approx(0.06, abs=1e-6)
            assert engine.top_k(1, k=2)
        finally:
            engine.close()

    def test_store_row_is_read_only(self, store_path, sanitizers_on):
        store = RankStore(str(store_path))
        try:
            row = store.row(2)
            assert not row.flags.writeable
            with pytest.raises(ValueError):
                row[0] = 1.0
        finally:
            store.close()

    def test_trajectory_stays_writable(self, store_path, sanitizers_on):
        # caller-owned copies are NOT frozen; only shared arrays are
        engine = QueryEngine(str(store_path))
        try:
            traj = engine.trajectory(3)
            assert traj.flags.writeable
            traj[0] = 42.0  # legal: the caller owns this copy
        finally:
            engine.close()

    def test_disabled_mode_slice_is_writable(self, store_path,
                                             sanitizers_off):
        engine = QueryEngine(str(store_path))
        try:
            assert engine.window_slice(0).flags.writeable
        finally:
            engine.close()


class TestOrderedLock:
    def test_increasing_rank_order_is_legal(self, sanitizers_on):
        outer = make_lock("state", LOCK_RANK_EXECUTOR_STATE)
        inner = make_lock("cache", LOCK_RANK_ENGINE_CACHE)
        with outer:
            with inner:
                assert outer.locked() and inner.locked()
        assert not outer.locked() and not inner.locked()

    def test_inverted_order_raises_before_blocking(self, sanitizers_on):
        outer = make_lock("writer", LOCK_RANK_STORE_WRITER)
        inner = make_lock("counters", LOCK_RANK_EXECUTOR_COUNTERS)
        with outer:
            with pytest.raises(LockOrderError, match="lock order violation"):
                inner.acquire()
        # the failed acquire must not leave the lock held
        assert not inner.locked()

    def test_same_rank_reacquire_raises(self, sanitizers_on):
        a = make_lock("cache:a", LOCK_RANK_ENGINE_CACHE)
        b = make_lock("cache:b", LOCK_RANK_ENGINE_CACHE)
        with a:
            with pytest.raises(LockOrderError):
                b.acquire()

    def test_disabled_mode_skips_order_check(self, sanitizers_off):
        outer = make_lock("writer", LOCK_RANK_STORE_WRITER)
        inner = make_lock("state", LOCK_RANK_EXECUTOR_STATE)
        with outer:
            with inner:  # inverted, but sanitizers are off
                assert inner.locked()

    def test_release_clears_held_stack(self, sanitizers_on):
        lock = make_lock("state", LOCK_RANK_EXECUTOR_STATE)
        with lock:
            pass
        # stack is clean: the same rank can be taken again
        with lock:
            pass

    def test_make_lock_attributes(self):
        lock = make_lock("engine-cache", LOCK_RANK_ENGINE_CACHE)
        assert isinstance(lock, OrderedLock)
        assert lock.name == "engine-cache"
        assert lock.rank == LOCK_RANK_ENGINE_CACHE
        assert "engine-cache" in repr(lock)


class TestServiceIntegration:
    """The full writer -> store -> engine path runs under sanitizers."""

    def test_roundtrip_under_sanitizers(self, tmp_path, sanitizers_on):
        path = tmp_path / "it.rankstore"
        rows = np.linspace(0.0, 1.0, 8, dtype=np.float64).reshape(2, 4)
        with RankStoreWriter(path, n_windows=2, n_vertices=4) as w:
            w.write_window(0, rows[0])
            w.write_window(1, rows[1])
        engine = QueryEngine(str(path))
        try:
            for window in range(2):
                top = engine.top_k(window, k=2)
                assert len(top) == 2
                assert top[0][1] >= top[1][1]
            assert engine.rank(3, 1) == pytest.approx(rows[1, 3], abs=1e-6)
        finally:
            engine.close()

    def test_lock_ranks_span_the_service_order(self):
        ranks = [
            LOCK_RANK_EXECUTOR_STATE,
            LOCK_RANK_EXECUTOR_COUNTERS,
            LOCK_RANK_ENGINE_CACHE,
            LOCK_RANK_STORE_WRITER,
        ]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)
