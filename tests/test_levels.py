"""Unit tests for the level-of-parallelism makespan estimators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import WindowSpec
from repro.pagerank import PagerankConfig
from repro.parallel import (
    AUTO,
    STATIC,
    CostModel,
    MachineSpec,
    collect_window_stats,
    estimate_makespan,
)
from tests.conftest import random_events


@pytest.fixture(scope="module")
def stats():
    events = random_events(n_vertices=60, n_events=3_000, t_max=60_000, seed=91)
    spec = WindowSpec.covering(events, delta=8_000, sw=1_500)
    return collect_window_stats(
        events, spec, PagerankConfig(max_iterations=200), n_multiwindows=4
    )


@pytest.fixture(scope="module")
def model():
    return CostModel(
        c_edge=1e-7, c_vertex=1e-8, c_active=5e-8, c_task=1e-7, c_region=4e-7
    )


class TestCollect:
    def test_stats_complete(self, stats):
        assert len(stats.windows) == stats.n_windows
        assert len(stats.multiwindows) == 4
        for w in stats.windows:
            assert w.iterations_partial > 0
            assert w.iterations_full > 0
        for m in stats.multiwindows:
            assert m.in_row_lengths.sum() == m.nnz

    def test_partial_never_much_worse(self, stats):
        total_p = sum(w.iterations_partial for w in stats.windows)
        total_f = sum(w.iterations_full for w in stats.windows)
        assert total_p <= total_f * 1.1


class TestEstimates:
    def test_machine_spec_validation(self):
        with pytest.raises(ValidationError):
            MachineSpec(0)

    def test_serial_equals_across_levels(self, stats, model):
        """With 1 worker and huge granularity, all levels are pure serial
        work and must roughly agree."""
        m1 = MachineSpec(1)
        big = 10**9
        w = estimate_makespan(stats, m1, model, "window", AUTO, big)
        a = estimate_makespan(stats, m1, model, "application", AUTO, big)
        n = estimate_makespan(stats, m1, model, "nested", AUTO, big)
        assert a == pytest.approx(w, rel=0.2)
        assert n == pytest.approx(w, rel=0.2)

    def test_more_workers_never_slower(self, stats, model):
        for level in ("window", "application", "nested"):
            t8 = estimate_makespan(
                stats, MachineSpec(8), model, level, AUTO, 1
            )
            t48 = estimate_makespan(
                stats, MachineSpec(48), model, level, AUTO, 1
            )
            assert t48 <= t8 * 1.01, level

    def test_window_level_degrades_with_huge_granularity(self, stats, model):
        mach = MachineSpec(16)
        fine = estimate_makespan(stats, mach, model, "window", AUTO, 1)
        coarse = estimate_makespan(
            stats, mach, model, "window", AUTO, stats.n_windows
        )
        assert coarse > fine  # one chunk = serial

    def test_spmm_beats_spmv(self, stats, model):
        mach = MachineSpec(16)
        for level in ("window", "application", "nested"):
            spmv = estimate_makespan(
                stats, mach, model, level, AUTO, 4, kernel="spmv"
            )
            spmm = estimate_makespan(
                stats, mach, model, level, AUTO, 4, kernel="spmm",
                vector_length=16,
            )
            assert spmm < spmv, level

    def test_makespan_at_least_critical_path(self, stats, model):
        """Nested makespan can never beat total work / P."""
        mach = MachineSpec(16)
        t = estimate_makespan(stats, mach, model, "nested", AUTO, 8)
        mw = {m.index: m for m in stats.multiwindows}
        total = sum(
            model.spmv_window_cost(
                mw[w.mw_index].nnz,
                mw[w.mw_index].n_vertices,
                w.iterations_partial,
            )
            for w in stats.windows
        )
        assert t >= total / 16 * 0.9

    def test_static_nested_no_rebalancing(self, stats, model):
        mach = MachineSpec(16)
        t_static = estimate_makespan(
            stats, mach, model, "nested", STATIC, 4
        )
        assert t_static > 0

    def test_rejects_bad_args(self, stats, model):
        with pytest.raises(ValidationError):
            estimate_makespan(stats, MachineSpec(2), model, level="gpu")
        with pytest.raises(ValidationError):
            estimate_makespan(stats, MachineSpec(2), model, kernel="spgemm")
        with pytest.raises(ValidationError):
            estimate_makespan(stats, MachineSpec(2), model, granularity=0)

    def test_includes_build_time(self, stats, model):
        t = estimate_makespan(stats, MachineSpec(48), model, "nested", AUTO, 8)
        assert t >= stats.build_seconds
