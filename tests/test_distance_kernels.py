"""Tests for BFS, closeness and betweenness, cross-checked vs networkx."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.events import TemporalEventSet, Window
from repro.graph import TemporalAdjacency, build_csr_from_edges
from repro.kernels import (
    betweenness_centrality,
    bfs_distances,
    bfs_levels,
    closeness_centrality,
)
from tests.conftest import random_events

nx = pytest.importorskip("networkx")


def make_view(seed=55, n_vertices=24, n_events=160):
    events = random_events(n_vertices=n_vertices, n_events=n_events,
                           seed=seed)
    adj = TemporalAdjacency.from_events(events)
    return adj.window_view(Window(0, 0, 10_000))


def nx_digraph(view):
    g = nx.DiGraph()
    compact = view.compact_graph()
    src, dst = compact.edges()
    g.add_nodes_from(np.flatnonzero(view.active_vertices_mask).tolist())
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    return g


class TestBfs:
    def test_matches_networkx(self):
        view = make_view()
        g = view.compact_graph()
        ref_g = nx_digraph(view)
        for source in (0, 5, 11):
            dist = bfs_distances(g, source)
            ref = nx.single_source_shortest_path_length(ref_g, source) \
                if source in ref_g else {source: 0}
            for v in range(g.n_vertices):
                if v in ref:
                    assert dist[v] == ref[v], (source, v)
                else:
                    assert dist[v] == -1, (source, v)

    def test_levels_partition_reachable(self):
        view = make_view(seed=56)
        g = view.compact_graph()
        seen = set()
        for level, vertices in bfs_levels(g, 3):
            for v in vertices:
                assert v not in seen
                seen.add(int(v))
        dist = bfs_distances(g, 3)
        assert seen == set(np.flatnonzero(dist >= 0).tolist())

    def test_isolated_source(self):
        g = build_csr_from_edges([0], [1], 5)
        dist = bfs_distances(g, 4)
        assert dist[4] == 0
        assert (dist >= 0).sum() == 1


class TestCloseness:
    def test_matches_networkx(self):
        view = make_view(seed=57)
        got = closeness_centrality(view)
        ref_g = nx_digraph(view)
        # networkx closeness uses in-distances; ours uses out-distances,
        # so compare against closeness on the reverse graph
        ref = nx.closeness_centrality(ref_g.reverse(), wf_improved=True)
        for v, c in ref.items():
            assert got[v] == pytest.approx(c, abs=1e-9), v

    def test_sampled_correlates_with_exact(self):
        view = make_view(seed=58, n_vertices=40, n_events=500)
        exact = closeness_centrality(view)
        sampled = closeness_centrality(view, n_pivots=20, seed=1)
        active = view.active_vertices_mask
        mask = active & (exact > 0) & (sampled > 0)
        if mask.sum() > 5:
            corr = np.corrcoef(exact[mask], sampled[mask])[0, 1]
            assert corr > 0.5

    def test_inactive_zero(self):
        view = make_view(seed=59)
        got = closeness_centrality(view)
        assert np.all(got[~view.active_vertices_mask] == 0)

    def test_rejects_bad_pivots(self):
        view = make_view()
        with pytest.raises(ValidationError):
            closeness_centrality(view, n_pivots=0)

    def test_tiny_window(self):
        events = TemporalEventSet([0], [1], [5])
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10))
        got = closeness_centrality(view)
        assert got[0] > 0  # 0 reaches 1 at distance 1
        assert got[1] == 0  # 1 reaches nobody


class TestBetweenness:
    def test_matches_networkx(self):
        view = make_view(seed=60)
        got = betweenness_centrality(view, normalized=True)
        ref = nx.betweenness_centrality(nx_digraph(view), normalized=True)
        for v, b in ref.items():
            assert got[v] == pytest.approx(b, abs=1e-9), v

    def test_matches_networkx_unnormalized(self):
        view = make_view(seed=61)
        got = betweenness_centrality(view, normalized=False)
        ref = nx.betweenness_centrality(
            nx_digraph(view), normalized=False
        )
        for v, b in ref.items():
            assert got[v] == pytest.approx(b, abs=1e-9), v

    def test_path_graph(self):
        # directed path 0 -> 1 -> 2 -> 3: only 1 and 2 lie between pairs
        events = TemporalEventSet([0, 1, 2], [1, 2, 3], [1, 2, 3])
        adj = TemporalAdjacency.from_events(events)
        view = adj.window_view(Window(0, 0, 10))
        got = betweenness_centrality(view, normalized=False)
        assert got[0] == 0 and got[3] == 0
        assert got[1] == 2.0  # pairs (0,2), (0,3)
        assert got[2] == 2.0  # pairs (0,3), (1,3)

    def test_sampling_unbiased_scale(self):
        view = make_view(seed=62, n_vertices=30, n_events=400)
        exact = betweenness_centrality(view, normalized=False)
        sampled = betweenness_centrality(
            view, n_sources=view.n_active_vertices, normalized=False, seed=2
        )
        # sampling all sources == exact
        assert np.allclose(exact, sampled, atol=1e-9)

    def test_rejects_bad_sources(self):
        view = make_view()
        with pytest.raises(ValidationError):
            betweenness_centrality(view, n_sources=0)
