"""Academic collaboration analysis at two time scales (paper Section 3.1).

The paper motivates the sliding-window parameters with co-authorship
networks: a 10-year window ranks authors within a scientific *era*; a
1-year window tracks *current* collaborator dynamics.  This example builds
a synthetic co-authorship event stream with a generational shift (an "old
guard" dominating early years, a "new wave" taking over later) and shows
how the window size changes who looks important.

Run:  python examples/collaboration_network.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PagerankConfig,
    PostmortemDriver,
    PostmortemOptions,
    TemporalEventSet,
    WindowSpec,
)
from repro.reporting import format_table

YEAR = 365 * 86_400


def build_coauthorship(seed: int = 11) -> TemporalEventSet:
    """20 years of papers; authors 0-49 dominate the first decade,
    authors 50-99 the second, with a connecting middle generation."""
    rng = np.random.default_rng(seed)
    src, dst, t = [], [], []
    n_papers = 6_000
    for _ in range(n_papers):
        when = rng.uniform(0, 20 * YEAR)
        era = when / (20 * YEAR)
        # sample an author cohort that drifts with time
        center = int(era * 80)
        authors = np.unique(
            np.clip(rng.normal(center, 12, rng.integers(2, 5)), 0, 99).astype(
                int
            )
        )
        if authors.size < 2:
            continue
        # a paper contributes a co-authorship clique
        for i in range(authors.size):
            for j in range(i + 1, authors.size):
                src.append(authors[i])
                dst.append(authors[j])
                t.append(int(when))
    events = TemporalEventSet(src, dst, t, n_vertices=100)
    return events.symmetrized()  # collaboration is undirected


def top_authors(run, window_index: int, k: int = 5):
    return [v for v, _ in run.window(window_index).top_vertices(k)]


def main() -> None:
    events = build_coauthorship()
    print(f"co-authorship events: {len(events)} over 20 years\n")
    config = PagerankConfig(tolerance=1e-10)

    # era-scale analysis: 10-year windows sliding by 2 years
    era_spec = WindowSpec.covering(events, delta=10 * YEAR, sw=2 * YEAR)
    era = PostmortemDriver(
        events, era_spec, config, PostmortemOptions(n_multiwindows=2)
    ).run()

    # dynamics-scale analysis: 1-year windows sliding by 1 year
    year_spec = WindowSpec.covering(events, delta=YEAR, sw=YEAR)
    yearly = PostmortemDriver(
        events, year_spec, config, PostmortemOptions(n_multiwindows=4)
    ).run()

    rows = []
    for w in era.windows:
        start_year = (era_spec.window(w.window_index).t_start - events.t_min) / YEAR
        rows.append(
            [
                f"{start_year:.0f}-{start_year + 10:.0f}",
                w.n_active_vertices,
                ", ".join(str(v) for v in top_authors(era, w.window_index)),
            ]
        )
    print(
        format_table(
            ["era (years)", "authors", "top-5 authors"],
            rows,
            title="Era-scale importance (delta = 10 years)",
        )
    )

    rows = []
    for w in yearly.windows[::4]:
        y = (year_spec.window(w.window_index).t_start - events.t_min) / YEAR
        rows.append(
            [
                f"year {y:.0f}",
                w.n_active_vertices,
                ", ".join(str(v) for v in top_authors(yearly, w.window_index)),
            ]
        )
    print(
        "\n"
        + format_table(
            ["window", "authors", "top-5 authors"],
            rows,
            title="Collaborator dynamics (delta = 1 year)",
        )
    )

    early = set(top_authors(era, 0, 10))
    late = set(top_authors(era, era.n_windows - 1, 10))
    print(
        f"\ngenerational shift: top-10 overlap between first and last era = "
        f"{len(early & late)}/10"
    )


if __name__ == "__main__":
    main()
