"""The three execution models head to head (paper Figure 5 methodology).

Runs offline, streaming and postmortem on two dataset profiles, verifies
they produce identical PageRank time series, and prints the measured
wall-clock per model with its phase breakdown — showing *where* each model
spends time (offline: per-window graph builds; streaming: structure
maintenance + snapshots; postmortem: one build, then compute).

Run:  python examples/streaming_vs_postmortem.py
"""

from __future__ import annotations

from repro import PagerankConfig, WindowSpec
from repro.analysis import compare_models
from repro.datasets import get_profile
from repro.models import PostmortemOptions
from repro.reporting import format_bar_chart, format_kv

DAY = 86_400

CONFIGS = [
    ("ia-enron-email", 730, 30 * DAY),
    ("youtube-growth", 60, 4 * DAY),
]


def main() -> None:
    config = PagerankConfig(tolerance=1e-10)
    options = PostmortemOptions(
        n_multiwindows=6, kernel="spmm", vector_length=8
    )
    for name, delta_days, sw in CONFIGS:
        events = get_profile(name).generate(scale=0.3)
        spec = WindowSpec.covering_days(events, delta_days, sw)
        print(
            f"\n=== {name}: {len(events)} events, {spec.n_windows} windows "
            f"of {delta_days} days ==="
        )
        timing = compare_models(
            events, spec, config, options, check_agreement=True
        )
        print("(all three models produce identical PageRank vectors)\n")
        print(
            format_bar_chart(
                {
                    "offline": timing.offline_seconds,
                    "streaming": timing.streaming_seconds,
                    "postmortem": timing.postmortem_seconds,
                },
                title="wall-clock per model",
                unit="s",
            )
        )
        for model, phases in timing.phase_breakdown.items():
            print("\n" + format_kv(phases, title=f"{model} phases (s)"))
        print(
            f"\npostmortem vs streaming: "
            f"{timing.postmortem_vs_streaming:.1f}x on a single core "
            f"(the paper's 50-880x adds 48-core parallelism)"
        )


if __name__ == "__main__":
    main()
