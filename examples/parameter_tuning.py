"""Choosing postmortem execution parameters (paper Section 6.3.6).

The paper closes with simple tuning rules: SpMM is never a bad choice; the
auto partitioner with granularity <= 4 usually works; nested parallelism
fits almost every graph unless a couple of windows dominate the load.

This example uses the calibrated cost model and the simulated 48-core
machine to sweep (level x partitioner x granularity x kernel) for one
dataset, prints the sweep, and checks the suggested configuration lands
near the best — the Figure 12 methodology.

Run:  python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import PagerankConfig, WindowSpec, calibrate_cost_model
from repro.datasets import get_profile
from repro.parallel import (
    AUTO,
    SIMPLE,
    STATIC,
    MachineSpec,
    collect_window_stats,
    estimate_makespan,
)
from repro.reporting import format_series

GRANULARITIES = [1, 2, 4, 8, 16, 32, 64, 128]


def main() -> None:
    events = get_profile("wiki-talk").generate(scale=0.25)
    spec = WindowSpec.covering_days(events, 90, 43_200 * 16)
    print(
        f"instance: {len(events)} events, {spec.n_windows} windows of 90 days"
    )

    print("measuring serial kernels and calibrating the cost model ...")
    stats = collect_window_stats(events, spec, PagerankConfig(), 6)
    model = calibrate_cost_model()
    machine = MachineSpec(n_workers=48)

    best = (float("inf"), None)
    for partitioner in (AUTO, SIMPLE, STATIC):
        series = {}
        for level in ("window", "application", "nested"):
            for kernel in ("spmv", "spmm"):
                key = f"{level[:4]}/{kernel}"
                ys = []
                for g in GRANULARITIES:
                    t = estimate_makespan(
                        stats, machine, model, level, partitioner, g,
                        kernel, vector_length=16,
                    )
                    ys.append(t * 1_000)
                    if t < best[0]:
                        best = (t, (level, partitioner.name, g, kernel))
                series[key] = ys
        print(
            "\n"
            + format_series(
                "granularity",
                GRANULARITIES,
                series,
                title=f"simulated makespan (ms), {partitioner.name}_partitioner",
            )
        )

    suggested = estimate_makespan(
        stats, machine, model, "nested", AUTO, 4, "spmm", 16
    )
    print(
        f"\nbest configuration:      {best[1]}  ->  {best[0] * 1000:.2f} ms"
    )
    print(
        f"suggested (paper 6.3.6): ('nested', 'auto', 4, 'spmm')"
        f"  ->  {suggested * 1000:.2f} ms"
        f"  ({suggested / best[0]:.2f}x of best)"
    )

    # peek inside the scheduler: a Gantt chart of window-level execution
    # on a small simulated machine shows where the load sits
    import numpy as np

    from repro.parallel import format_gantt, simulate_chunk_schedule_traced

    mw = {m.index: m for m in stats.multiwindows}
    window_costs = np.array(
        [
            model.spmv_window_cost(
                mw[w.mw_index].nnz,
                mw[w.mw_index].n_vertices,
                w.iterations_partial,
            )
            for w in stats.windows
        ]
    )
    makespan, traces = simulate_chunk_schedule_traced(window_costs, 8)
    print("\nwindow-level schedule on 8 simulated workers:")
    print(format_gantt(traces, 8, width=64, makespan=makespan))


if __name__ == "__main__":
    main()
