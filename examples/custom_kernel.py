"""Plugging your own analysis kernel into the postmortem machinery.

The execution-model machinery (offline / streaming / postmortem) is not
PageRank-specific: any per-window analysis can ride it.  This example
defines a custom kernel — *reciprocity*, the fraction of window edges
(u, v) whose reverse (v, u) is also active — in both signatures the
runners accept, verifies the three models agree, and shows where each
spends its time.

A window-view kernel gets the masked temporal CSR (cheap, postmortem
only); a graph kernel gets a materialized (CSRGraph, active_mask) pair and
runs under all three models.

Run:  python examples/custom_kernel.py
"""

from __future__ import annotations

import numpy as np

from repro import WindowSpec
from repro.datasets import get_profile
from repro.models.kernel_models import (
    offline_kernel_run,
    postmortem_kernel_run,
    streaming_kernel_run,
)
from repro.reporting import format_kv, format_series


def reciprocity_graph(graph, active) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    src, dst = graph.edges()
    if src.size == 0:
        return 0.0
    forward = set(zip(src.tolist(), dst.tolist()))
    mutual = sum(1 for u, v in forward if (v, u) in forward)
    return mutual / len(forward)


def reciprocity_view(view) -> float:
    """The same kernel, written against the window view (postmortem
    native): reads the dedup mask directly, no graph materialization."""
    out_csr = view.adjacency.out_csr
    dedup = out_csr.dedup_mask(view.window.t_start, view.window.t_end)
    src = out_csr.row_ids()[dedup]
    dst = out_csr.col[dedup]
    if src.size == 0:
        return 0.0
    forward = set(zip(src.tolist(), dst.tolist()))
    mutual = sum(1 for u, v in forward if (v, u) in forward)
    return mutual / len(forward)


def main() -> None:
    events = get_profile("wiki-talk").generate(scale=0.2)
    spec = WindowSpec.covering_days(events, 90, 86_400 * 30)
    print(f"instance: {len(events)} events, {spec.n_windows} windows\n")

    off = offline_kernel_run(events, spec, reciprocity_graph)
    stream = streaming_kernel_run(events, spec, reciprocity_graph)
    pm = postmortem_kernel_run(
        events, spec, reciprocity_graph, 6, view_kernel=reciprocity_view
    )

    assert np.allclose(off.values, stream.values)
    assert np.allclose(off.values, pm.values)
    print("all three models produce identical reciprocity series\n")

    idx = list(range(0, spec.n_windows, max(1, spec.n_windows // 10)))
    print(
        format_series(
            "window",
            idx,
            {"reciprocity": [round(off.values[i], 3) for i in idx]},
            title="Edge reciprocity over time (wiki-talk profile)",
        )
    )

    print()
    for run in (off, stream, pm):
        print(
            format_kv(
                {k: round(v, 3) for k, v in run.timings.as_dict().items()},
                title=f"{run.model} phases (s), total "
                f"{run.total_time:.3f}s",
            )
        )
        print()


if __name__ == "__main__":
    main()
