"""Quickstart: PageRank over time on a temporal graph.

Builds a small synthetic temporal event set, slides a window over it, and
computes the PageRank time series with the postmortem engine — then shows
that the streaming baseline produces the same answer, slower.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PagerankConfig,
    PostmortemDriver,
    PostmortemOptions,
    StreamingDriver,
    TemporalEventSet,
    WindowSpec,
)
from repro.reporting import format_table
from repro.utils.timer import Timer


def main() -> None:
    # 1. A temporal edge set: events (u, v, t), timestamps in seconds.
    rng = np.random.default_rng(7)
    n_vertices, n_events = 500, 20_000
    day = 86_400
    src = rng.integers(0, n_vertices, n_events)
    dst = rng.integers(0, n_vertices, n_events)
    keep = src != dst
    t = np.sort(rng.integers(0, 365 * day, int(keep.sum())))
    events = TemporalEventSet(src[keep], dst[keep], t, n_vertices=n_vertices)
    print(f"events: {events}")

    # 2. The sliding-window model: 30-day windows sliding by 5 days.
    spec = WindowSpec.covering(events, delta=30 * day, sw=5 * day)
    print(f"windows: {spec.n_windows} (overlap {spec.overlap_fraction:.0%})\n")

    # 3. Postmortem analysis: one representation, partial initialization,
    #    SpMM-batched kernel.
    config = PagerankConfig(alpha=0.15, tolerance=1e-10)
    options = PostmortemOptions(
        n_multiwindows=6, kernel="spmm", vector_length=8
    )
    with Timer() as t_pm:
        run = PostmortemDriver(events, spec, config, options).run()

    rows = []
    for w in run.windows[:: max(1, spec.n_windows // 8)]:
        top = w.top_vertices(3)
        rows.append(
            [
                w.window_index,
                w.n_active_vertices,
                w.n_active_edges,
                w.iterations,
                ", ".join(f"v{v}={s:.4f}" for v, s in top),
            ]
        )
    print(
        format_table(
            ["window", "|V|", "|E|", "iters", "top-3 PageRank"],
            rows,
            title="PageRank over time (postmortem)",
        )
    )

    # 4. The streaming baseline computes the same series.
    with Timer() as t_stream:
        stream = StreamingDriver(events, spec, config).run()
    diff = run.max_difference(stream)
    print(f"\nstreaming vs postmortem max |delta|: {diff:.2e}")
    print(
        f"postmortem: {t_pm.elapsed:.3f}s   streaming: {t_stream.elapsed:.3f}s"
        f"   speedup: {t_stream.elapsed / t_pm.elapsed:.1f}x (single core)"
    )


if __name__ == "__main__":
    main()
