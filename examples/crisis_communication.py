"""Organizational-crisis communication analysis (paper Section 3.2).

Hossain, Murshed et al. (cited by the paper) showed that during an
organizational crisis, previously prominent actors become *central* in the
communication graph.  This example replays that analysis on the synthetic
Enron-like profile (Figure 4a's spike shape): it computes PageRank over
sliding windows, detects the crisis period from the edge distribution, and
reports how actor centrality concentrates during the spike.

Run:  python examples/crisis_communication.py
"""

from __future__ import annotations

import numpy as np

from repro import PagerankConfig, PostmortemDriver, PostmortemOptions, WindowSpec
from repro.analysis import edge_distribution
from repro.datasets import get_profile
from repro.reporting import format_series, format_table

DAY = 86_400


def gini(values: np.ndarray) -> float:
    v = np.sort(values[values > 0])
    if v.size == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def main() -> None:
    events = get_profile("ia-enron-email").generate(scale=0.4)
    print(f"synthetic Enron-like corpus: {events}\n")

    # the edge distribution locates the crisis spike
    starts, counts = edge_distribution(events, n_bins=24)
    spike_bin = int(np.argmax(counts))
    print(
        format_series(
            "period",
            [f"{(s - events.t_min) // (30 * DAY)}mo" for s in starts[::3]],
            {"emails": counts[::3].tolist()},
            title="Email volume over time (crisis = peak)",
            precision=0,
        )
    )

    # sliding-window PageRank across the whole history
    spec = WindowSpec.covering(events, delta=365 * DAY, sw=90 * DAY)
    run = PostmortemDriver(
        events,
        spec,
        PagerankConfig(tolerance=1e-10),
        PostmortemOptions(n_multiwindows=4),
    ).run()

    bin_width = (events.t_max - events.t_min) / 24
    crisis_time = events.t_min + (spike_bin + 0.5) * bin_width

    rows = []
    for w in run.windows:
        win = spec.window(w.window_index)
        in_crisis = win.t_start <= crisis_time <= win.t_end
        concentration = gini(w.values)
        top = w.top_vertices(3)
        rows.append(
            [
                w.window_index,
                "CRISIS" if in_crisis else "",
                w.n_active_vertices,
                round(concentration, 3),
                ", ".join(f"a{v}" for v, _ in top),
            ]
        )
    print(
        "\n"
        + format_table(
            ["window", "phase", "actors", "rank gini", "top actors"],
            rows,
            title="Actor centrality per window",
        )
    )

    crisis_rows = [r for r in rows if r[1] == "CRISIS"]
    calm_rows = [r for r in rows if r[1] == ""]
    if crisis_rows and calm_rows:
        crisis_gini = np.mean([r[3] for r in crisis_rows])
        calm_gini = np.mean([r[3] for r in calm_rows])
        print(
            f"\nmean rank concentration: crisis {crisis_gini:.3f} vs "
            f"calm {calm_gini:.3f}"
        )
        print(
            "-> centrality concentrates on few actors during the crisis"
            if crisis_gini > calm_gini
            else "-> no concentration effect in this draw"
        )


if __name__ == "__main__":
    main()
