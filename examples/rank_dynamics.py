"""Studying *change over time* — the point of postmortem analysis.

Computes the PageRank time series over the synthetic Epinions profile
(Figure 4b's review burst), caches it to disk, and runs the time-series
analytics: rank stability between consecutive windows, top-10 churn,
change-point detection on the activity series, and the "rising actors"
question (who gained the most rank through the burst) — the Section 3.2
organizational-crisis methodology as reusable library calls.

Run:  python examples/rank_dynamics.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import PagerankConfig, PostmortemDriver, PostmortemOptions, WindowSpec
from repro.analysis import (
    detect_change_points,
    rank_stability_series,
    rising_vertices,
    topk_churn_series,
)
from repro.datasets import get_profile
from repro.models import load_run, save_run
from repro.reporting import format_series, format_table

DAY = 86_400


def main() -> None:
    events = get_profile("epinions-user-ratings").generate(scale=0.3)
    spec = WindowSpec.covering_days(events, 60, 10 * DAY)
    print(
        f"instance: {len(events)} events, {spec.n_windows} windows of 60 days"
    )

    run = PostmortemDriver(
        events,
        spec,
        PagerankConfig(tolerance=1e-10),
        PostmortemOptions(kernel="spmm", vector_length=8),
    ).run()

    # cache the series — downstream analytics re-read it cheaply
    cache = Path(tempfile.gettempdir()) / "epinions_run.npz"
    save_run(run, cache)
    run = load_run(cache)
    print(f"cached + reloaded {run.n_windows} windows from {cache}\n")

    vectors = [w.values for w in run.windows]
    stability = rank_stability_series(vectors)
    churn = topk_churn_series(vectors, k=10)
    activity = np.array([w.n_active_edges for w in run.windows], float)
    changes = detect_change_points(activity, z_threshold=2.5)

    step = max(1, (spec.n_windows - 1) // 12)
    idx = list(range(0, spec.n_windows - 1, step))
    print(
        format_series(
            "window",
            idx,
            {
                "edges": [activity[i] for i in idx],
                "rank stability": [
                    round(float(stability[i]), 2)
                    if not np.isnan(stability[i])
                    else 0.0
                    for i in idx
                ],
                "top-10 churn": [round(float(churn[i]), 2) for i in idx],
            },
            title="Rank dynamics across the review burst",
        )
    )
    print(f"\nactivity change points at windows: {changes.tolist()}")

    if changes.size:
        burst = int(changes[0])
        before = max(burst - 2, 0)
        after = min(burst + 2, spec.n_windows - 1)
        rising = rising_vertices(vectors, before, after, top=5)
        rows = [
            [f"v{v}", f"{a:.5f}", f"{b:.5f}", f"{b - a:+.5f}"]
            for v, a, b in rising
        ]
        print(
            "\n"
            + format_table(
                ["vertex", f"rank w{before}", f"rank w{after}", "gain"],
                rows,
                title="Rising actors through the burst",
            )
        )


if __name__ == "__main__":
    main()
