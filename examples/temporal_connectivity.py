"""Beyond PageRank: other analyses on the same temporal representation.

The paper (Section 3.1) notes the sliding-window temporal graph "could be
analyzed in various ways ... using other kernels like closeness and
betweenness centrality, connecting component, k-core".  This example runs
four kernels over the same windows of the synthetic stackoverflow profile
— connected components, k-core degeneracy, degree centrality and Katz
centrality — through the generic postmortem kernel driver, and prints how
the network's structure consolidates as the site grows.

Run:  python examples/temporal_connectivity.py
"""

from __future__ import annotations

import numpy as np

from repro import WindowSpec
from repro.datasets import get_profile
from repro.kernels import (
    TemporalKernelDriver,
    connected_components,
    degree_centrality,
    katz_window,
    max_core,
)
from repro.reporting import format_table


def main() -> None:
    events = get_profile("stackoverflow").generate(scale=0.25)
    spec = WindowSpec.covering_days(events, 180, 86_400 * 60)
    print(
        f"instance: {len(events)} events, {spec.n_windows} windows of "
        f"180 days\n"
    )

    driver = TemporalKernelDriver(events, spec, n_multiwindows=6)

    comps = driver.run(connected_components)
    cores = driver.run(max_core, name="degeneracy")
    katz = driver.run(katz_window, name="katz")
    degrees = driver.run(
        lambda v: degree_centrality(v, "total", normalized=False),
        name="degree",
    )

    rows = []
    for i in range(0, spec.n_windows, max(1, spec.n_windows // 12)):
        c = comps.windows[i]
        comp = c.value
        deg = degrees.windows[i].value
        k = katz.windows[i].value.values  # kernel returns a PagerankResult
        top_katz = int(np.argmax(k)) if k.sum() else -1
        rows.append(
            [
                i,
                c.n_active_vertices,
                c.n_active_edges,
                comp.n_components,
                round(comp.giant_fraction(), 2),
                cores.windows[i].value,
                round(float(deg.max()), 0),
                f"v{top_katz}",
            ]
        )
    print(
        format_table(
            [
                "window",
                "|V|",
                "|E|",
                "components",
                "giant frac",
                "max core",
                "max degree",
                "top Katz",
            ],
            rows,
            title="Structural consolidation over time (stackoverflow profile)",
        )
    )

    giant = comps.series(lambda c: c.giant_fraction())
    degeneracy = cores.series(float)
    print(
        f"\ngiant-component fraction: {giant[0]:.2f} -> {giant[-1]:.2f}"
        f"   degeneracy: {degeneracy[0]:.0f} -> {degeneracy[-1]:.0f}"
    )
    print(
        "-> as the event rate grows, the graph coalesces into one giant "
        "component and densifies"
        if giant[-1] > giant[0]
        else "-> no consolidation in this draw"
    )


if __name__ == "__main__":
    main()
