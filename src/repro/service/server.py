"""JSON-over-HTTP serving of a rank store — stdlib only.

Two pieces:

* :class:`BatchingExecutor` — the micro-batching layer.  Every request
  (one query, or a ``POST /batch`` list) enqueues onto one shared queue;
  a bounded worker pool drains the queue in gulps, concatenates the
  drained queries, and evaluates them through ``QueryEngine.batch`` so
  concurrent queries against the same window share one slice decode.
  Under no load a request is evaluated alone (no added latency); under
  load, coalescing amortizes decode cost exactly when it matters.
* :class:`QueryServer` — a ``ThreadingHTTPServer`` translating GET/POST
  routes into engine queries, with ``/stats`` exposing cache and batching
  counters and a graceful ``shutdown()`` that finishes in-flight work.

Endpoints::

    GET  /health                       liveness (plain ok)
    GET  /healthz                      liveness + load (in-flight count)
    GET  /store                        store summary
    GET  /stats                        cache + batching counters
    GET  /top_k?window=W&k=K
    GET  /rank?vertex=V&window=W
    GET  /trajectory?vertex=V&start=S&stop=E
    GET  /movers?from=A&to=B&k=K
    GET  /windows_at?t=T
    POST /batch                        JSON list of query dicts

Under saturation the executor's admission queue is bounded
(``max_queue``): a submit that cannot enter the queue within
``submit_timeout`` raises :class:`~repro.errors.OverloadedError`, which
the HTTP layer reports as ``429`` — explicit load-shedding instead of
unbounded queueing latency.  The cluster frontend
(:mod:`repro.service.cluster`) relies on that signal for backpressure.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.errors import OverloadedError, ValidationError
from repro.sanitize import (
    LOCK_RANK_EXECUTOR_COUNTERS,
    LOCK_RANK_EXECUTOR_STATE,
    make_lock,
)
from repro.service.engine import QueryEngine
from repro.service.store import RankStore

__all__ = ["BatchingExecutor", "QueryServer"]

logger = logging.getLogger(__name__)

_STOP = object()

#: GET route → (query op, {url param → query key}) — every value is parsed
#: as an int (the API is all indices, ids and timestamps)
_GET_ROUTES: Dict[str, Tuple[str, Dict[str, str]]] = {
    "/top_k": ("top_k", {"window": "window", "k": "k"}),
    "/rank": ("rank", {"vertex": "vertex", "window": "window"}),
    "/trajectory": (
        "trajectory",
        {"vertex": "vertex", "start": "start", "stop": "stop"},
    ),
    "/movers": ("movers", {"from": "from", "to": "to", "k": "k"}),
    "/windows_at": ("windows_at", {"t": "t"}),
}


class _Job:
    """One submitted unit: a list of queries and the future for their
    results (a single GET is a one-query job)."""

    __slots__ = ("queries", "future")

    def __init__(self, queries: Sequence[Dict]) -> None:
        self.queries = list(queries)
        self.future: "Future[List[Dict]]" = Future()


class BatchingExecutor:
    """Coalesces concurrent query jobs into shared engine batches.

    ``max_queue`` bounds how many jobs may sit in the admission queue at
    once (``None`` = unbounded, the pre-federation behaviour).  A submit
    against a full queue waits at most ``submit_timeout`` seconds for a
    slot and then raises :class:`~repro.errors.OverloadedError` — the
    load-shedding signal the serving frontends turn into ``429``.
    """

    def __init__(
        self,
        engine: QueryEngine,
        workers: int = 4,
        max_batch: int = 64,
        max_queue: Optional[int] = None,
        submit_timeout: float = 0.0,
    ) -> None:
        if workers <= 0:
            raise ValidationError(f"workers must be > 0, got {workers}")
        if max_batch <= 0:
            raise ValidationError(f"max_batch must be > 0, got {max_batch}")
        if max_queue is not None and max_queue <= 0:
            raise ValidationError(f"max_queue must be > 0, got {max_queue}")
        if submit_timeout < 0:
            raise ValidationError(
                f"submit_timeout must be >= 0, got {submit_timeout}"
            )
        self.engine = engine
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.submit_timeout = submit_timeout
        self._queue: "queue.Queue" = queue.Queue()
        # admission slots live beside the queue (not as queue maxsize) so
        # the _STOP sentinels can never be blocked out by a full queue
        self._slots = (
            threading.BoundedSemaphore(max_queue)
            if max_queue is not None
            else None
        )
        self._counter_lock = make_lock(
            "executor-counters", LOCK_RANK_EXECUTOR_COUNTERS
        )
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_shed = 0
        self.batches_executed = 0
        self.batched_queries = 0
        self.jobs_coalesced = 0
        #: guards ``_stopped`` together with queue insertion, so a job can
        #: never be enqueued behind the ``_STOP`` sentinels (where no
        #: worker would ever drain it)
        self._state_lock = make_lock(
            "executor-state", LOCK_RANK_EXECUTOR_STATE
        )
        self._stopped = False
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"rank-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._workers:
            t.start()

    # ------------------------------------------------------------------
    def submit(self, queries: Sequence[Dict]) -> "Future[List[Dict]]":
        """Enqueue one job; the future resolves to one result per query.

        Raises :class:`~repro.errors.OverloadedError` when the bounded
        admission queue stays full past ``submit_timeout``.
        """
        if self._slots is not None and not self._slots.acquire(
            timeout=self.submit_timeout
        ):
            with self._counter_lock:
                self.jobs_shed += 1
            raise OverloadedError(
                f"admission queue full ({self.max_queue} jobs); request "
                "shed after "
                f"{self.submit_timeout:.3f}s"
            )
        job = _Job(queries)
        try:
            with self._state_lock:
                if self._stopped:
                    raise ValidationError("executor is stopped")
                self._queue.put(job)
        except BaseException:
            self._release_slot()
            raise
        with self._counter_lock:
            self.jobs_submitted += 1
        return job.future

    def _release_slot(self) -> None:
        if self._slots is not None:
            try:
                self._slots.release()
            except ValueError:  # pragma: no cover - defensive double release
                logger.warning("admission slot over-released")

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            self._release_slot()
            jobs = [job]
            # gulp whatever queued up behind this job: those queries ride
            # in the same engine batch and share slice decodes
            while sum(len(j.queries) for j in jobs) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._queue.put(_STOP)  # hand the sentinel back
                    break
                self._release_slot()
                jobs.append(nxt)
            queries = [q for j in jobs for q in j.queries]
            try:
                results = self.engine.batch(queries)
            except Exception as exc:  # noqa: BLE001 - worker boundary
                with self._counter_lock:
                    self.jobs_completed += len(jobs)
                for j in jobs:
                    if not j.future.set_running_or_notify_cancel():
                        continue
                    j.future.set_exception(exc)
                continue
            with self._counter_lock:
                self.batches_executed += 1
                self.batched_queries += len(queries)
                self.jobs_completed += len(jobs)
                if len(jobs) > 1:
                    self.jobs_coalesced += len(jobs)
            offset = 0
            for j in jobs:
                part = results[offset:offset + len(j.queries)]
                offset += len(j.queries)
                if j.future.set_running_or_notify_cancel():
                    j.future.set_result(part)

    def in_flight(self) -> int:
        """Jobs admitted but not yet answered (queued + mid-batch)."""
        with self._counter_lock:
            return self.jobs_submitted - self.jobs_completed

    def stats(self) -> Dict[str, float]:
        with self._counter_lock:
            in_flight = self.jobs_submitted - self.jobs_completed
            mean_batch = (
                self.batched_queries / self.batches_executed
                if self.batches_executed
                else 0.0
            )
            return {
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "jobs_shed": self.jobs_shed,
                "in_flight": in_flight,
                "batches_executed": self.batches_executed,
                "jobs_coalesced": self.jobs_coalesced,
                "mean_batch_queries": round(mean_batch, 3),
                "max_queue": self.max_queue or 0,
                "workers": len(self._workers),
            }

    def stop(self, timeout: float = 5.0) -> bool:
        """Drain outstanding jobs, then stop the workers.

        Returns ``True`` when every worker actually exited within
        ``timeout``; ``False`` means some worker is still mid-batch and
        may touch the engine after this call (the caller must not unmap
        the store in that case).  Jobs left undrained (only possible on
        timeout) get their futures failed so no waiter hangs.
        """
        with self._state_lock:
            if self._stopped:
                return all(not t.is_alive() for t in self._workers)
            self._stopped = True
            for _ in self._workers:
                self._queue.put(_STOP)
        for t in self._workers:
            t.join(timeout)
        all_exited = all(not t.is_alive() for t in self._workers)
        # fail any leftovers so their waiters get an immediate error
        # instead of blocking until their request timeout
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is _STOP:
                continue
            if job.future.set_running_or_notify_cancel():
                job.future.set_exception(
                    ValidationError("executor is stopped")
                )
        # the drain may have eaten a sentinel a straggler still needs to
        # exit once its batch finishes — re-seed one per live worker
        for t in self._workers:
            if t.is_alive():
                self._queue.put(_STOP)
        return all_exited


class _Handler(BaseHTTPRequestHandler):
    server: "_RankHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _reply(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        if self.server.verbose:  # pragma: no cover - log plumbing
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path == "/health":
            self._reply(200, {"status": "ok"})
            return
        if url.path == "/healthz":
            # the cluster health checker's probe: liveness plus load, so
            # a hung-but-accepting server is distinguishable from a
            # healthy one
            self._reply(
                200,
                {
                    "status": "ok",
                    "in_flight": self.server.executor.in_flight(),
                    "workers": len(self.server.executor._workers),
                },
            )
            return
        if url.path == "/store":
            self._reply(200, self.server.engine.store.info())
            return
        if url.path == "/stats":
            self._reply(200, self.server.stats())
            return
        route = _GET_ROUTES.get(url.path)
        if route is None:
            self._reply(404, {"error": f"unknown endpoint {url.path}"})
            return
        op, params = route
        query: Dict[str, object] = {"op": op}
        try:
            raw = parse_qs(url.query)
            for url_key, query_key in params.items():
                if url_key in raw:
                    query[query_key] = int(raw[url_key][0])
        except ValueError as exc:
            self._reply(400, {"error": f"bad query parameter: {exc}"})
            return
        self._dispatch([query], single=True)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path != "/batch":
            self._reply(404, {"error": f"unknown endpoint {url.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            queries = json.loads(self.rfile.read(length).decode())
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"bad request body: {exc}"})
            return
        if not isinstance(queries, list):
            self._reply(400, {"error": "/batch expects a JSON list"})
            return
        self._dispatch(queries, single=False)

    # ------------------------------------------------------------------
    def _dispatch(self, queries: List[Dict], single: bool) -> None:
        try:
            future = self.server.executor.submit(queries)
            results = future.result(timeout=self.server.request_timeout)
        except OverloadedError as exc:
            self._reply(429, {"error": str(exc), "shed": True})
            return
        except Exception as exc:  # noqa: BLE001 - request boundary
            self._reply(500, {"error": str(exc)})
            return
        if single:
            (result,) = results
            status = 200 if result["ok"] else 400
            self._reply(status, result)
        else:
            self._reply(200, {"results": results})


class _RankHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    engine: QueryEngine
    executor: BatchingExecutor
    request_timeout: float
    verbose: bool

    def stats(self) -> Dict:
        payload: Dict[str, object] = dict(self.engine.stats())
        payload["batching"] = self.executor.stats()
        return payload


class QueryServer:
    """The serving façade: store → engine → batching pool → HTTP.

    ``port=0`` binds an ephemeral port (tests); ``address`` reports the
    bound endpoint.  ``serve_forever()`` blocks until ``shutdown()`` (or
    Ctrl-C in the CLI); ``start()`` runs the accept loop on a background
    thread instead.
    """

    def __init__(
        self,
        store: Union[str, RankStore, QueryEngine],
        host: str = "127.0.0.1",
        port: int = 8321,
        workers: int = 4,
        max_batch: int = 64,
        max_queue: Optional[int] = None,
        submit_timeout: float = 0.0,
        request_timeout: float = 30.0,
        verbose: bool = False,
    ) -> None:
        self.engine = (
            store if isinstance(store, QueryEngine) else QueryEngine(store)
        )
        self.executor = BatchingExecutor(
            self.engine,
            workers=workers,
            max_batch=max_batch,
            max_queue=max_queue,
            submit_timeout=submit_timeout,
        )
        self._httpd = _RankHTTPServer((host, port), _Handler)
        self._httpd.engine = self.engine
        self._httpd.executor = self.executor
        self._httpd.request_timeout = request_timeout
        self._httpd.verbose = verbose
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def start(self) -> "QueryServer":
        """Serve on a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="rank-serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, finish in-flight jobs, release the store.

        The store is unmapped only once every batching worker has
        verifiably exited — unmapping under a live worker would turn its
        next matrix read into a segfault.  If a worker overruns the stop
        timeout the engine is left open (leaked, but safe) and a warning
        is logged.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.executor.stop(timeout=5.0):
            self.engine.close()
        else:
            logger.warning(
                "batching workers did not exit within the stop timeout; "
                "leaving the rank store mapped to avoid a use-after-unmap"
            )

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
