"""A small observable LRU cache for the query engine.

The engine keeps two of these: one over decoded window slices (the float32
row materialized out of the mmap) and one over ranked top-k lists.  Both
are hot-path caches in a server, so hits, misses and evictions are counted
and exposed via ``/stats`` for observability.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, TypeVar

from repro.sanitize import LOCK_RANK_ENGINE_CACHE, make_lock

__all__ = ["CacheStats", "LRUCache"]

V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    """Monotonic counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Thread-safe LRU keyed by any hashable, bounded by entry count.

    ``get_or_compute`` is the primary API: a miss runs ``compute()``
    *outside* the lock (slice decodes and top-k sorts must not serialize
    each other), so two concurrent misses on one key may both compute —
    acceptable for idempotent reads, and exactly what the server's
    micro-batching layer exists to prevent.
    """

    def __init__(self, maxsize: int = 128, name: str = "lru") -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be > 0, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = make_lock(f"cache:{name}", LOCK_RANK_ENGINE_CACHE)

    def get(self, key: Hashable, default: V = None) -> V:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], V]) -> V:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data.keys()))

    def clear(self) -> None:
        """Drop all entries (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._data.clear()
