"""The serving layer: precompute once, answer queries forever.

The postmortem model computes PageRank for *every* window up front, so the
natural production shape is precompute-then-serve: a run is flushed to an
on-disk :class:`~repro.service.store.RankStore` (a memory-mapped
``(n_windows, n_vertices)`` float32 matrix plus a window-metadata index),
and a :class:`~repro.service.engine.QueryEngine` answers top-k / rank /
trajectory / movers queries over mmap slices without ever loading the full
matrix.  :class:`~repro.service.server.QueryServer` exposes the engine over
JSON-over-HTTP with request micro-batching.

When one process is not enough, :mod:`repro.service.cluster` federates
the same query surface across shard worker processes behind an asyncio
frontend (``serve --shards N``) — see that package's docstring.
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.engine import QueryEngine, compute_movers
from repro.service.server import BatchingExecutor, QueryServer
from repro.service.store import RankStore, RankStoreWriter, write_store

__all__ = [
    "BatchingExecutor",
    "CacheStats",
    "LRUCache",
    "QueryEngine",
    "QueryServer",
    "RankStore",
    "RankStoreWriter",
    "compute_movers",
    "write_store",
]
