"""The cluster coordinator: shard processes, routing, health, degradation.

:class:`ShardCluster` federates one ``.rankstore`` across worker
processes:

* at startup the store's rank matrix is packed **once** into POSIX
  shared-memory arenas (one segment per shard, owned and eventually
  unlinked by this process only — the PR-3 lifecycle rules); every
  replica of a shard attaches zero-copy, so hot rank pages exist once
  per machine regardless of replica count;
* each query is routed by the :class:`~repro.service.cluster.shard_map.
  ShardMap`: point lookups (``top_k``/``rank``) go to the owning shard,
  ``trajectory`` scatters over every overlapping shard and gathers the
  segments in window order, cross-shard ``movers`` fetches the two
  window vectors and ranks the deltas parent-side with the *same*
  :func:`~repro.service.engine.compute_movers` the single-process engine
  uses, and ``windows_at`` is answered from the interval index held here
  (no shard round-trip);
* every replica proxy carries a **bounded admission queue**: when a
  shard's queue is full past the submit timeout the query is shed with
  :class:`~repro.errors.OverloadedError` (HTTP ``429``) instead of
  queueing without bound — backpressure propagates to clients rather
  than turning into latency;
* a health thread pings replicas and watches their processes; when every
  replica of a shard is dead the shard's window range degrades: queries
  touching it come back with an explicit ``degraded`` flag (partial
  results where the op allows it) while the surviving ranges keep
  serving.

The coordinator is transport-agnostic — ``batch()`` takes and returns
the same query/result dicts as :meth:`QueryEngine.batch` — so the
asyncio frontend, the CLI, and the tests all drive one code path.
"""

from __future__ import annotations

import logging
import os
import queue
import signal
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    OverloadedError,
    ShardUnavailableError,
    ValidationError,
)
from repro.parallel.shared_arena import SharedArenaRegistry
from repro.sanitize import (
    LOCK_RANK_CLUSTER_COUNTERS,
    LOCK_RANK_CLUSTER_REPLICA,
    LOCK_RANK_CLUSTER_STATE,
    make_lock,
)
from repro.service.cluster.shard_map import ShardMap, ShardSpec
from repro.service.cluster.worker import shard_worker_main
from repro.service.engine import compute_movers
from repro.service.store import RankStore, intervals_containing

__all__ = ["ReplicaProxy", "ShardCluster"]

logger = logging.getLogger(__name__)


class ReplicaProxy:
    """Parent-side handle to one replica process.

    Owns the duplex pipe, a sender thread (so no caller ever blocks on a
    pipe write while holding locks), a receiver thread (resolves request
    futures), and the bounded admission semaphore that implements
    per-shard backpressure.
    """

    def __init__(
        self,
        spec: ShardSpec,
        replica_id: int,
        process,
        conn,
        max_queue: int = 64,
        submit_timeout: float = 0.0,
    ) -> None:
        self.spec = spec
        self.replica_id = replica_id
        self.process = process
        self._conn = conn
        self.max_queue = max_queue
        self.submit_timeout = submit_timeout
        self._slots = threading.BoundedSemaphore(max_queue)
        self._lock = make_lock(
            f"replica-{spec.shard_id}.{replica_id}",
            LOCK_RANK_CLUSTER_REPLICA,
        )
        self._pending: Dict[int, Tuple[Future, bool]] = {}
        self._next_id = 0
        self._dead = False
        self._stopping = False
        self._death_reason: Optional[str] = None
        #: written only by the health thread, read by stats()
        self.last_stats: Optional[Dict] = None
        self._send_queue: "queue.Queue" = queue.Queue()
        self._sender = threading.Thread(
            target=self._send_loop,
            name=f"shard-{spec.shard_id}.{replica_id}-send",
            daemon=True,
        )
        self._receiver = threading.Thread(
            target=self._recv_loop,
            name=f"shard-{spec.shard_id}.{replica_id}-recv",
            daemon=True,
        )
        self._sender.start()
        self._receiver.start()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, kind: str, payload, admission: bool = True) -> Future:
        """Ship one request; the future resolves to the worker's reply.

        ``admission=False`` bypasses the bounded queue (health pings must
        get through precisely when the queue is full).
        """
        if self._dead:
            raise ShardUnavailableError(self._death_note())
        if admission and not self._slots.acquire(
            timeout=self.submit_timeout
        ):
            raise OverloadedError(
                f"shard {self.spec.shard_id} replica {self.replica_id} "
                f"queue full ({self.max_queue}); request shed"
            )
        future: Future = Future()
        with self._lock:
            if self._dead:
                if admission:
                    self._slots.release()
                raise ShardUnavailableError(self._death_note())
            req_id = self._next_id
            self._next_id = req_id + 1
            self._pending[req_id] = (future, admission)
        self._send_queue.put((req_id, kind, payload))
        return future

    # ------------------------------------------------------------------
    def _send_loop(self) -> None:
        while True:
            item = self._send_queue.get()
            if item is None:
                try:
                    self._conn.send(None)  # worker shutdown sentinel
                except (BrokenPipeError, OSError) as exc:
                    logger.debug("replica %s sentinel send failed: %s",
                                 self.name, exc)
                return
            try:
                self._conn.send(item)
            except (BrokenPipeError, OSError) as exc:
                self._mark_dead(f"pipe write failed: {exc}")
                return

    def _recv_loop(self) -> None:
        while True:
            try:
                req_id, ok, result = self._conn.recv()
            except (EOFError, OSError):
                self._mark_dead("pipe closed (process exited?)")
                return
            with self._lock:
                entry = self._pending.pop(req_id, None)
                if entry is not None and entry[1]:
                    self._slots.release()
            if entry is None:
                continue  # request already failed over / timed out
            future = entry[0]
            # resolve outside the replica lock: future callbacks may take
            # coarser (lower-rank) cluster locks
            if not future.set_running_or_notify_cancel():
                continue
            if ok:
                future.set_result(result)
            else:
                future.set_exception(ValidationError(str(result)))

    def _death_note(self) -> str:
        return (
            f"shard {self.spec.shard_id} replica {self.replica_id} is dead"
            + (f": {self._death_reason}" if self._death_reason else "")
        )

    def _mark_dead(self, reason: str) -> None:
        with self._lock:
            if self._dead:
                return
            self._dead = True
            self._death_reason = reason
            pending = list(self._pending.values())
            self._pending.clear()
            for _, admission in pending:
                if admission:
                    self._slots.release()
        note = logger.debug if self._stopping else logger.warning
        note("replica %s marked dead: %s", self.name, reason)
        exc = ShardUnavailableError(self._death_note())
        for future, _ in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)

    def mark_dead(self, reason: str) -> None:
        """Externally declare this replica dead (health checker)."""
        self._mark_dead(reason)

    @property
    def name(self) -> str:
        return f"{self.spec.shard_id}.{self.replica_id}"

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: sentinel, join, escalate to terminate/kill."""
        self._stopping = True
        self._send_queue.put(None)
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout)
        self._mark_dead("stopped")
        try:
            self._conn.close()
        except OSError as exc:  # pragma: no cover - teardown race
            logger.debug("replica %s conn close: %s", self.name, exc)
        self.process.close()

    def kill(self) -> None:
        """SIGKILL the replica process (failure-injection hook)."""
        if self.process.pid is not None and self.process.is_alive():
            os.kill(self.process.pid, signal.SIGKILL)
        self.process.join(timeout=5.0)


# ----------------------------------------------------------------------
# per-query routing plans
# ----------------------------------------------------------------------
class _Part:
    """One shard-bound fragment of a query's plan."""

    __slots__ = ("shard_id", "query", "slice_window", "result", "error",
                 "degraded", "shed")

    def __init__(self, shard_id: int, query: Optional[Dict] = None,
                 slice_window: Optional[int] = None) -> None:
        self.shard_id = shard_id
        self.query = query
        self.slice_window = slice_window
        self.result = None
        self.error: Optional[str] = None
        self.degraded = False
        self.shed = False

    def fail(self, error: str, degraded: bool = False,
             shed: bool = False) -> None:
        self.error = error
        self.degraded = degraded
        self.shed = shed


class ShardCluster:
    """A sharded serving tier over one rank store."""

    def __init__(
        self,
        store: Union[str, os.PathLike],
        n_shards: int = 2,
        replicas: int = 1,
        max_queue: int = 64,
        submit_timeout: float = 0.0,
        request_timeout: float = 10.0,
        engine_workers: int = 2,
        max_batch: int = 64,
        health_interval: float = 0.5,
        ping_timeout: float = 5.0,
        mp_context=None,
    ) -> None:
        if replicas <= 0:
            raise ValidationError(f"replicas must be > 0, got {replicas}")
        import multiprocessing

        ctx = mp_context if mp_context is not None \
            else multiprocessing.get_context()
        self.store_path = os.fspath(store)
        self.request_timeout = request_timeout
        self._registry = SharedArenaRegistry()
        self._state_lock = make_lock("cluster-state",
                                     LOCK_RANK_CLUSTER_STATE)
        self._counter_lock = make_lock("cluster-counters",
                                       LOCK_RANK_CLUSTER_COUNTERS)
        self.queries_routed = 0
        self.queries_degraded = 0
        self.queries_shed = 0
        self._rr: Dict[int, int] = {}
        self._closed = False
        self._replicas: Dict[int, List[ReplicaProxy]] = {}
        try:
            with RankStore(self.store_path) as src:
                self.n_windows = src.n_windows
                self.n_vertices = src.n_vertices
                self.shard_map = ShardMap.build(src.n_windows, n_shards)
                self.t_start = (
                    np.array(src.t_start, copy=True)
                    if src.t_start is not None else None
                )
                self.t_end = (
                    np.array(src.t_end, copy=True)
                    if src.t_end is not None else None
                )
                self._store_info = dict(src.info())
                # one segment per shard: rows are copied file->shm once
                # here, then every replica attaches zero-copy
                for spec in self.shard_map.shards:
                    prefix = f"s{spec.shard_id}/"
                    rows = np.ascontiguousarray(
                        src.matrix[spec.window_lo:spec.window_hi]
                    )
                    handle = self._registry.publish(
                        {prefix + "matrix": rows}
                    )
                    procs: List[ReplicaProxy] = []
                    for rid in range(replicas):
                        parent_conn, child_conn = ctx.Pipe(duplex=True)
                        process = ctx.Process(
                            target=shard_worker_main,
                            args=(spec.shard_id, rid, handle, prefix,
                                  spec, child_conn, engine_workers,
                                  max_batch),
                            name=f"rank-shard-{spec.shard_id}.{rid}",
                            daemon=True,
                        )
                        process.start()
                        child_conn.close()
                        procs.append(
                            ReplicaProxy(
                                spec, rid, process, parent_conn,
                                max_queue=max_queue,
                                submit_timeout=submit_timeout,
                            )
                        )
                    self._replicas[spec.shard_id] = procs
        except BaseException:
            self._teardown()
            raise
        self._health_stop = threading.Event()
        self._health_pings: Dict[str, Tuple[Future, float]] = {}
        self._ping_timeout = ping_timeout
        self._health_thread = threading.Thread(
            target=self._health_loop,
            args=(health_interval,),
            name="cluster-health",
            daemon=True,
        )
        self._health_thread.start()

    # ------------------------------------------------------------------
    # topology / health
    # ------------------------------------------------------------------
    def live_replicas(self, shard_id: int) -> List[ReplicaProxy]:
        return [r for r in self._replicas[shard_id] if r.alive]

    def shard_alive(self, shard_id: int) -> bool:
        return bool(self.live_replicas(shard_id))

    def degraded(self) -> bool:
        """Whether any shard's window range is currently unserveable."""
        return any(
            not self.shard_alive(s.shard_id)
            for s in self.shard_map.shards
        )

    def _health_loop(self, interval: float) -> None:
        while not self._health_stop.wait(interval):
            for procs in self._replicas.values():
                for replica in procs:
                    if replica._dead:
                        continue
                    if not replica.process.is_alive():
                        replica.mark_dead("process exited")
                        continue
                    self._check_ping(replica)

    def _check_ping(self, replica: ReplicaProxy) -> None:
        """Harvest the previous ping (stats + liveness) and send the next."""
        entry = self._health_pings.get(replica.name)
        if entry is not None:
            future, sent = entry
            if future.done():
                del self._health_pings[replica.name]
                exc = future.exception()
                if exc is None:
                    replica.last_stats = future.result()
            elif time.monotonic() - sent > self._ping_timeout:
                del self._health_pings[replica.name]
                replica.mark_dead(
                    f"ping unanswered for {self._ping_timeout:.1f}s"
                )
                return
            else:
                return  # previous ping still in flight
        try:
            self._health_pings[replica.name] = (
                replica.submit("ping", None, admission=False),
                time.monotonic(),
            )
        except ShardUnavailableError:
            logger.debug("health ping raced replica %s death", replica.name)

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL every replica of one shard (failure injection)."""
        for replica in self._replicas[shard_id]:
            replica.kill()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _choose_replica(self, shard_id: int) -> Optional[ReplicaProxy]:
        live = self.live_replicas(shard_id)
        if not live:
            return None
        with self._state_lock:
            turn = self._rr.get(shard_id, 0)
            self._rr[shard_id] = turn + 1
        return live[turn % len(live)]

    def _dead_range_note(self, shard_id: int) -> str:
        spec = self.shard_map.shards[shard_id]
        return (
            f"shard {shard_id} unavailable (windows "
            f"[{spec.window_lo}, {spec.window_hi}))"
        )

    def _plan(self, query: Dict, parts: List[_Part]):
        """Build one query's shard parts; returns a finisher callable.

        Raises the same exception types :meth:`QueryEngine._eval` turns
        into error results, so malformed queries produce byte-identical
        error shapes on cluster and single-process paths.
        """
        op = query.get("op")
        if op in ("top_k", "rank"):
            if op == "rank":
                query["vertex"]  # engine reads vertex first: same KeyError
            window = int(query["window"])
            spec = self.shard_map.shard_of(window)
            translated = dict(query)
            translated["window"] = spec.to_local(window)
            part = _Part(spec.shard_id, query=translated)
            parts.append(part)
            return lambda: self._finish_simple(part)
        if op == "windows_at":
            result = self.windows_at(query["t"])
            return lambda: {"ok": True, "result": result}
        if op == "trajectory":
            # mirror QueryEngine.trajectory's validation (same checks,
            # same order, same wording) so error results stay identical
            vertex = int(query["vertex"])
            if not (0 <= vertex < self.n_vertices):
                raise ValidationError(
                    f"vertex {vertex} out of range [0, {self.n_vertices})"
                )
            stop = query.get("stop")
            stop = self.n_windows if stop is None else int(stop)
            start = int(query.get("start", 0))
            if not (0 <= start < self.n_windows):
                raise ValidationError(
                    f"window index {start} out of range "
                    f"[0, {self.n_windows})"
                )
            if not (start < stop <= self.n_windows):
                raise ValidationError(
                    f"trajectory range [{start}, {stop}) invalid for "
                    f"{self.n_windows} windows"
                )
            segs = self.shard_map.shards_in_range(start, stop)
            my_parts: List[Tuple[_Part, int, int]] = []
            for spec, lo, hi in segs:
                translated = {
                    "op": "trajectory",
                    "vertex": query["vertex"],
                    "start": spec.to_local(lo),
                    "stop": spec.to_local(hi - 1) + 1,
                }
                part = _Part(spec.shard_id, query=translated)
                parts.append(part)
                my_parts.append((part, lo, hi))
            return lambda: self._finish_trajectory(my_parts)
        if op == "movers":
            k = int(query.get("k", 10))
            if k <= 0:
                raise ValidationError(f"k must be > 0, got {k}")
            w_from, w_to = int(query["from"]), int(query["to"])
            spec_a = self.shard_map.shard_of(w_from)
            spec_b = self.shard_map.shard_of(w_to)
            if spec_a.shard_id == spec_b.shard_id:
                translated = {
                    "op": "movers",
                    "from": spec_a.to_local(w_from),
                    "to": spec_a.to_local(w_to),
                    "k": k,
                }
                part = _Part(spec_a.shard_id, query=translated)
                parts.append(part)
                return lambda: self._finish_simple(part)
            part_a = _Part(spec_a.shard_id,
                           slice_window=spec_a.to_local(w_from))
            part_b = _Part(spec_b.shard_id,
                           slice_window=spec_b.to_local(w_to))
            parts.extend((part_a, part_b))
            return lambda: self._finish_movers(part_a, part_b, k)
        raise ValidationError(f"unknown query op: {op!r}")

    # -- finishers ------------------------------------------------------
    @staticmethod
    def _part_failure(part: _Part) -> Dict:
        out: Dict[str, object] = {"ok": False, "error": part.error}
        if part.degraded:
            out["degraded"] = True
        if part.shed:
            out["shed"] = True
        return out

    def _finish_simple(self, part: _Part) -> Dict:
        if part.error is not None:
            return self._part_failure(part)
        return part.result

    def _finish_trajectory(
        self, segments: Sequence[Tuple[_Part, int, int]]
    ) -> Dict:
        values: List[Optional[float]] = []
        missing: List[List[int]] = []
        degraded = False
        for part, lo, hi in segments:
            if part.error is not None:
                if not part.degraded:
                    return self._part_failure(part)
                degraded = True
                missing.append([lo, hi])
                values.extend([None] * (hi - lo))
                continue
            seg = part.result
            if not seg.get("ok", False):
                return seg
            values.extend(seg["result"])
        out: Dict[str, object] = {"ok": True, "result": values}
        if degraded:
            out["degraded"] = True
            out["missing_windows"] = missing
        return out

    def _finish_movers(self, part_a: _Part, part_b: _Part,
                       k: int) -> Dict:
        for part in (part_a, part_b):
            if part.error is not None:
                return self._part_failure(part)
        movers = compute_movers(part_a.result, part_b.result, k)
        return {"ok": True, "result": movers}

    # ------------------------------------------------------------------
    # the public query surface
    # ------------------------------------------------------------------
    def batch(self, queries: Sequence[Dict],
              timeout: Optional[float] = None) -> List[Dict]:
        """Evaluate queries across the shards; one result dict per query.

        Results match :meth:`QueryEngine.batch` shapes, with two
        additions under failure: ``"degraded": True`` when a dead
        shard's range is involved (partial data where the op allows) and
        ``"shed": True`` when backpressure dropped the query.
        """
        timeout = self.request_timeout if timeout is None else timeout
        finishers: List[Optional[object]] = [None] * len(queries)
        results: List[Optional[Dict]] = [None] * len(queries)
        all_parts: List[List[_Part]] = [[] for _ in queries]
        for i, query in enumerate(queries):
            try:
                finishers[i] = self._plan(query, all_parts[i])
            except (ValidationError, KeyError, TypeError, ValueError) as exc:
                results[i] = {"ok": False, "error": str(exc)}
        self._execute_parts(
            [p for parts in all_parts for p in parts], timeout
        )
        n_degraded = n_shed = 0
        for i, finisher in enumerate(finishers):
            if results[i] is None:
                results[i] = finisher()
            if results[i].get("degraded"):
                n_degraded += 1
            if results[i].get("shed"):
                n_shed += 1
        with self._counter_lock:
            self.queries_routed += len(queries)
            self.queries_degraded += n_degraded
            self.queries_shed += n_shed
        return results

    def _execute_parts(self, parts: List[_Part], timeout: float) -> None:
        """Scatter all shard parts, gather replies, annotate failures."""
        by_shard: Dict[int, List[_Part]] = {}
        for part in parts:
            by_shard.setdefault(part.shard_id, []).append(part)

        pending: List[Tuple[Future, List[_Part]]] = []
        for shard_id, shard_parts in by_shard.items():
            batch_parts = [p for p in shard_parts if p.query is not None]
            slice_parts = [p for p in shard_parts
                           if p.slice_window is not None]
            replica = self._choose_replica(shard_id)
            if replica is None:
                note = self._dead_range_note(shard_id)
                for p in shard_parts:
                    p.fail(note, degraded=True)
                continue
            if batch_parts:
                self._submit_group(
                    replica, "batch",
                    [p.query for p in batch_parts], batch_parts, pending,
                )
            for p in slice_parts:
                self._submit_group(
                    replica, "slice", p.slice_window, [p], pending
                )

        deadline = time.monotonic() + timeout
        for future, group in pending:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                payload = future.result(timeout=remaining)
            except ShardUnavailableError as exc:
                for p in group:
                    p.fail(str(exc), degraded=True)
                continue
            except FutureTimeoutError:
                for p in group:
                    p.fail(
                        f"shard {group[0].shard_id} timed out after "
                        f"{timeout:.1f}s",
                        degraded=True,
                    )
                continue
            except ValidationError as exc:
                for p in group:
                    p.fail(str(exc))
                continue
            if len(group) == 1 and group[0].slice_window is not None:
                group[0].result = payload
            else:
                for p, res in zip(group, payload):
                    p.result = res

    def _submit_group(
        self,
        replica: ReplicaProxy,
        kind: str,
        payload,
        group: List[_Part],
        pending: List[Tuple[Future, List[_Part]]],
    ) -> None:
        try:
            pending.append((replica.submit(kind, payload), group))
        except OverloadedError as exc:
            for p in group:
                p.fail(str(exc), shed=True)
        except ShardUnavailableError as exc:
            for p in group:
                p.fail(str(exc), degraded=True)

    # -- convenience single-op wrappers (tests, CLI) --------------------
    def query(self, query: Dict) -> Dict:
        """One query dict -> one engine-shaped result dict."""
        return self.batch([query])[0]

    def top_k(self, window: int, k: int = 10) -> Dict:
        return self.query({"op": "top_k", "window": window, "k": k})

    def rank(self, vertex: int, window: int) -> Dict:
        return self.query(
            {"op": "rank", "vertex": vertex, "window": window}
        )

    def trajectory(self, vertex: int, start: int = 0,
                   stop: Optional[int] = None) -> Dict:
        query: Dict[str, object] = {
            "op": "trajectory", "vertex": vertex, "start": start,
        }
        if stop is not None:
            query["stop"] = stop
        return self.query(query)

    def movers(self, w_from: int, w_to: int, k: int = 10) -> Dict:
        return self.query(
            {"op": "movers", "from": w_from, "to": w_to, "k": k}
        )

    def windows_at(self, timestamp: int) -> List[int]:
        if self.t_start is None or self.t_end is None:
            raise ValidationError(
                "store carries no window intervals; rewrite it passing a "
                "WindowSpec to enable timestamp lookup"
            )
        return [
            int(w)
            for w in intervals_containing(
                self.t_start, self.t_end, timestamp
            )
        ]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def info(self) -> Dict[str, object]:
        """Store summary + topology (the frontend's ``/store``)."""
        info = dict(self._store_info)
        info["shards"] = self.shard_map.n_shards
        info["arena bytes"] = self._registry.total_bytes
        return info

    def status(self) -> Dict[str, object]:
        """Topology and liveness (the frontend's ``/cluster``)."""
        shards = []
        for spec in self.shard_map.shards:
            replicas = [
                {
                    "replica": r.replica_id,
                    "alive": r.alive,
                    "in_flight": r.in_flight(),
                }
                for r in self._replicas[spec.shard_id]
            ]
            shards.append(
                {
                    "shard": spec.shard_id,
                    "window_lo": spec.window_lo,
                    "window_hi": spec.window_hi,
                    "alive": self.shard_alive(spec.shard_id),
                    "replicas": replicas,
                }
            )
        return {
            "store": self.store_path,
            "windows": self.n_windows,
            "vertices": self.n_vertices,
            "degraded": self.degraded(),
            "shards": shards,
        }

    def stats(self) -> Dict[str, object]:
        """Router counters + the last health-ping stats per replica."""
        with self._counter_lock:
            router = {
                "queries_routed": self.queries_routed,
                "queries_degraded": self.queries_degraded,
                "queries_shed": self.queries_shed,
            }
        replicas: Dict[str, object] = {}
        for procs in self._replicas.values():
            for r in procs:
                replicas[r.name] = {
                    "alive": r.alive,
                    "in_flight": r.in_flight(),
                    "worker": r.last_stats,
                }
        return {"router": router, "replicas": replicas}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        for procs in self._replicas.values():
            for replica in procs:
                try:
                    replica.stop()
                except (OSError, ValueError) as exc:
                    logger.warning("replica %s stop failed: %s",
                                   replica.name, exc)
        self._replicas.clear()
        self._registry.close(unlink=True)

    def shutdown(self) -> None:
        """Stop every replica, reclaim every arena segment (idempotent).

        Replica stop escalates sentinel -> terminate -> SIGKILL, and the
        arenas are unlinked regardless — a SIGKILLed worker cannot leak
        ``/dev/shm`` because workers only ever attach.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._health_stop.set()
        self._health_thread.join(timeout=5.0)
        self._teardown()

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
