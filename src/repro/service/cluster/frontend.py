"""The asyncio front door of the sharded serving tier — stdlib only.

:class:`ClusterFrontend` is the cluster-mode sibling of
:class:`~repro.service.server.QueryServer`: the same JSON-over-HTTP query
surface, but served by an ``asyncio`` acceptor and answered by a
:class:`~repro.service.cluster.coordinator.ShardCluster` instead of one
in-process engine.  Concurrency is two-level:

* the event loop multiplexes thousands of connections on one thread and
  applies **global admission control** — at most ``max_inflight``
  requests may be inside the router at once, everything beyond that is
  answered ``429`` immediately (protecting the gather thread pool the
  way the per-shard bounded queues protect the workers);
* each admitted request runs the blocking scatter/gather
  (``cluster.batch``) on the loop's default thread-pool executor, so the
  acceptor never blocks on a shard round-trip.

Endpoints are a superset of the single-process server's::

    GET  /health /healthz /store /stats     as QueryServer, plus shard
                                            liveness in /healthz
    GET  /cluster                           topology + per-replica status
    GET  /top_k /rank /trajectory /movers /windows_at
    POST /batch

Failure semantics on single-query endpoints: ``429`` when the query was
shed (global cap or a shard's bounded queue), ``503`` when a dead shard
made the answer impossible, ``200`` with ``"degraded": true`` when a
partial answer exists (e.g. a trajectory with a dead shard's windows
``null``-ed out and listed in ``missing_windows``).  ``POST /batch``
always returns ``200`` with per-query result dicts carrying the same
flags.

The HTTP/1.1 handling is deliberately minimal (request line, headers,
``Content-Length`` bodies, one request per connection) — enough for the
CLI, the traffic generator, and ``curl``, with zero dependencies.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.service.cluster.coordinator import ShardCluster
from repro.service.server import _GET_ROUTES

__all__ = ["ClusterFrontend"]

logger = logging.getLogger(__name__)

_MAX_BODY = 8 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ClusterFrontend:
    """Async HTTP frontend over one :class:`ShardCluster`.

    All mutable state (the in-flight counter, shed counter) is touched
    only from the event-loop thread, so no locks are needed here; the
    cluster's own locks cover the cross-thread parts.
    """

    def __init__(
        self,
        cluster: ShardCluster,
        host: str = "127.0.0.1",
        port: int = 8321,
        max_inflight: int = 256,
        request_timeout: float = 30.0,
        own_cluster: bool = False,
        verbose: bool = False,
    ) -> None:
        if max_inflight <= 0:
            raise ValidationError(
                f"max_inflight must be > 0, got {max_inflight}"
            )
        self.cluster = cluster
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.own_cluster = own_cluster
        self.verbose = verbose
        self.requests_served = 0
        self.requests_shed = 0
        self._inflight = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — valid after :meth:`start`."""
        if self._server is None:
            raise ValidationError("frontend is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ClusterFrontend":
        """Run the event loop + acceptor on a background thread."""
        self._thread = threading.Thread(
            target=self._run_loop, name="cluster-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ValidationError(
                f"frontend failed to bind {self.host}:{self.port}: "
                f"{self._startup_error}"
            )
        if self._server is None:
            raise ValidationError("frontend failed to start (timeout)")
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(
                        self._handle_connection, self.host, self.port
                    )
                )
            except OSError as exc:
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            # drain callbacks scheduled by shutdown, then free the loop
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (the CLI foreground path)."""
        if self._thread is None:
            self.start()
        self._thread.join()

    def shutdown(self) -> None:
        """Stop accepting, wind down the loop, optionally the cluster."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and self._server is not None:
            def _stop() -> None:
                self._server.close()
                loop.stop()

            loop.call_soon_threadsafe(_stop)
        elif loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self.own_cluster:
            self.cluster.shutdown()

    def __enter__(self) -> "ClusterFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
            body = json.dumps(payload).encode()
            text = _STATUS_TEXT.get(status, "Error")
            head = (
                f"HTTP/1.1 {status} {text}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError) as exc:
            logger.debug("client went away mid-response: %s", exc)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError) as exc:
                logger.debug("close raced client reset: %s", exc)

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            return 400, {"error": "timed out reading request"}
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            return 413, {"error": f"body larger than {_MAX_BODY} bytes"}
        if length:
            body = await reader.readexactly(length)
        return await self._route(method, target, body)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Dict]:
        path, _, raw_query = target.partition("?")
        if method == "GET":
            if path == "/health":
                return 200, {"status": "ok"}
            if path == "/healthz":
                return 200, await self._snapshot(self._healthz)
            if path == "/store":
                return 200, await self._snapshot(self.cluster.info)
            if path == "/cluster":
                return 200, await self._snapshot(self.cluster.status)
            if path == "/stats":
                return 200, await self._snapshot(self.stats)
            route = _GET_ROUTES.get(path)
            if route is None:
                return 404, {"error": f"unknown endpoint {path}"}
            op, params = route
            query: Dict[str, object] = {"op": op}
            try:
                for pair in raw_query.split("&"):
                    if not pair:
                        continue
                    key, _, value = pair.partition("=")
                    if key in params:
                        query[params[key]] = int(value)
            except ValueError as exc:
                return 400, {"error": f"bad query parameter: {exc}"}
            return await self._dispatch([query], single=True)
        if method == "POST":
            if path != "/batch":
                return 404, {"error": f"unknown endpoint {path}"}
            try:
                queries = json.loads(body.decode())
            except (ValueError, json.JSONDecodeError) as exc:
                return 400, {"error": f"bad request body: {exc}"}
            if not isinstance(queries, list):
                return 400, {"error": "/batch expects a JSON list"}
            return await self._dispatch(queries, single=False)
        return 404, {"error": f"unsupported method {method}"}

    async def _dispatch(
        self, queries, single: bool
    ) -> Tuple[int, Dict]:
        # global admission control: reject instead of queueing — the
        # per-shard bounded queues bound worker latency, this cap bounds
        # the frontend's own thread pool and memory
        if self._inflight >= self.max_inflight:
            self.requests_shed += 1
            return 429, {
                "error": (
                    f"frontend at capacity ({self.max_inflight} requests "
                    "in flight); request shed"
                ),
                "shed": True,
            }
        self._inflight += 1
        try:
            loop = asyncio.get_running_loop()
            results = await loop.run_in_executor(
                None, self.cluster.batch, list(queries)
            )
        except Exception as exc:  # noqa: BLE001 - request boundary
            return 500, {"error": str(exc)}
        finally:
            self._inflight -= 1
            self.requests_served += 1
        if not single:
            return 200, {"results": results}
        (result,) = results
        if result.get("ok"):
            return 200, result
        if result.get("shed"):
            return 429, result
        if result.get("degraded"):
            return 503, result
        return 400, result

    async def _snapshot(self, fn):
        """Run a synchronous cluster snapshot off the event loop.

        ``degraded()``/``status()``/``stats()``/``info()`` all take
        ranked cluster locks (replica in-flight counts, counter
        totals); waiting on one of those locks on the loop thread would
        stall every concurrent request — including the health probe
        meant to notice the stall.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn)

    def _healthz(self) -> Dict[str, object]:
        degraded = self.cluster.degraded()
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "in_flight": self._inflight,
            "shards_alive": sum(
                1
                for s in self.cluster.shard_map.shards
                if self.cluster.shard_alive(s.shard_id)
            ),
            "shards": self.cluster.shard_map.n_shards,
        }

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        payload = dict(self.cluster.stats())
        payload["frontend"] = {
            "requests_served": self.requests_served,
            "requests_shed": self.requests_shed,
            "in_flight": self._inflight,
            "max_inflight": self.max_inflight,
        }
        return payload
