"""The shard map: which window range lives on which shard.

Kairos-style time-indexed placement applied to *rank stores* instead of
input events: the unit of data placement is a contiguous window range of
one ``.rankstore``.  Contiguity matters twice — range queries
(``trajectory``) touch the minimum number of shards, and each shard's
rows pack into one dense shared-memory block with no index translation
beyond an offset.

The map is a pure value object (picklable, no file handles): the
coordinator builds one from a store, ships the per-shard specs to worker
processes, and the frontend routes against it without touching disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["ShardSpec", "ShardMap"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the global window axis: ``[lo, hi)``."""

    shard_id: int
    window_lo: int
    window_hi: int

    @property
    def n_windows(self) -> int:
        return self.window_hi - self.window_lo

    def contains(self, window: int) -> bool:
        return self.window_lo <= window < self.window_hi

    def to_local(self, window: int) -> int:
        """Translate a global window index into this shard's row space."""
        if not self.contains(window):
            raise ValidationError(
                f"window {window} outside shard {self.shard_id} range "
                f"[{self.window_lo}, {self.window_hi})"
            )
        return window - self.window_lo


@dataclass(frozen=True)
class ShardMap:
    """Contiguous window-range partition of one store across shards."""

    n_windows: int
    shards: Tuple[ShardSpec, ...]

    @classmethod
    def build(cls, n_windows: int, n_shards: int) -> "ShardMap":
        """Split ``[0, n_windows)`` into ``n_shards`` near-equal ranges.

        Uses ``np.array_split`` semantics: the first ``n_windows %
        n_shards`` shards get one extra window, every shard is non-empty.
        """
        if n_windows <= 0:
            raise ValidationError(f"n_windows must be > 0, got {n_windows}")
        if n_shards <= 0:
            raise ValidationError(f"n_shards must be > 0, got {n_shards}")
        if n_shards > n_windows:
            raise ValidationError(
                f"cannot split {n_windows} windows into {n_shards} shards; "
                "each shard needs at least one window"
            )
        bounds = np.linspace(0, n_windows, n_shards + 1).astype(np.int64)
        shards = tuple(
            ShardSpec(i, int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_shards)
        )
        return cls(n_windows=n_windows, shards=shards)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, window: int) -> ShardSpec:
        """The shard holding one global window index."""
        w = int(window)
        if not (0 <= w < self.n_windows):
            raise ValidationError(
                f"window index {w} out of range [0, {self.n_windows})"
            )
        # ranges are contiguous from 0, so a bisect over the upper bounds
        # lands on the owner directly
        for spec in self.shards:
            if w < spec.window_hi:
                return spec
        raise ValidationError(  # pragma: no cover - unreachable by invariant
            f"window {w} matched no shard"
        )

    def shards_in_range(
        self, start: int, stop: int
    ) -> List[Tuple[ShardSpec, int, int]]:
        """Shards overlapping ``[start, stop)`` with the global sub-range
        each one owns, in window order."""
        if not (0 <= start < stop <= self.n_windows):
            raise ValidationError(
                f"window range [{start}, {stop}) invalid for "
                f"{self.n_windows} windows"
            )
        out: List[Tuple[ShardSpec, int, int]] = []
        for spec in self.shards:
            lo = max(start, spec.window_lo)
            hi = min(stop, spec.window_hi)
            if lo < hi:
                out.append((spec, lo, hi))
        return out

    def describe(self) -> List[dict]:
        """JSON-able topology summary for ``/cluster``."""
        return [
            {
                "shard": s.shard_id,
                "window_lo": s.window_lo,
                "window_hi": s.window_hi,
                "windows": s.n_windows,
            }
            for s in self.shards
        ]
