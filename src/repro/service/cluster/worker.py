"""The shard worker process: one window range served out of shared memory.

A worker owns no rank data.  The coordinator packs each shard's rows of
the rank matrix into a POSIX shared-memory arena
(:mod:`repro.parallel.shared_arena`); the worker *attaches* and builds a
:class:`ShardStore` — a rank-store stand-in whose ``matrix`` is a
zero-copy view of those shared pages — so R replicas of a shard share one
physical copy of the rows instead of R heap copies.  On top of the store
sits the exact same single-process serving stack as ``QueryServer``:
a :class:`~repro.service.engine.QueryEngine` (LRU slice/top-k caches)
fed by a :class:`~repro.service.server.BatchingExecutor` (micro-batching
across concurrent requests).

Transport is a ``multiprocessing`` duplex pipe.  Requests arrive as
``(req_id, kind, payload)`` tuples with *local* window indices (the
coordinator translates global indices before sending); replies go back
as ``(req_id, ok, result)``.  Replies may be sent from any executor
thread, so the connection is written under a send lock.  A ``None``
message is the shutdown sentinel: the worker drains, closes, and exits.

Pipe EOF alone cannot signal abrupt coordinator death: under the fork
start method each worker inherits the parent-side pipe fds of every
sibling spawned before it, so those fds outlive the parent and the pipe
never closes.  The recv loop therefore polls with a timeout and watches
``os.getppid()`` — an orphaned worker (parent gone, reparented to init)
exits within a second instead of lingering.

Kinds::

    batch   payload = list of query dicts  -> list of result dicts
    slice   payload = local window index   -> that window's rank vector
                                              (the cross-shard movers path)
    ping    payload = None                 -> executor + cache stats
                                              (the health-check probe)
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, Optional

import numpy as np

from repro.errors import ValidationError
from repro.parallel.shared_arena import ArenaHandle, attach_arena
from repro.service.cluster.shard_map import ShardSpec
from repro.service.engine import QueryEngine
from repro.service.server import BatchingExecutor

__all__ = ["ShardStore", "shard_worker_main"]

logger = logging.getLogger(__name__)


class ShardStore:
    """A rank-store stand-in over one shard's shared-memory rows.

    Exposes exactly the read surface :class:`QueryEngine` consumes:
    ``matrix`` / ``n_windows`` / ``n_vertices`` / ``check_window`` /
    ``check_vertex`` / ``windows_at`` / ``info`` / ``close``.  Window
    indices are *local* (row 0 is global window ``spec.window_lo``); the
    coordinator owns the translation.
    """

    def __init__(self, handle: ArenaHandle, prefix: str,
                 spec: ShardSpec) -> None:
        self.spec = spec
        self._view = attach_arena(handle)
        self.matrix = self._view.shared_view(prefix + "matrix")
        if self.matrix.ndim != 2:
            raise ValidationError(
                f"shard {spec.shard_id}: expected a 2-D rank matrix, got "
                f"shape {self.matrix.shape}"
            )
        if self.matrix.shape[0] != spec.n_windows:
            raise ValidationError(
                f"shard {spec.shard_id}: arena holds "
                f"{self.matrix.shape[0]} rows, spec says {spec.n_windows}"
            )
        self.n_windows = int(self.matrix.shape[0])
        self.n_vertices = int(self.matrix.shape[1])
        self.dtype = self.matrix.dtype
        self.path = f"shard://{spec.shard_id}"

    # ------------------------------------------------------------------
    def check_window(self, index: int) -> int:
        index = int(index)
        if not (0 <= index < self.n_windows):
            raise ValidationError(
                f"window index {index} out of range [0, {self.n_windows}) "
                f"on shard {self.spec.shard_id}"
            )
        return index

    def check_vertex(self, vertex: int) -> int:
        vertex = int(vertex)
        if not (0 <= vertex < self.n_vertices):
            raise ValidationError(
                f"vertex {vertex} out of range [0, {self.n_vertices})"
            )
        return vertex

    def windows_at(self, timestamp: int) -> np.ndarray:
        raise ValidationError(
            "timestamp lookup is answered by the cluster frontend, not a "
            "shard"
        )

    def info(self) -> Dict[str, object]:
        return {
            "format": "shard (shared-memory)",
            "shard": self.spec.shard_id,
            "window_lo": self.spec.window_lo,
            "window_hi": self.spec.window_hi,
            "windows": self.n_windows,
            "vertices": self.n_vertices,
            "dtype": self.dtype.name,
        }

    def close(self) -> None:
        """Drop the matrix reference (the arena mapping belongs to the
        attach cache; the segment itself to the coordinator)."""
        self.matrix = None


def shard_worker_main(
    shard_id: int,
    replica_id: int,
    handle: ArenaHandle,
    prefix: str,
    spec: ShardSpec,
    conn,
    engine_workers: int = 2,
    max_batch: int = 64,
    slice_cache_size: int = 64,
    topk_cache_size: int = 256,
) -> None:
    """Entry point of one replica process: serve the pipe until told not to.

    Every reply path (executor callback threads, the recv loop itself)
    funnels through one send lock so pipe writes never interleave.
    """
    store: Optional[ShardStore] = None
    executor: Optional[BatchingExecutor] = None
    engine: Optional[QueryEngine] = None
    send_lock = threading.Lock()

    def reply(req_id: int, ok: bool, result) -> None:
        with send_lock:
            try:
                conn.send((req_id, ok, result))
            except (BrokenPipeError, OSError) as exc:
                # the parent went away; nothing to answer to anymore
                logger.warning(
                    "shard %d/%d reply failed: %s", shard_id, replica_id, exc
                )

    try:
        store = ShardStore(handle, prefix, spec)
        engine = QueryEngine(
            store,
            slice_cache_size=slice_cache_size,
            topk_cache_size=topk_cache_size,
        )
        executor = BatchingExecutor(
            engine, workers=engine_workers, max_batch=max_batch
        )
        parent_pid = os.getppid()
        while True:
            try:
                if not conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        logger.warning(
                            "shard %d/%d orphaned (coordinator %d gone), "
                            "exiting", shard_id, replica_id, parent_pid,
                        )
                        break
                    continue
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            req_id, kind, payload = msg
            if kind == "batch":
                future = executor.submit(payload)

                def _done(f, rid=req_id):
                    exc = f.exception()
                    if exc is not None:
                        reply(rid, False, str(exc))
                    else:
                        reply(rid, True, f.result())

                future.add_done_callback(_done)
            elif kind == "slice":
                try:
                    values = engine.window_slice(int(payload))
                except ValidationError as exc:
                    reply(req_id, False, str(exc))
                else:
                    reply(req_id, True, values)
            elif kind == "ping":
                stats = dict(engine.stats())
                stats["batching"] = executor.stats()
                stats["shard"] = shard_id
                stats["replica"] = replica_id
                reply(req_id, True, stats)
            else:
                reply(req_id, False, f"unknown request kind {kind!r}")
    finally:
        if executor is not None:
            executor.stop(timeout=2.0)
        if engine is not None:
            engine.close()
        elif store is not None:
            store.close()
        try:
            conn.close()
        except OSError as exc:  # pragma: no cover - teardown race
            logger.debug("shard %d/%d conn close: %s",
                         shard_id, replica_id, exc)
