"""The sharded serving federation: one store, many processes, one API.

A single :class:`~repro.service.server.QueryServer` is bounded by one
process's GIL and one mmap.  This package federates the same query
surface across shard worker processes:

* :mod:`~repro.service.cluster.shard_map` — contiguous window-range
  partition of the store (the routing table);
* :mod:`~repro.service.cluster.worker` — the replica process: a
  :class:`QueryEngine` + :class:`BatchingExecutor` stack over a
  shared-memory :class:`ShardStore` (zero-copy rows, R replicas share
  one physical copy);
* :mod:`~repro.service.cluster.coordinator` —
  :class:`~repro.service.cluster.coordinator.ShardCluster`: arena
  publication, routing/scatter-gather, bounded per-shard admission
  queues (load-shedding), health checks and the degraded path;
* :mod:`~repro.service.cluster.frontend` —
  :class:`~repro.service.cluster.frontend.ClusterFrontend`: the asyncio
  HTTP front door with global admission control;
* :mod:`~repro.service.cluster.traffic` — zipfian load generation and
  the p50/p99 measurement harness the SLO gate runs on.
"""

from repro.service.cluster.coordinator import ReplicaProxy, ShardCluster
from repro.service.cluster.frontend import ClusterFrontend
from repro.service.cluster.shard_map import ShardMap, ShardSpec
from repro.service.cluster.traffic import (
    DEFAULT_MIX,
    LoadReport,
    generate_queries,
    query_to_url,
    run_load,
    send_query,
)
from repro.service.cluster.worker import ShardStore, shard_worker_main

__all__ = [
    "ClusterFrontend",
    "DEFAULT_MIX",
    "LoadReport",
    "ReplicaProxy",
    "ShardCluster",
    "ShardMap",
    "ShardSpec",
    "ShardStore",
    "generate_queries",
    "query_to_url",
    "run_load",
    "send_query",
    "shard_worker_main",
]
