"""Synthetic serving traffic: zipfian popularity, SLO-grade measurement.

Real rank-serving load is heavily skewed — a few vertices (the current
"leaders") and a few windows (the recent ones) absorb most queries.  The
generator models that with bounded zipfian draws: vertex ``v`` is chosen
with probability proportional to ``1/(v+1)**s`` under a seeded
permutation (so popularity is not correlated with vertex id), and hot
windows follow the same law.  The skew is what exercises the serving
tier's caches: a zipfian top-k stream hits the per-shard top-k cache on
the hot windows while the tail forces slice decodes.

:func:`run_load` is the measurement half: a thread pool drives an HTTP
frontend (single-process ``QueryServer`` or the cluster's
``ClusterFrontend`` — same endpoints) at a given concurrency and reports
per-op p50/p99 latency, throughput, and the shed/degraded/error counts
that the SLO gate in ``benchmarks/check_regression.py`` asserts on.

Everything is seeded and deterministic given (seed, store dimensions,
mix); the load *timings* of course are not, which is why the committed
benchmark gates only on machine-independent ratios and flags.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "DEFAULT_MIX",
    "LoadReport",
    "generate_queries",
    "query_to_url",
    "run_load",
    "send_query",
]

#: default op mix: leaderboard-dominated with a tail of point lookups,
#: range scans and churn queries
DEFAULT_MIX: Dict[str, float] = {
    "top_k": 0.6,
    "rank": 0.2,
    "trajectory": 0.1,
    "movers": 0.1,
}


def _zipf_chooser(
    rng: np.random.Generator, n: int, s: float
) -> Tuple[np.ndarray, np.ndarray]:
    """A bounded-zipf sampler's ingredients: probabilities over a seeded
    permutation of ``[0, n)``."""
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    return weights / weights.sum(), rng.permutation(n)


def generate_queries(
    n_queries: int,
    n_windows: int,
    n_vertices: int,
    mix: Optional[Dict[str, float]] = None,
    zipf_s: float = 1.1,
    k: int = 10,
    max_trajectory_span: int = 32,
    seed: int = 0,
) -> List[Dict]:
    """``n_queries`` query dicts with zipfian vertex/window popularity.

    The result feeds either ``QueryEngine.batch`` / ``POST /batch``
    directly, or :func:`query_to_url` for per-request GET load.
    """
    if n_queries <= 0:
        raise ValidationError(f"n_queries must be > 0, got {n_queries}")
    if n_windows <= 0 or n_vertices <= 0:
        raise ValidationError(
            "generate_queries needs n_windows > 0 and n_vertices > 0"
        )
    mix = dict(DEFAULT_MIX if mix is None else mix)
    total = sum(mix.values())
    if total <= 0:
        raise ValidationError("traffic mix weights must sum to > 0")
    unknown = set(mix) - set(DEFAULT_MIX)
    if unknown:
        raise ValidationError(f"unknown ops in traffic mix: {unknown}")
    rng = np.random.default_rng(seed)
    ops = list(mix.keys())
    op_p = np.array([mix[o] for o in ops], dtype=np.float64) / total
    v_p, v_perm = _zipf_chooser(rng, n_vertices, zipf_s)
    w_p, w_perm = _zipf_chooser(rng, n_windows, zipf_s)

    chosen_ops = rng.choice(len(ops), size=n_queries, p=op_p)
    vertices = v_perm[rng.choice(n_vertices, size=n_queries, p=v_p)]
    windows = w_perm[rng.choice(n_windows, size=n_queries, p=w_p)]
    extra = w_perm[rng.choice(n_windows, size=n_queries, p=w_p)]
    spans = rng.integers(1, max(2, max_trajectory_span + 1),
                         size=n_queries)

    queries: List[Dict] = []
    for i in range(n_queries):
        op = ops[int(chosen_ops[i])]
        w = int(windows[i])
        if op == "top_k":
            queries.append({"op": "top_k", "window": w, "k": k})
        elif op == "rank":
            queries.append(
                {"op": "rank", "vertex": int(vertices[i]), "window": w}
            )
        elif op == "trajectory":
            start = w
            stop = min(n_windows, start + int(spans[i]))
            queries.append(
                {
                    "op": "trajectory",
                    "vertex": int(vertices[i]),
                    "start": start,
                    "stop": stop,
                }
            )
        else:  # movers
            queries.append(
                {"op": "movers", "from": w, "to": int(extra[i]), "k": k}
            )
    return queries


def query_to_url(base_url: str, query: Dict) -> str:
    """The GET endpoint equivalent of one query dict."""
    op = query["op"]
    base = base_url.rstrip("/")
    if op == "top_k":
        return f"{base}/top_k?window={query['window']}&k={query['k']}"
    if op == "rank":
        return (
            f"{base}/rank?vertex={query['vertex']}"
            f"&window={query['window']}"
        )
    if op == "trajectory":
        return (
            f"{base}/trajectory?vertex={query['vertex']}"
            f"&start={query['start']}&stop={query['stop']}"
        )
    if op == "movers":
        return (
            f"{base}/movers?from={query['from']}&to={query['to']}"
            f"&k={query['k']}"
        )
    if op == "windows_at":
        return f"{base}/windows_at?t={query['t']}"
    raise ValidationError(f"unknown query op: {op!r}")


def send_query(
    base_url: str, query: Dict, timeout: float = 10.0
) -> Tuple[int, Dict]:
    """Send one query as a GET; returns (status, decoded payload)."""
    url = query_to_url(base_url, query)
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode())
        except (ValueError, json.JSONDecodeError):
            payload = {"error": str(exc)}
        return exc.code, payload


@dataclass
class LoadReport:
    """What a load run measured — the SLO material."""

    total: int = 0
    ok: int = 0
    shed: int = 0
    degraded: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    concurrency: int = 0
    #: op -> sorted latency list (seconds)
    latencies: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds else 0.0

    def percentile(self, op: str, q: float) -> Optional[float]:
        lat = self.latencies.get(op)
        if not lat:
            return None
        return float(np.percentile(np.asarray(lat), q))

    def as_dict(self) -> Dict[str, object]:
        ops = {}
        for op, lat in sorted(self.latencies.items()):
            arr = np.asarray(lat)
            ops[op] = {
                "count": int(arr.size),
                "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
                "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
                "mean_ms": round(float(arr.mean()) * 1e3, 3),
            }
        return {
            "total": self.total,
            "ok": self.ok,
            "shed": self.shed,
            "degraded": self.degraded,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 4),
            "qps": round(self.qps, 1),
            "concurrency": self.concurrency,
            "ops": ops,
        }


def run_load(
    base_url: str,
    queries: Sequence[Dict],
    concurrency: int = 8,
    timeout: float = 10.0,
) -> LoadReport:
    """Drive ``queries`` against a frontend from a thread pool.

    Each worker thread owns a private slice of the query stream and a
    private latency record (merged after join — no locks on the hot
    path).  Shed (``429``) and degraded (``503`` or a ``degraded`` flag)
    responses are counted, not retried: the harness measures what the
    tier does under pressure, it does not hide it.
    """
    if concurrency <= 0:
        raise ValidationError(
            f"concurrency must be > 0, got {concurrency}"
        )
    shards: List[List[Dict]] = [[] for _ in range(concurrency)]
    for i, q in enumerate(queries):
        shards[i % concurrency].append(q)
    records: List[List[Tuple[str, int, bool, float]]] = [
        [] for _ in range(concurrency)
    ]

    def worker(slot: int) -> None:
        local = records[slot]
        for query in shards[slot]:
            t0 = time.perf_counter()
            try:
                status, payload = send_query(
                    base_url, query, timeout=timeout
                )
            except (urllib.error.URLError, OSError, ValueError,
                    json.JSONDecodeError):
                local.append((query["op"], -1, False, 0.0))
                continue
            elapsed = time.perf_counter() - t0
            degraded = bool(
                isinstance(payload, dict) and payload.get("degraded")
            )
            local.append((query["op"], status, degraded, elapsed))

    threads = [
        threading.Thread(
            target=worker, args=(i,), name=f"traffic-{i}", daemon=True
        )
        for i in range(concurrency)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    report = LoadReport(concurrency=concurrency, wall_seconds=wall)
    for local in records:
        for op, status, degraded, elapsed in local:
            report.total += 1
            if status == 200:
                report.ok += 1
                report.latencies.setdefault(op, []).append(elapsed)
            elif status == 429:
                report.shed += 1
            elif status == 503:
                report.degraded += 1
            else:
                report.errors += 1
            if degraded and status == 200:
                report.degraded += 1
    for lat in report.latencies.values():
        lat.sort()
    return report
