"""The on-disk rank store: one postmortem run as a servable artifact.

Layout of a ``.rankstore`` file::

    offset 0    preamble (64 bytes, little-endian):
                  magic "RANKSTR1", version u32, flags u32,
                  n_windows u64, n_vertices u64,
                  matrix_offset u64, index_offset u64, index_len u64
    offset 64   the rank matrix: float32, C-order, (n_windows, n_vertices)
    after it    the JSON index: per-window metadata columns
                (iterations, converged, residual, active counts), optional
                window intervals (t_start/t_end), model name, run metadata

The matrix sits at a fixed offset so readers ``np.memmap`` it directly —
opening a store costs one page of I/O regardless of how many windows it
holds — and so the writer can stream rows to their final location *before*
the variable-length index exists.  :class:`RankStoreWriter` therefore works
as a sink for the postmortem driver: each window's global vector is written
(seek + write, out of order allowed, thread-safe) the moment it is solved,
keeping peak memory at one row rather than the full matrix.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import ValidationError
from repro.sanitize import (
    LOCK_RANK_STORE_WRITER,
    freeze_boundary,
    make_lock,
)
from repro.events.windows import WindowSpec
from repro.models.base import RunResult, WindowResult
from repro.models.results_io import WINDOW_FIELDS, jsonable_metadata

__all__ = [
    "MAGIC",
    "RankStore",
    "RankStoreWriter",
    "intervals_containing",
    "write_store",
]

PathLike = Union[str, os.PathLike]

MAGIC = b"RANKSTR1"
VERSION = 1
#: preamble struct: magic, version, dtype code, n_windows, n_vertices,
#: matrix_offset, index_offset, index_len (+ padding to 64 bytes)
_PREAMBLE = struct.Struct("<8sII5Q")
PREAMBLE_SIZE = 64

#: dtype code carried in the preamble — float32 (the serving default:
#: half the bytes, plenty for ranking) or float64 (bitwise-exact archival
#: of the solver's vectors)
_DTYPES = {0: np.dtype("<f4"), 1: np.dtype("<f8")}
_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}

#: per-window metadata columns carried in the JSON index (the same fields
#: the ``.npz`` run archives store, minus window_index which is implicit)
INDEX_FIELDS = [f for f in WINDOW_FIELDS if f != "window_index"]


def intervals_containing(
    t_start: np.ndarray, t_end: np.ndarray, timestamp: int
) -> np.ndarray:
    """Indices of every window interval containing ``timestamp``.

    Window starts are non-decreasing, so both bounds come from
    ``searchsorted``.  Shared by :meth:`RankStore.windows_at` and the
    cluster coordinator (which answers timestamp lookups from its
    retained interval columns without a shard round-trip).
    """
    t = int(timestamp)
    hi = int(np.searchsorted(t_start, t, side="right"))
    lo = int(np.searchsorted(t_end, t, side="left"))
    if lo >= hi:
        return np.empty(0, dtype=np.int64)
    return np.arange(lo, hi, dtype=np.int64)


def _pack_preamble(n_windows: int, n_vertices: int, dtype_code: int,
                   index_offset: int, index_len: int) -> bytes:
    head = _PREAMBLE.pack(
        MAGIC, VERSION, dtype_code, n_windows, n_vertices,
        PREAMBLE_SIZE, index_offset, index_len,
    )
    return head + b"\0" * (PREAMBLE_SIZE - len(head))


class RankStoreWriter:
    """Streams per-window rank vectors into a ``.rankstore`` file.

    Rows may arrive in any order (the postmortem driver solves multi-window
    graphs concurrently) and from multiple threads; the file is valid only
    after :meth:`close`, which requires every window to have been written.

    Use as a context manager, or pass :meth:`write_window` to
    ``PostmortemDriver.run(value_sink=...)`` to persist a run without ever
    holding all vectors in memory.
    """

    def __init__(
        self,
        path: PathLike,
        n_windows: int,
        n_vertices: int,
        *,
        model: str = "postmortem",
        program: str = "pagerank",
        spec: Optional[WindowSpec] = None,
        metadata: Optional[Dict[str, object]] = None,
        dtype: Union[str, np.dtype] = np.float32,
    ) -> None:
        if n_windows <= 0 or n_vertices <= 0:
            raise ValidationError(
                "rank store needs n_windows > 0 and n_vertices > 0"
            )
        if np.dtype(dtype) not in _DTYPE_CODES:
            raise ValidationError(
                f"rank store dtype must be float32 or float64, got {dtype}"
            )
        if spec is not None and spec.n_windows != n_windows:
            raise ValidationError(
                f"spec has {spec.n_windows} windows, store expects "
                f"{n_windows}"
            )
        self.path = os.fspath(path)
        self.n_windows = n_windows
        self.n_vertices = n_vertices
        self.model = model
        #: which vertex program produced the vectors (pagerank / katz /
        #: kcore ...) — recorded so the serving layer knows what it serves
        self.program = program
        self.metadata = dict(metadata or {})
        self._t_start = (
            [int(t) for t in spec.starts()] if spec is not None else None
        )
        self._t_end = (
            [int(t) for t in spec.ends()] if spec is not None else None
        )
        self._columns: Dict[str, Dict[int, object]] = {
            f: {} for f in INDEX_FIELDS
        }
        self._written = np.zeros(n_windows, dtype=bool)
        self.dtype = _DTYPES[_DTYPE_CODES[np.dtype(dtype)]]  # little-endian
        self._dtype_code = _DTYPE_CODES[np.dtype(dtype)]
        self._row_bytes = n_vertices * self.dtype.itemsize
        self._lock = make_lock("rankstore-writer", LOCK_RANK_STORE_WRITER)
        self._file = open(self.path, "wb")
        # placeholder preamble; rewritten with the index location on close
        self._file.write(
            _pack_preamble(n_windows, n_vertices, self._dtype_code, 0, 0)
        )
        self._closed = False

    # ------------------------------------------------------------------
    def write_window(
        self,
        window_index: int,
        values: np.ndarray,
        meta: Optional[WindowResult] = None,
    ) -> None:
        """Write one window's global rank vector (and its summary row).

        Matches the driver's ``value_sink`` callback signature.
        """
        if not (0 <= window_index < self.n_windows):
            raise ValidationError(
                f"window index {window_index} out of range "
                f"[0, {self.n_windows})"
            )
        row = np.ascontiguousarray(values, dtype=self.dtype)
        if row.shape != (self.n_vertices,):
            raise ValidationError(
                f"window {window_index}: expected shape "
                f"({self.n_vertices},), got {np.shape(values)}"
            )
        with self._lock:
            if self._closed:
                raise ValidationError("rank store writer is closed")
            self._file.seek(PREAMBLE_SIZE + window_index * self._row_bytes)
            self._file.write(row.tobytes())
            self._written[window_index] = True
            if meta is not None:
                for f in INDEX_FIELDS:
                    self._columns[f][window_index] = getattr(meta, f)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Write the JSON index and finalize the preamble.

        The whole transition (completeness check, index write, the
        ``_closed`` flip) happens under the writer lock so it cannot race
        a concurrent :meth:`write_window` from a driver worker — the
        lint suite's ``lock-discipline`` rule exists because an earlier
        revision flipped ``_closed`` outside the lock on two paths.
        """
        with self._lock:
            if self._closed:
                return
            missing = np.flatnonzero(~self._written)
            if missing.size:
                self._file.close()
                self._closed = True
                raise ValidationError(
                    f"rank store incomplete: {missing.size} windows never "
                    f"written (first missing: {int(missing[0])})"
                )
            index = {
                "model": self.model,
                "program": self.program,
                "metadata": jsonable_metadata(self.metadata),
                "t_start": self._t_start,
                "t_end": self._t_end,
                "columns": {
                    f: [col.get(i) for i in range(self.n_windows)]
                    for f, col in self._columns.items()
                },
            }
            payload = json.dumps(index).encode()
            index_offset = PREAMBLE_SIZE + self.n_windows * self._row_bytes
            self._file.seek(index_offset)
            self._file.write(payload)
            self._file.seek(0)
            self._file.write(
                _pack_preamble(
                    self.n_windows, self.n_vertices, self._dtype_code,
                    index_offset, len(payload),
                )
            )
            self._file.close()
            self._closed = True

    def abort(self) -> None:
        """Close the file handle without finalizing (partial file remains)."""
        with self._lock:
            if not self._closed:
                self._file.close()
                self._closed = True

    def __enter__(self) -> "RankStoreWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_store(
    run: RunResult,
    path: PathLike,
    spec: Optional[WindowSpec] = None,
    dtype: Union[str, np.dtype] = np.float32,
) -> None:
    """Serialize a finished run (with stored vectors) to a rank store.

    ``dtype=np.float64`` preserves the solver's vectors bitwise; the
    float32 default halves the serving footprint.
    """
    if not run.windows:
        raise ValidationError("cannot write a rank store from an empty run")
    if any(w.values is None for w in run.windows):
        raise ValidationError(
            "cannot write a rank store from a run executed with "
            "store_values=False; use RankStoreWriter as a value_sink instead"
        )
    n_vertices = run.windows[0].values.shape[0]
    with RankStoreWriter(
        path,
        n_windows=len(run.windows),
        n_vertices=n_vertices,
        model=run.model,
        program=str(run.metadata.get("program", "pagerank")),
        spec=spec,
        metadata=run.metadata,
        dtype=dtype,
    ) as writer:
        for w in run.windows:
            writer.write_window(w.window_index, w.values, meta=w)


class RankStore:
    """Read side: the memory-mapped matrix plus the decoded index.

    ``store.matrix`` is an ``np.memmap`` — row reads touch only that row's
    pages, so a store holding thousands of windows opens in O(1).
    """

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as f:
            head = f.read(PREAMBLE_SIZE)
            if len(head) < PREAMBLE_SIZE:
                raise ValidationError(f"{self.path}: not a rank store "
                                      "(file too short)")
            (magic, version, dtype_code, n_windows, n_vertices,
             matrix_offset, index_offset, index_len) = _PREAMBLE.unpack(
                head[: _PREAMBLE.size]
            )
            if magic != MAGIC:
                raise ValidationError(
                    f"{self.path}: not a rank store (bad magic)"
                )
            if version != VERSION:
                raise ValidationError(
                    f"{self.path}: unsupported rank store version {version}"
                )
            if dtype_code not in _DTYPES:
                raise ValidationError(
                    f"{self.path}: unknown rank store dtype code "
                    f"{dtype_code}"
                )
            if index_offset == 0:
                raise ValidationError(
                    f"{self.path}: rank store was never finalized "
                    "(writer not closed?)"
                )
            f.seek(index_offset)
            index = json.loads(f.read(index_len).decode())
        self.n_windows = int(n_windows)
        self.n_vertices = int(n_vertices)
        self._version = int(version)
        self._matrix_offset = int(matrix_offset)
        self._index_offset = int(index_offset)
        self._index_len = int(index_len)
        self.model: str = index.get("model", "unknown")
        # stores written before the vertex-program refactor held only
        # PageRank vectors, so that is the safe default
        self.program: str = index.get("program", "pagerank")
        self.metadata: Dict[str, object] = index.get("metadata", {})
        self.columns: Dict[str, List] = index.get("columns", {})
        t_start = index.get("t_start")
        t_end = index.get("t_end")
        self.t_start = (
            np.asarray(t_start, dtype=np.int64) if t_start is not None
            else None
        )
        self.t_end = (
            np.asarray(t_end, dtype=np.int64) if t_end is not None else None
        )
        self.dtype = _DTYPES[dtype_code]
        self.matrix = np.memmap(
            self.path,
            dtype=self.dtype,
            mode="r",
            offset=matrix_offset,
            shape=(self.n_windows, self.n_vertices),
        )

    # ------------------------------------------------------------------
    def check_window(self, index: int) -> int:
        index = int(index)
        if not (0 <= index < self.n_windows):
            raise ValidationError(
                f"window index {index} out of range [0, {self.n_windows})"
            )
        return index

    def check_vertex(self, vertex: int) -> int:
        vertex = int(vertex)
        if not (0 <= vertex < self.n_vertices):
            raise ValidationError(
                f"vertex {vertex} out of range [0, {self.n_vertices})"
            )
        return vertex

    def row(self, index: int) -> np.ndarray:
        """One window's vector as an mmap view (no copy).

        The view is the documented zero-copy fast path — it is invalid
        after :meth:`close` (callers that outlive the store must copy),
        and the memmap is opened read-only so the page cache stays clean.
        """
        # lint: disable=mmap-escape — deliberate zero-copy contract
        return freeze_boundary(self.matrix[self.check_window(index)])

    def window_meta(self, index: int) -> Dict[str, object]:
        """The per-window summary row carried in the index."""
        i = self.check_window(index)
        meta: Dict[str, object] = {"window_index": i}
        for f, col in self.columns.items():
            meta[f] = col[i]
        if self.t_start is not None:
            meta["t_start"] = int(self.t_start[i])
            meta["t_end"] = int(self.t_end[i])
        return meta

    def windows_at(self, timestamp: int) -> np.ndarray:
        """Indices of every window whose interval contains ``timestamp``.

        Requires the store to have been written with a :class:`WindowSpec`
        (interval columns present).  Window starts are non-decreasing, so
        both bounds come from ``searchsorted``.
        """
        if self.t_start is None or self.t_end is None:
            raise ValidationError(
                "store carries no window intervals; rewrite it passing a "
                "WindowSpec to enable timestamp lookup"
            )
        return intervals_containing(self.t_start, self.t_end, timestamp)

    def info(self) -> Dict[str, object]:
        """A flat summary for ``repro-temporal inspect``."""
        info: Dict[str, object] = {
            "format": f"rankstore v{VERSION}",
            "model": self.model,
            "program": self.program,
            "dtype": self.dtype.name,
            "windows": self.n_windows,
            "vertices": self.n_vertices,
            "matrix bytes": self.n_windows * self.n_vertices
            * self.dtype.itemsize,
            "file bytes": os.path.getsize(self.path),
        }
        if self.t_start is not None:
            info["time span"] = (
                f"[{int(self.t_start[0])}, {int(self.t_end[-1])}]"
            )
        iters = self.columns.get("iterations")
        if iters and all(v is not None for v in iters):
            info["total iterations"] = int(sum(iters))
        conv = self.columns.get("converged")
        if conv and all(v is not None for v in conv):
            info["all converged"] = bool(all(conv))
        return info

    def header_info(self) -> Dict[str, object]:
        """The raw on-disk preamble, decoded — the header-dump half of
        ``inspect``, shared in presentation with ``.tcsr`` artifacts."""
        return {
            "magic": MAGIC.decode(),
            "version": self._version,
            "preamble bytes": PREAMBLE_SIZE,
            "dtype": self.dtype.name,
            "n_windows": self.n_windows,
            "n_vertices": self.n_vertices,
            "matrix offset": self._matrix_offset,
            "index offset": self._index_offset,
            "index bytes": self._index_len,
        }

    def close(self) -> None:
        """Release the memory map.

        This force-closes the underlying mmap: any still-live views into
        ``matrix`` (e.g. from :meth:`row`) become invalid and must not be
        touched afterwards.  Callers that need data to outlive the store
        must copy (``np.array(store.row(i))``) before closing.
        """
        mm = getattr(self.matrix, "_mmap", None)
        self.matrix = None
        if mm is not None:
            mm.close()

    def __enter__(self) -> "RankStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RankStore({self.path!r}, windows={self.n_windows}, "
            f"vertices={self.n_vertices})"
        )


def is_rank_store(path: PathLike) -> bool:
    """Whether ``path`` starts with the rank-store magic."""
    try:
        with open(path, "rb") as f:
            return f.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
