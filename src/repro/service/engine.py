"""The query engine: serve rank queries from mmap slices of a store.

Every query touches at most a handful of matrix rows, decoded on demand
and cached:

* ``rank(vertex, window)`` — one element read;
* ``top_k(window, k)`` — ``argpartition`` over one cached slice, with the
  ranked list itself cached per ``(window, k)``;
* ``trajectory(vertex, lo, hi)`` — one strided column read across a window
  range (the mmap touches only the pages holding that column);
* ``movers(w_from, w_to, k)`` — largest |Δrank| between two windows, the
  churn query;
* ``windows_at(t)`` — timestamp → window indices via the store's interval
  index.

Vertices outside a window's active set hold rank 0 in the global vector
(the postmortem driver's ``to_global`` scatter), so ``rank`` returns 0.0
for them and ``top_k`` excludes exact zeros — an empty window yields an
empty leaderboard rather than ``k`` ties at zero.

``batch`` evaluates many queries grouped by window so each slice is
decoded once per batch — the primitive the server's request coalescing
builds on.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.sanitize import freeze_boundary
from repro.service.cache import LRUCache
from repro.service.store import RankStore

__all__ = ["QueryEngine", "compute_movers"]

PathOrStore = Union[str, RankStore]


def compute_movers(
    a: np.ndarray, b: np.ndarray, k: int
) -> List[Dict[str, float]]:
    """The k largest |Δrank| entries between two window vectors.

    Shared by :meth:`QueryEngine.movers` (both windows on one store) and
    the cluster coordinator's cross-shard gather (each vector fetched
    from a different shard) so both paths rank deltas identically.
    """
    delta = b - a
    magnitude = np.abs(delta)
    k = min(k, a.shape[0])
    idx = np.argpartition(magnitude, -k)[-k:]
    idx = idx[np.argsort(magnitude[idx], kind="stable")[::-1]]
    return [
        {
            "vertex": int(v),
            "delta": float(delta[v]),
            "rank_from": float(a[v]),
            "rank_to": float(b[v]),
        }
        for v in idx
        if magnitude[v] > 0.0
    ]


class QueryEngine:
    """Answers rank queries over one :class:`RankStore`.

    Any object exposing the rank-store read surface works as ``store``
    (the cluster's shard workers pass a shared-memory backed stand-in);
    a path opens a :class:`RankStore`.
    """

    def __init__(
        self,
        store: PathOrStore,
        slice_cache_size: int = 64,
        topk_cache_size: int = 256,
    ) -> None:
        self.store = (
            RankStore(store)
            if isinstance(store, (str, os.PathLike))
            else store
        )
        self.slice_cache = LRUCache(slice_cache_size, name="slice")
        self.topk_cache = LRUCache(topk_cache_size, name="topk")

    # ------------------------------------------------------------------
    # slice access
    # ------------------------------------------------------------------
    def window_slice(self, window: int) -> np.ndarray:
        """One window's full vector, copied out of the mmap and cached.

        The copy matters: a view into the memmap would keep pointing at
        mapped pages, and cached views would dangle (segfault on access)
        once :meth:`close` unmaps the store.  The cached copy is shared by
        every later caller, so in sanitizer mode it is frozen
        (``writeable=False``) — an in-place write to it raises instead of
        corrupting all subsequent reads of that window.
        """
        w = self.store.check_window(window)
        return self.slice_cache.get_or_compute(
            w,
            lambda: freeze_boundary(np.array(self.store.matrix[w],
                                             copy=True)),
        )

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def rank(self, vertex: int, window: int) -> float:
        """The vertex's rank in one window (0.0 when inactive there)."""
        v = self.store.check_vertex(vertex)
        return float(self.window_slice(window)[v])

    def top_k(self, window: int, k: int = 10) -> List[Tuple[int, float]]:
        """The k highest-ranked *active* vertices as (vertex, score) pairs."""
        if k <= 0:
            raise ValidationError(f"k must be > 0, got {k}")
        w = self.store.check_window(window)
        k = min(k, self.store.n_vertices)
        return self.topk_cache.get_or_compute(
            (w, k), lambda: self._compute_top_k(w, k)
        )

    def _compute_top_k(self, window: int, k: int) -> List[Tuple[int, float]]:
        values = self.window_slice(window)
        idx = np.argpartition(values, -k)[-k:]
        idx = idx[np.argsort(values[idx], kind="stable")[::-1]]
        return [
            (int(v), float(values[v])) for v in idx if values[v] > 0.0
        ]

    # ------------------------------------------------------------------
    # range queries
    # ------------------------------------------------------------------
    def trajectory(
        self,
        vertex: int,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        """The vertex's rank across windows ``[start, stop)``.

        Reads one float32 column straight off the mmap — windows whose
        slices were never decoded stay untouched beyond the pages holding
        the column.  The result is a materialized copy, never a view, so
        it stays valid after :meth:`close`.
        """
        v = self.store.check_vertex(vertex)
        stop = self.store.n_windows if stop is None else int(stop)
        start = self.store.check_window(start)
        if not (start < stop <= self.store.n_windows):
            raise ValidationError(
                f"trajectory range [{start}, {stop}) invalid for "
                f"{self.store.n_windows} windows"
            )
        return np.array(self.store.matrix[start:stop, v], copy=True)

    def movers(
        self, w_from: int, w_to: int, k: int = 10
    ) -> List[Dict[str, float]]:
        """The k vertices whose rank changed most between two windows.

        Sorted by |Δ| descending; each entry reports the signed delta and
        both endpoint ranks, so churn (entries/exits of the active set)
        shows up as deltas from/to 0.
        """
        if k <= 0:
            raise ValidationError(f"k must be > 0, got {k}")
        a = self.window_slice(w_from)
        b = self.window_slice(w_to)
        return compute_movers(a, b, k)

    def windows_at(self, timestamp: int) -> List[int]:
        """Indices of every window containing ``timestamp``."""
        return [int(w) for w in self.store.windows_at(timestamp)]

    # ------------------------------------------------------------------
    # batched evaluation
    # ------------------------------------------------------------------
    def batch(self, queries: Sequence[Dict]) -> List[Dict]:
        """Evaluate many queries, grouping same-window queries together.

        Each query is a dict with an ``"op"`` key (``top_k`` / ``rank`` /
        ``trajectory`` / ``movers`` / ``windows_at``) plus that op's
        parameters.  Results come back in request order as
        ``{"ok": True, "result": ...}`` or ``{"ok": False, "error": ...}``
        — one bad query does not fail the batch.

        Window-keyed queries are evaluated grouped by window so each slice
        is decoded (and its top-k materialized) once per batch even when
        the slice cache has already evicted it.
        """
        order = sorted(
            range(len(queries)),
            key=lambda i: self._group_key(queries[i]),
        )
        results: List[Optional[Dict]] = [None] * len(queries)
        for i in order:
            results[i] = self._eval(queries[i])
        return results

    @staticmethod
    def _group_key(query: Dict) -> Tuple:
        window = query.get("window", query.get("from", -1))
        try:
            return (int(window), str(query.get("op", "")))
        except (TypeError, ValueError):
            return (-1, str(query.get("op", "")))

    def _eval(self, query: Dict) -> Dict:
        try:
            op = query.get("op")
            if op == "top_k":
                result = self.top_k(
                    query["window"], int(query.get("k", 10))
                )
            elif op == "rank":
                result = self.rank(query["vertex"], query["window"])
            elif op == "trajectory":
                result = self.trajectory(
                    query["vertex"],
                    int(query.get("start", 0)),
                    query.get("stop"),
                ).tolist()
            elif op == "movers":
                result = self.movers(
                    query["from"], query["to"], int(query.get("k", 10))
                )
            elif op == "windows_at":
                result = self.windows_at(query["t"])
            else:
                raise ValidationError(f"unknown query op: {op!r}")
            return {"ok": True, "result": result}
        except (ValidationError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Cache observability counters for ``/stats``."""
        return {
            "slice_cache": self.slice_cache.stats.as_dict(),
            "topk_cache": self.topk_cache.stats.as_dict(),
        }

    def close(self) -> None:
        """Drop cached slices/top-k lists, then unmap the store.

        Caches hold materialized copies (never mmap views), so entries a
        caller already obtained stay valid; clearing first just keeps the
        unmap from racing a concurrent cache fill.
        """
        self.slice_cache.clear()
        self.topk_cache.clear()
        self.store.close()
