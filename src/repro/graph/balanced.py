"""Cost-balanced multi-window partitioning (paper Section 7, future work).

The paper partitions windows into multi-window graphs with *equal window
counts* and notes: "this may not be the decomposition that minimize memory
and work overheads".  This module implements that open question: split the
window sequence into Y contiguous runs that minimize the **maximum
per-graph work**, where a run's work is

    work(run) = (events covered by the run's time range) x (windows in run)

— each of a run's windows traverses that run's whole stored structure per
iteration, so the product is the structure-traversal volume the run
contributes (up to per-window iteration counts, unknown before solving).

Two algorithms:

* :func:`balanced_boundaries` — exact minimax contiguous partition via
  parametric search (binary search on the bottleneck + greedy
  feasibility), O(n log(total_work)); the classic linear-partitioning
  technique.
* :func:`greedy_boundaries` — one-pass greedy filling to the average
  target; cheaper, near-optimal on smooth distributions, used as a
  cross-check and a fallback.

:class:`BalancedMultiWindowPartition` plugs the boundaries into the same
:class:`~repro.graph.multiwindow.MultiWindowGraph` machinery, so every
driver and kernel works unchanged — the ablation bench
(``benchmarks/bench_ablation_partition.py``) quantifies the gain over the
paper's uniform split.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.events.windows import WindowSpec
from repro.graph.multiwindow import MultiWindowPartition

if TYPE_CHECKING:  # pragma: no cover
    from repro.events.event_set import TemporalEventSet

__all__ = [
    "window_event_counts",
    "run_work",
    "greedy_boundaries",
    "balanced_boundaries",
    "BalancedMultiWindowPartition",
]


def window_event_counts(events: "TemporalEventSet", spec: WindowSpec) -> np.ndarray:
    """Events inside each window's interval (vectorized searchsorted)."""
    starts = spec.starts()
    ends = spec.ends()
    lo = np.searchsorted(events.time, starts, side="left")
    hi = np.searchsorted(events.time, ends, side="right")
    return (hi - lo).astype(np.int64)


def _run_event_count(events: "TemporalEventSet", spec: WindowSpec,
                     w_start: int, w_end: int) -> int:
    """Events covered by the union time range of windows [w_start, w_end)."""
    t_lo = spec.t0 + w_start * spec.sw
    t_hi = spec.t0 + (w_end - 1) * spec.sw + spec.delta
    lo, hi = events.time_slice_indices(t_lo, t_hi)
    return hi - lo


def run_work(events: "TemporalEventSet", spec: WindowSpec,
             w_start: int, w_end: int) -> int:
    """The traversal-volume cost of assigning windows [w_start, w_end) to
    one multi-window graph."""
    n_windows = w_end - w_start
    return _run_event_count(events, spec, w_start, w_end) * n_windows


def _boundaries_from_splits(splits: List[int], n_windows: int) -> List[int]:
    return [0] + splits + [n_windows]


def greedy_boundaries(
    events: "TemporalEventSet", spec: WindowSpec, n_parts: int
) -> List[int]:
    """One-pass greedy split: close a run when its work passes the
    per-part average of the total.  Returns ``n_parts + 1`` boundaries
    (some runs may merge when the distribution is extremely skewed)."""
    n = spec.n_windows
    n_parts = min(n_parts, n)
    if n_parts <= 1:
        return [0, n]

    counts = window_event_counts(events, spec)
    # proxy for per-window work contribution: its own event count (the
    # union-range effect is reintroduced by the exact algorithm below)
    total = int(counts.sum())
    target = total / n_parts
    boundaries = [0]
    acc = 0
    for w in range(n):
        acc += int(counts[w])
        remaining_windows = n - (w + 1)
        remaining_parts = n_parts - len(boundaries)
        if acc >= target and remaining_windows >= remaining_parts:
            boundaries.append(w + 1)
            acc = 0
            if len(boundaries) == n_parts:
                break
    boundaries.append(n)
    return boundaries


def _feasible(work_of_run, n: int, n_parts: int, limit: float) -> List[int] | None:
    """Greedy feasibility check: can [0, n) be cut into <= n_parts runs
    each with work <= limit?  Returns boundaries if so."""
    boundaries = [0]
    start = 0
    while start < n:
        if len(boundaries) > n_parts:
            return None
        # extend the run as far as the limit allows (work is monotone in
        # the run end, so binary search the furthest feasible end)
        lo, hi = start + 1, n
        if work_of_run(start, lo) > limit:
            return None  # a single window already exceeds the limit
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if work_of_run(start, mid) <= limit:
                lo = mid
            else:
                hi = mid - 1
        boundaries.append(lo)
        start = lo
    if len(boundaries) - 1 > n_parts:
        return None
    return boundaries


def balanced_boundaries(
    events: "TemporalEventSet", spec: WindowSpec, n_parts: int
) -> List[int]:
    """Minimax contiguous partition of the window sequence.

    Minimizes ``max_run run_work(run)`` over all partitions into at most
    ``n_parts`` contiguous runs, via binary search on the bottleneck value
    with a greedy feasibility test.
    """
    n = spec.n_windows
    n_parts = min(n_parts, n)
    if n_parts <= 0:
        raise ValidationError("n_parts must be > 0")
    if n_parts == 1:
        return [0, n]

    def work_of_run(a: int, b: int) -> int:
        return run_work(events, spec, a, b)

    lo = max(work_of_run(w, w + 1) for w in range(n))
    hi = work_of_run(0, n)
    best = None
    while lo <= hi:
        mid = (lo + hi) // 2
        feasible = _feasible(work_of_run, n, n_parts, mid)
        if feasible is not None:
            best = feasible
            hi = mid - 1
        else:
            lo = mid + 1
    assert best is not None  # hi = full-range work is always feasible
    # pad degenerate partitions so downstream code sees real boundaries
    if best[-1] != n:
        best.append(n)
    return best


class BalancedMultiWindowPartition(MultiWindowPartition):
    """A multi-window partition with work-balanced (not uniform) runs.

    Drop-in replacement for
    :class:`~repro.graph.multiwindow.MultiWindowPartition`; pass
    ``method="greedy"`` for the cheap one-pass splitter.
    """

    def __init__(
        self,
        events: "TemporalEventSet",
        spec: WindowSpec,
        n_multiwindows: int,
        method: str = "minimax",
    ) -> None:
        if method not in ("minimax", "greedy"):
            raise ValidationError(
                f"method must be 'minimax' or 'greedy', got {method!r}"
            )
        if n_multiwindows <= 0:
            raise ValidationError("n_multiwindows must be > 0")
        if method == "minimax":
            boundaries = balanced_boundaries(events, spec, n_multiwindows)
        else:
            boundaries = greedy_boundaries(events, spec, n_multiwindows)
        self._boundaries = boundaries

        # replicate the parent's construction with custom boundaries
        self.events = events
        self.spec = spec
        self.n_multiwindows = len(boundaries) - 1
        self.graphs = []
        self._owner = np.empty(spec.n_windows, dtype=np.int64)
        for g, (a, b) in enumerate(zip(boundaries[:-1], boundaries[1:])):
            self._owner[a:b] = g
            self.graphs.append(self._build_graph(a, b - a))

    @property
    def boundaries(self) -> Sequence[int]:
        return tuple(self._boundaries)

    def max_run_work(self) -> int:
        """The bottleneck value the minimax split optimizes."""
        return max(
            run_work(self.events, self.spec, a, b)
            for a, b in zip(self._boundaries[:-1], self._boundaries[1:])
        )
