"""Multi-window graphs (paper Section 4.1).

The full temporal CSR makes every SpMV Θ(|Events|), which can be
arbitrarily larger than any one window's edge count.  The fix: partition
the window sequence into ``Y`` *multi-window graphs*, each a temporal CSR
over only the events relevant to its contiguous run of windows.  Windows
are distributed uniformly; events spanning a boundary are replicated
(Σ_w |E_w| >= |Events|), trading memory for per-SpMV work Θ(|E_w|).

Each multi-window graph compacts its vertex set (``V_w`` is typically much
smaller than ``V``), which is also why the paper does not attempt partial
initialization *across* multi-window boundaries — the index spaces differ.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.events.windows import Window, WindowSpec
from repro.graph.temporal_csr import TemporalAdjacency, TemporalCSR, WindowView
from repro.utils.arrays import heap_and_mapped_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.events.event_set import TemporalEventSet

__all__ = [
    "MultiWindowGraph",
    "MultiWindowPartition",
    "LazyMultiWindowPartition",
    "uniform_window_ranges",
    "build_compact_graph",
]


class MultiWindowGraph:
    """One multi-window graph: a compacted temporal adjacency for a
    contiguous run of windows.

    Attributes
    ----------
    spec:
        Sub-spec describing this graph's run of windows (global timing).
    first_window:
        Global index of the run's first window.
    adjacency:
        :class:`TemporalAdjacency` over *local* vertex ids ``0..|V_w|-1``.
    global_ids:
        ``global_ids[local]`` is the global vertex id; sorted ascending.
    """

    __slots__ = ("spec", "first_window", "adjacency", "global_ids")

    def __init__(
        self,
        spec: WindowSpec,
        first_window: int,
        adjacency: TemporalAdjacency,
        global_ids: np.ndarray,
    ) -> None:
        self.spec = spec
        self.first_window = int(first_window)
        self.adjacency = adjacency
        self.global_ids = np.ascontiguousarray(global_ids, dtype=np.int64)
        if adjacency.n_vertices != self.global_ids.size:
            raise ValidationError(
                "adjacency vertex count must match the id mapping"
            )

    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        return self.spec.n_windows

    @property
    def n_local_vertices(self) -> int:
        return self.global_ids.size

    @property
    def nnz(self) -> int:
        """|E_w| — events stored in this multi-window graph."""
        return self.adjacency.nnz

    def window_indices(self) -> range:
        """Global window indices covered by this graph."""
        return range(self.first_window, self.first_window + self.n_windows)

    def local_window(self, global_index: int) -> Window:
        """The window object (global timing) for a global window index
        belonging to this graph."""
        local = global_index - self.first_window
        if not (0 <= local < self.n_windows):
            raise ValidationError(
                f"window {global_index} not in multi-window graph "
                f"[{self.first_window}, {self.first_window + self.n_windows})"
            )
        w = self.spec.window(local)
        return Window(index=global_index, t_start=w.t_start, t_end=w.t_end)

    def window_view(self, global_index: int, workspace=None) -> WindowView:
        """Per-window activity data, computed over the *local* structure —
        the Θ(|E_w|) traversal the partitioning buys.

        ``workspace`` recycles construction scratch across this graph's
        partial-initialization chain, and is remembered by the view so
        its :meth:`~repro.graph.temporal_csr.WindowView.compact_pull`
        packs into the same pooled scratch."""
        return self.adjacency.window_view(
            self.local_window(global_index), workspace=workspace
        )

    def to_global(self, local_values: np.ndarray, n_global: int) -> np.ndarray:
        """Scatter a local per-vertex vector into the global vertex space
        (zeros elsewhere)."""
        out_shape = (n_global,) + local_values.shape[1:]
        out = np.zeros(out_shape, dtype=local_values.dtype)
        out[self.global_ids] = local_values
        return out

    def memory_bytes(self) -> int:
        """Heap bytes (mmap-backed adjacency arrays excluded)."""
        return self.adjacency.memory_bytes() + self.global_ids.nbytes

    def mapped_bytes(self) -> int:
        """File-mapped bytes of the adjacency (address space, not RSS)."""
        return self.adjacency.mapped_bytes()

    # ------------------------------------------------------------------
    # shared-memory publication (repro.parallel.shared_arena)
    # ------------------------------------------------------------------
    def shared_arrays(self) -> dict:
        """The graph's array payload, keyed for arena publication.

        Everything a worker process needs to rebuild this graph without
        recomputation: both temporal-CSR orientations (including the
        precomputed ``group_start`` masks) and the vertex id mapping.  The
        window ``spec`` and ``first_window`` travel separately — they are
        tiny picklable metadata, not array payload.
        """
        a = self.adjacency
        return {
            "in_indptr": a.in_csr.indptr,
            "in_col": a.in_csr.col,
            "in_time": a.in_csr.time,
            "in_group_start": a.in_csr.group_start,
            "out_indptr": a.out_csr.indptr,
            "out_col": a.out_csr.col,
            "out_time": a.out_csr.time,
            "out_group_start": a.out_csr.group_start,
            "global_ids": self.global_ids,
        }

    @classmethod
    def from_shared_arrays(
        cls, spec: WindowSpec, first_window: int, arrays: dict
    ) -> "MultiWindowGraph":
        """Rebuild a graph from :meth:`shared_arrays` views (zero-copy).

        The arrays may be read-only views into a shared-memory segment;
        no structure pass (sorting, group-start derivation) is repeated.
        """
        n_rows = arrays["in_indptr"].size - 1
        in_csr = TemporalCSR(
            arrays["in_indptr"],
            arrays["in_col"],
            arrays["in_time"],
            n_rows,
            group_start=arrays["in_group_start"],
        )
        out_csr = TemporalCSR(
            arrays["out_indptr"],
            arrays["out_col"],
            arrays["out_time"],
            n_rows,
            group_start=arrays["out_group_start"],
        )
        return cls(
            spec,
            first_window,
            TemporalAdjacency(in_csr, out_csr),
            arrays["global_ids"],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiWindowGraph(windows=[{self.first_window}, "
            f"{self.first_window + self.n_windows}), |V_w|="
            f"{self.n_local_vertices}, |E_w|={self.nnz})"
        )


def uniform_window_ranges(n_windows: int, n_multiwindows: int) -> list:
    """Uniform split: ``(w_start, w_count)`` per multi-window graph; the
    first ``n_windows % Y`` graphs get one extra window (paper Section
    4.1's distribution)."""
    base = n_windows // n_multiwindows
    extra = n_windows % n_multiwindows
    ranges = []
    start = 0
    for g in range(n_multiwindows):
        count = base + (1 if g < extra else 0)
        ranges.append((start, count))
        start += count
    assert start == n_windows
    return ranges


def build_compact_graph(
    src: np.ndarray,
    dst: np.ndarray,
    time: np.ndarray,
    sub: WindowSpec,
    first_window: int,
) -> MultiWindowGraph:
    """Compact a time-sliced event run into one multi-window graph.

    The single construction step shared by the eager and lazy partitions
    (and by shared-arena workers building graphs in-process): vertex
    compaction via ``union1d`` + ``searchsorted`` relabeling, then both
    temporal-CSR orientations over local ids.
    """
    if src.size:
        ids = np.union1d(src, dst)
        local_src = np.searchsorted(ids, src)
        local_dst = np.searchsorted(ids, dst)
    else:
        ids = np.empty(0, dtype=np.int64)
        local_src = local_dst = np.asarray(src, dtype=np.int64)
    adjacency = TemporalAdjacency.from_arrays(
        local_src, local_dst, time, ids.size
    )
    return MultiWindowGraph(sub, first_window, adjacency, ids)


class MultiWindowPartition:
    """Uniform partition of a window sequence into multi-window graphs.

    ``n_multiwindows`` graphs each receive ``ceil(n_windows / Y)`` (or one
    fewer) consecutive windows, mirroring the paper's uniform distribution.
    Construction slices the event set once per multi-window graph and
    compacts vertices; total build cost is O(Σ_w |E_w| log |E_w|).
    """

    def __init__(
        self,
        events: "TemporalEventSet",
        spec: WindowSpec,
        n_multiwindows: int,
    ) -> None:
        if n_multiwindows <= 0:
            raise ValidationError(
                f"n_multiwindows must be > 0, got {n_multiwindows}"
            )
        n_multiwindows = min(n_multiwindows, spec.n_windows)
        self.events = events
        self.spec = spec
        self.n_multiwindows = n_multiwindows
        self.graphs: List[MultiWindowGraph] = []
        self._owner = np.empty(spec.n_windows, dtype=np.int64)

        for g, (start, count) in enumerate(
            uniform_window_ranges(spec.n_windows, n_multiwindows)
        ):
            self._owner[start: start + count] = g
            self.graphs.append(self._build_graph(start, count))

    def _build_graph(self, w_start: int, w_count: int) -> MultiWindowGraph:
        sub = self.spec.subspec(w_start, w_count)
        t_lo = sub.t0
        t_hi = sub.t0 + (w_count - 1) * sub.sw + sub.delta
        lo, hi = self.events.time_slice_indices(t_lo, t_hi)
        return build_compact_graph(
            self.events.src[lo:hi],
            self.events.dst[lo:hi],
            self.events.time[lo:hi],
            sub,
            w_start,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_multiwindows

    def __iter__(self) -> Iterator[MultiWindowGraph]:
        return iter(self.graphs)

    def __getitem__(self, g: int) -> MultiWindowGraph:
        return self.graphs[g]

    def owner_of(self, window_index: int) -> int:
        """Which multi-window graph holds a global window index."""
        if not (0 <= window_index < self.spec.n_windows):
            raise ValidationError(
                f"window index {window_index} out of range"
            )
        return int(self._owner[window_index])

    def graph_of(self, window_index: int) -> MultiWindowGraph:
        """The multi-window graph owning a global window index."""
        return self.graphs[self.owner_of(window_index)]

    def window_view(self, window_index: int, workspace=None) -> WindowView:
        """Per-window view routed through the owning multi-window graph
        (``workspace`` forwarded for construction-scratch and
        compaction-buffer reuse)."""
        return self.graph_of(window_index).window_view(
            window_index, workspace=workspace
        )

    @property
    def total_stored_events(self) -> int:
        """Σ_w |E_w| — the replication-inflated storage volume."""
        return sum(g.nnz for g in self.graphs)

    @property
    def replication_factor(self) -> float:
        """Σ_w |E_w| / |Events| (>= 1 up to boundary truncation)."""
        n = len(self.events)
        return self.total_stored_events / n if n else 1.0

    def memory_bytes(self) -> int:
        """Total representation memory — encoding × (Σ|V_w| + 2 Σ|E_w|) in
        the paper's accounting, measured here directly."""
        return sum(g.memory_bytes() for g in self.graphs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiWindowPartition(Y={self.n_multiwindows}, "
            f"windows={self.spec.n_windows}, "
            f"stored_events={self.total_stored_events})"
        )


class LazyMultiWindowPartition:
    """A uniform partition that materializes graphs on demand.

    Construction computes only the per-graph window ranges and event-log
    slice bounds (two ``searchsorted`` probes each — with a ``.tcsr``
    event set that touches a handful of pages, not the whole log).  A
    multi-window graph's arrays exist only while someone holds the object
    :meth:`graph_at` returned, so peak memory for a run is one graph per
    concurrent worker instead of all ``Y`` graphs at once.

    Same read interface as :class:`MultiWindowPartition`, except
    ``graphs`` is a *property* that eagerly materializes every graph —
    the escape hatch for analysis paths; runtime paths should iterate or
    call :meth:`graph_at`.
    """

    def __init__(
        self,
        events: "TemporalEventSet",
        spec: WindowSpec,
        n_multiwindows: int,
    ) -> None:
        if n_multiwindows <= 0:
            raise ValidationError(
                f"n_multiwindows must be > 0, got {n_multiwindows}"
            )
        n_multiwindows = min(n_multiwindows, spec.n_windows)
        self.events = events
        self.spec = spec
        self.n_multiwindows = n_multiwindows
        self._owner = np.empty(spec.n_windows, dtype=np.int64)
        #: per graph: (w_start, w_count, sub_spec, event_lo, event_hi)
        self._ranges: List[tuple] = []
        for g, (start, count) in enumerate(
            uniform_window_ranges(spec.n_windows, n_multiwindows)
        ):
            self._owner[start: start + count] = g
            sub = spec.subspec(start, count)
            t_lo = sub.t0
            t_hi = sub.t0 + (count - 1) * sub.sw + sub.delta
            lo, hi = events.time_slice_indices(t_lo, t_hi)
            self._ranges.append((start, count, sub, int(lo), int(hi)))

    # ------------------------------------------------------------------
    def graph_at(self, g: int) -> MultiWindowGraph:
        """Build multi-window graph ``g`` now (a fresh object each call;
        drop the reference to release its arrays)."""
        w_start, _, sub, lo, hi = self._ranges[g]
        return build_compact_graph(
            self.events.src[lo:hi],
            self.events.dst[lo:hi],
            self.events.time[lo:hi],
            sub,
            w_start,
        )

    def graph_payload(self, g: int) -> tuple:
        """Picklable build recipe ``(sub_spec, first_window, lo, hi)`` for
        workers that hold the event arrays already (shared arena)."""
        w_start, _, sub, lo, hi = self._ranges[g]
        return (sub, w_start, lo, hi)

    @property
    def graphs(self) -> List[MultiWindowGraph]:
        """Materialize *all* graphs (defeats laziness; analysis paths)."""
        return [self.graph_at(g) for g in range(self.n_multiwindows)]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_multiwindows

    def __iter__(self) -> Iterator[MultiWindowGraph]:
        for g in range(self.n_multiwindows):
            yield self.graph_at(g)

    def __getitem__(self, g: int) -> MultiWindowGraph:
        return self.graph_at(g)

    def owner_of(self, window_index: int) -> int:
        """Which multi-window graph holds a global window index."""
        if not (0 <= window_index < self.spec.n_windows):
            raise ValidationError(
                f"window index {window_index} out of range"
            )
        return int(self._owner[window_index])

    def graph_of(self, window_index: int) -> MultiWindowGraph:
        """Materialize the graph owning a global window index."""
        return self.graph_at(self.owner_of(window_index))

    def window_view(self, window_index: int, workspace=None) -> WindowView:
        """Per-window view via a freshly materialized owning graph."""
        return self.graph_of(window_index).window_view(
            window_index, workspace=workspace
        )

    @property
    def total_stored_events(self) -> int:
        """Σ_w |E_w| — known from slice bounds without building graphs."""
        return sum(hi - lo for _, _, _, lo, hi in self._ranges)

    @property
    def replication_factor(self) -> float:
        n = len(self.events)
        return self.total_stored_events / n if n else 1.0

    def memory_bytes(self) -> int:
        """Resident representation bytes: 0 — nothing is materialized
        until a caller asks for a graph."""
        return 0

    def mapped_bytes(self) -> int:
        """File-mapped bytes of the backing event arrays (if any)."""
        _, mapped = heap_and_mapped_bytes(
            (self.events.src, self.events.dst, self.events.time)
        )
        return mapped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LazyMultiWindowPartition(Y={self.n_multiwindows}, "
            f"windows={self.spec.n_windows}, "
            f"stored_events={self.total_stored_events})"
        )
