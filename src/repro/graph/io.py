"""The ``.tcsr`` artifact: the temporal CSR as a memory-mapped file.

Mirrors the ``.rankstore`` design on the *input* side of the pipeline: a
versioned preamble at offset 0, every array at a fixed 64-byte-aligned
offset so readers ``np.memmap`` them directly, and a trailing JSON table
describing the layout.  Opening an artifact costs O(1) I/O regardless of
event count; windows materialize lazily because the existing
``WindowView``/workspace machinery only touches the slices a window needs.

Layout of a ``.tcsr`` file::

    offset 0    preamble (64 bytes, little-endian):
                  magic "TCSRART1", version u32, flags u32,
                  n_vertices u64, n_events u64,
                  table_offset u64, table_len u64, time_index_stride u64
    offset 64   the arrays, each 64-byte aligned, in table order:
                  ev_src/ev_dst/ev_time      the time-sorted event log
                  time_index                 every stride-th timestamp
                  in_indptr/in_col/in_time/in_group_start    pull CSR
                  out_indptr/out_col/out_time/out_group_start push CSR
    after them  the JSON table: per-array name/dtype/shape/offset + meta

The file is written by :class:`TemporalCSRBuilder` in **bounded memory**:
incoming event chunks spill to a side file, a parallel pass (fanned out
through the shared :class:`~repro.parallel.executor.ChunkedThreadExecutor`)
time-sorts each chunk in place and takes per-vertex degree counts, chunks
are merged bucket-at-a-time into the final time-sorted log, and each CSR
orientation is built with a streaming counting-sort scatter followed by a
parallel per-row-block ``(neighbor, time)`` sort — never holding more than
O(chunk) events in RAM.  The resulting arrays are bitwise-identical to
:meth:`TemporalAdjacency.from_events` on the same events (stable sorts
compose: per-chunk sort + in-order bucket merge reproduces the global
stable time sort exactly).
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphBuildError, ValidationError
from repro.events.event_set import TemporalEventSet
from repro.graph.temporal_csr import TemporalAdjacency, TemporalCSR
from repro.parallel.executor import ChunkedThreadExecutor
from repro.sanitize import freeze_boundary
from repro.utils.segments import indptr_to_row_ids, lengths_to_indptr

__all__ = [
    "MAGIC",
    "VERSION",
    "TemporalCSRBuilder",
    "TcsrFile",
    "MappedEventSet",
    "build_tcsr",
    "write_tcsr",
    "open_events",
    "open_adjacency",
    "is_tcsr",
]

PathLike = Union[str, os.PathLike]

MAGIC = b"TCSRART1"
VERSION = 1
#: preamble struct: magic, version, flags, n_vertices, n_events,
#: table_offset, table_len, time_index_stride (+ padding to 64 bytes)
_PREAMBLE = struct.Struct("<8sII5Q")
PREAMBLE_SIZE = 64
#: byte alignment of every array (cache-line / SIMD friendly, and int64
#: safe for any future dtype)
ALIGNMENT = 64
FLAG_FINALIZED = 1

DEFAULT_CHUNK_EVENTS = 1_000_000
DEFAULT_TIME_INDEX_STRIDE = 8192

#: per-chunk boundary samples collected during the sort pass — enough to
#: place near-quantile bucket boundaries without rescanning any chunk
_SAMPLES_PER_CHUNK = 64

#: blocks processed between page drops in the streaming passes; bounds
#: the resident set contributed by dirty mmap pages
_DROP_INTERVAL_BLOCKS = 4

#: the array names every v1 artifact must carry, in layout order
ARRAY_NAMES = (
    "ev_src", "ev_dst", "ev_time",
    "time_index",
    "in_indptr", "in_col", "in_time", "in_group_start",
    "out_indptr", "out_col", "out_time", "out_group_start",
)


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _pack_preamble(
    flags: int, n_vertices: int, n_events: int,
    table_offset: int, table_len: int, stride: int,
) -> bytes:
    head = _PREAMBLE.pack(
        MAGIC, VERSION, flags, n_vertices, n_events,
        table_offset, table_len, stride,
    )
    return head + b"\0" * (PREAMBLE_SIZE - len(head))


def _drop_pages(arr, dirty: bool = False, lo=None, hi=None) -> None:
    """Tell the kernel a mapped array's resident pages may be reclaimed.

    ``lo``/``hi`` (element indices) restrict the drop to one range —
    the construction passes call this after finishing each block, which
    is what keeps peak RSS at O(chunk) instead of O(file): ``ru_maxrss``
    is a high-water mark, so dropping only between passes would still
    let a single pass page the whole file in.  ``dirty=True`` flushes
    first so file-backed writes survive the drop (``MADV_DONTNEED`` on a
    shared file mapping is not destructive — dirty page-cache pages
    remain the file's up-to-date content — but flushing keeps the dirty
    set bounded too).  Advisory only: platforms without ``madvise`` just
    keep the pages.
    """
    if not isinstance(arr, np.memmap):
        return
    mm = getattr(arr, "_mmap", None)
    if mm is None or not hasattr(mm, "madvise"):
        return
    if lo is None and hi is None:
        if dirty:
            arr.flush()
        mm.madvise(mmap.MADV_DONTNEED)
        return
    page = mmap.PAGESIZE
    item = arr.dtype.itemsize
    # the mmap starts at the allocation-granularity floor of the array's
    # file offset; element positions shift by the remainder
    delta = int(getattr(arr, "offset", 0)) % mmap.ALLOCATIONGRANULARITY
    lo_b = delta + (0 if lo is None else int(lo)) * item
    hi_b = delta + (arr.size if hi is None else int(hi)) * item
    start = lo_b // page * page
    stop = min(-(-hi_b // page) * page, len(mm))
    if stop <= start:
        return
    if dirty:
        mm.flush(start, stop - start)
    mm.madvise(mmap.MADV_DONTNEED, start, stop - start)


def _close_map(arr) -> None:
    if isinstance(arr, np.memmap):
        mm = getattr(arr, "_mmap", None)
        if mm is not None:
            try:
                mm.close()
            except BufferError:  # lint: disable=silent-except
                # a caller still holds a view; the mapping lives until
                # that reference dies (read-only file map: nothing leaks)
                pass


def _layout(
    n_vertices: int, n_events: int, ti_len: int
) -> Tuple[List[Dict[str, object]], int]:
    """Per-array table entries (name/dtype/shape/offset) + end offset."""
    shapes = {
        "ev_src": (n_events,), "ev_dst": (n_events,),
        "ev_time": (n_events,),
        "time_index": (ti_len,),
        "in_indptr": (n_vertices + 1,), "in_col": (n_events,),
        "in_time": (n_events,), "in_group_start": (n_events,),
        "out_indptr": (n_vertices + 1,), "out_col": (n_events,),
        "out_time": (n_events,), "out_group_start": (n_events,),
    }
    entries: List[Dict[str, object]] = []
    offset = PREAMBLE_SIZE
    for name in ARRAY_NAMES:
        dtype = np.dtype("|b1") if name.endswith("group_start") else (
            np.dtype("<i8")
        )
        shape = shapes[name]
        offset = _aligned(offset)
        entries.append(
            {
                "name": name,
                "dtype": dtype.str,
                "shape": list(shape),
                "offset": offset,
            }
        )
        offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return entries, offset


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class TemporalCSRBuilder:
    """Builds a ``.tcsr`` artifact from event chunks in bounded memory.

    Usage::

        builder = TemporalCSRBuilder(path, n_vertices)
        for src, dst, time in chunks:   # any order, any chunk size
            builder.add_events(src, dst, time)
        builder.finalize()

    ``chunk_events`` bounds both the spill granularity and the working
    set of every construction pass (sort, merge, scatter, row-block
    sort); peak resident memory is O(``chunk_events`` x ``n_workers``)
    plus two per-vertex count arrays, never O(total events).
    """

    def __init__(
        self,
        path: PathLike,
        n_vertices: int,
        *,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        n_workers: int = 4,
        time_index_stride: int = DEFAULT_TIME_INDEX_STRIDE,
    ) -> None:
        if n_vertices < 0:
            raise ValidationError("n_vertices must be >= 0")
        if chunk_events <= 0:
            raise ValidationError("chunk_events must be > 0")
        if time_index_stride <= 0:
            raise ValidationError("time_index_stride must be > 0")
        if n_workers <= 0:
            raise ValidationError("n_workers must be > 0")
        self.path = os.fspath(path)
        self.n_vertices = int(n_vertices)
        self.chunk_events = int(chunk_events)
        self.n_workers = int(n_workers)
        self.time_index_stride = int(time_index_stride)
        self._spill_path = self.path + ".spill"
        self._spill_file = open(self._spill_path, "wb")
        #: (element offset into the int64 spill, event count) per chunk
        self._chunks: List[Tuple[int, int]] = []
        self._n_events = 0
        self._finalized = False

    # ------------------------------------------------------------------
    def add_events(self, src, dst, time) -> None:
        """Append one chunk of events (any timestamp order).

        Oversized inputs are split so no spill chunk exceeds
        ``chunk_events``; total added events may exceed RAM.
        """
        if self._finalized:
            raise ValidationError("builder is finalized")
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        time = np.ascontiguousarray(time, dtype=np.int64)
        if not (src.ndim == dst.ndim == time.ndim == 1):
            raise ValidationError("event chunks must be 1-D arrays")
        if not (src.size == dst.size == time.size):
            raise ValidationError("src/dst/time chunks must match in length")
        if src.size == 0:
            return
        lo_id = min(int(src.min()), int(dst.min()))
        hi_id = max(int(src.max()), int(dst.max()))
        if lo_id < 0 or hi_id >= self.n_vertices:
            raise ValidationError(
                f"vertex ids must lie in [0, {self.n_vertices}), got "
                f"[{lo_id}, {hi_id}]"
            )
        for lo in range(0, src.size, self.chunk_events):
            hi = min(lo + self.chunk_events, src.size)
            self._chunks.append((self._spill_file.tell() // 8, hi - lo))
            self._spill_file.write(src[lo:hi].tobytes())
            self._spill_file.write(dst[lo:hi].tobytes())
            self._spill_file.write(time[lo:hi].tobytes())
            self._n_events += hi - lo

    # ------------------------------------------------------------------
    def _chunk_views(
        self, spill: np.ndarray, ci: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        off, cnt = self._chunks[ci]
        return (
            spill[off: off + cnt],
            spill[off + cnt: off + 2 * cnt],
            spill[off + 2 * cnt: off + 3 * cnt],
        )

    def _sort_count_pass(
        self, spill: np.ndarray, executor: ChunkedThreadExecutor
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Time-sort every spill chunk in place; per-vertex degree counts
        and boundary samples fall out of the same scan."""
        V = self.n_vertices

        def sort_count(lo: int, hi: int):
            in_c = np.zeros(V, dtype=np.int64)
            out_c = np.zeros(V, dtype=np.int64)
            samples = []
            for ci in range(lo, hi):
                s_v, d_v, t_v = self._chunk_views(spill, ci)
                order = np.argsort(t_v, kind="stable")
                t = t_v[order]
                t_v[:] = t
                s = s_v[order]
                s_v[:] = s
                out_c += np.bincount(s, minlength=V).astype(
                    np.int64, copy=False
                )
                del s
                d = d_v[order]
                d_v[:] = d
                in_c += np.bincount(d, minlength=V).astype(
                    np.int64, copy=False
                )
                del d
                step = max(1, t.size // _SAMPLES_PER_CHUNK)
                samples.append(t[::step].copy())
                off, cnt = self._chunks[ci]
                _drop_pages(spill, dirty=True, lo=off, hi=off + 3 * cnt)
            return [(in_c, out_c, samples)]

        parts = executor.map_chunks(sort_count, len(self._chunks))
        in_counts = np.zeros(V, dtype=np.int64)
        out_counts = np.zeros(V, dtype=np.int64)
        all_samples: List[np.ndarray] = []
        for in_c, out_c, samples in parts:
            in_counts += in_c
            out_counts += out_c
            all_samples.extend(samples)
        samples = (
            np.sort(np.concatenate(all_samples))
            if all_samples else np.empty(0, dtype=np.int64)
        )
        return in_counts, out_counts, samples

    def _bucket_splits(
        self, spill: np.ndarray, samples: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Near-quantile time-bucket boundaries and the per-chunk split
        table (chunk x bucket event ranges via searchsorted)."""
        n = self._n_events
        n_buckets = max(1, -(-n // self.chunk_events))
        if n_buckets > 1 and samples.size:
            qpos = (
                np.arange(1, n_buckets, dtype=np.int64) * samples.size
            ) // n_buckets
            bounds = np.unique(samples[qpos])
        else:
            bounds = np.empty(0, dtype=np.int64)
        splits = np.zeros(
            (len(self._chunks), bounds.size + 2), dtype=np.int64
        )
        for ci in range(len(self._chunks)):
            _, _, t_v = self._chunk_views(spill, ci)
            splits[ci, 1:-1] = np.searchsorted(t_v, bounds, side="left")
            splits[ci, -1] = t_v.size
        return bounds, splits

    def _merge_pass(
        self,
        spill: np.ndarray,
        splits: np.ndarray,
        maps: Dict[str, np.ndarray],
        executor: ChunkedThreadExecutor,
    ) -> None:
        """Gather each time bucket from every chunk (in add order), stable
        sort by time, and stream it to its final slot in the event log.

        Chunk-order concatenation + stable sort reproduces the global
        stable time sort exactly, so equal-timestamp events keep their
        input order — the bitwise-parity invariant with the in-RAM path.
        """
        sizes = (splits[:, 1:] - splits[:, :-1]).sum(axis=0)
        starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)]
        )
        ev_src, ev_dst, ev_time = (
            maps["ev_src"], maps["ev_dst"], maps["ev_time"]
        )
        ti = maps["time_index"]
        stride = self.time_index_stride
        n_chunks = len(self._chunks)

        def merge(lo: int, hi: int):
            for b in range(lo, hi):
                slices = [
                    (ci, int(splits[ci, b]), int(splits[ci, b + 1]))
                    for ci in range(n_chunks)
                    if splits[ci, b + 1] > splits[ci, b]
                ]
                if not slices:
                    continue
                g0, g1 = int(starts[b]), int(starts[b + 1])
                # gather one component at a time straight from the mapped
                # spill, freeing each as soon as it is written: the
                # transient heap peak is what the RSS bound pays for
                t = np.concatenate(
                    [self._chunk_views(spill, ci)[2][a:z]
                     for ci, a, z in slices]
                )
                order = np.argsort(t, kind="stable")
                t = t[order]
                ev_time[g0:g1] = t
                p0 = -(-g0 // stride) * stride
                ps = np.arange(p0, g1, stride, dtype=np.int64)
                if ps.size:
                    ti[ps // stride] = t[ps - g0]
                del t
                _drop_pages(ev_time, dirty=True, lo=g0, hi=g1)
                for comp, out in ((0, ev_src), (1, ev_dst)):
                    vals = np.concatenate(
                        [self._chunk_views(spill, ci)[comp][a:z]
                         for ci, a, z in slices]
                    )
                    out[g0:g1] = vals[order]
                    del vals
                    _drop_pages(out, dirty=True, lo=g0, hi=g1)
                # this bucket's slice of every chunk is consumed — no
                # later bucket rereads it
                for ci, a, z in slices:
                    off, cnt = self._chunks[ci]
                    for base in (off, off + cnt, off + 2 * cnt):
                        _drop_pages(spill, lo=base + a, hi=base + z)
            return [None]

        executor.map_chunks(merge, int(sizes.size))
        for arr in (ev_src, ev_dst, ev_time, ti):
            _drop_pages(arr, dirty=True)

    def _scatter_pass(
        self,
        ev_rows: np.ndarray,
        ev_cols: np.ndarray,
        ev_time: np.ndarray,
        indptr: np.ndarray,
        col_mm: np.ndarray,
        time_mm: np.ndarray,
    ) -> None:
        """Counting-sort scatter: stream the time-sorted log block by
        block, placing every event at its row's cursor.  Stable in log
        order, so within a row events land already time-sorted."""
        n = self._n_events
        cursors = indptr[:-1].copy()
        block = 0
        for lo in range(0, n, self.chunk_events):
            hi = min(lo + self.chunk_events, n)
            r = np.array(ev_rows[lo:hi])
            c = np.array(ev_cols[lo:hi])
            t = np.array(ev_time[lo:hi])
            order = np.argsort(r, kind="stable")
            r = r[order]
            m = r.size
            newseg = np.empty(m, dtype=np.bool_)
            newseg[0] = True
            np.not_equal(r[1:], r[:-1], out=newseg[1:])
            seg_idx = np.flatnonzero(newseg)
            seg_len = np.diff(np.concatenate([seg_idx, [m]]))
            rank = np.arange(m, dtype=np.int64) - np.repeat(
                seg_idx, seg_len
            )
            dest = cursors[r] + rank
            col_mm[dest] = c[order]
            time_mm[dest] = t[order]
            cursors[r[seg_idx]] += seg_len
            # the log block is consumed; the scatter destinations are
            # spread over the whole orientation, so those two drop whole
            _drop_pages(ev_rows, lo=lo, hi=hi)
            _drop_pages(ev_cols, lo=lo, hi=hi)
            _drop_pages(ev_time, lo=lo, hi=hi)
            block += 1
            if block % _DROP_INTERVAL_BLOCKS == 0:
                _drop_pages(col_mm, dirty=True)
                _drop_pages(time_mm, dirty=True)
        if not np.array_equal(cursors, indptr[1:]):
            raise GraphBuildError(
                "orientation scatter did not fill every row"
            )

    def _row_blocks(self, indptr: np.ndarray) -> List[Tuple[int, int]]:
        """Contiguous row ranges each holding <= chunk_events events
        (single oversized rows get a block of their own)."""
        blocks: List[Tuple[int, int]] = []
        V = indptr.size - 1
        r0 = 0
        while r0 < V:
            target = int(indptr[r0]) + self.chunk_events
            r1 = int(np.searchsorted(indptr, target, side="right")) - 1
            r1 = min(max(r1, r0 + 1), V)
            blocks.append((r0, r1))
            r0 = r1
        return blocks

    def _rowsort_pass(
        self,
        indptr: np.ndarray,
        col_mm: np.ndarray,
        time_mm: np.ndarray,
        gs_mm: np.ndarray,
        executor: ChunkedThreadExecutor,
    ) -> None:
        """Per-row-block ``(neighbor, time)`` sort + group-start mask.

        Blocks split at row boundaries, so every (row, neighbor, time)
        tie group lives in exactly one block and the stable ``lexsort``
        matches the in-RAM ``_build_orientation`` ordering bitwise.
        """
        blocks = self._row_blocks(indptr)

        def sort_rows(lo: int, hi: int):
            done = 0
            for bi in range(lo, hi):
                r0, r1 = blocks[bi]
                e0, e1 = int(indptr[r0]), int(indptr[r1])
                if e1 == e0:
                    continue
                c = np.array(col_mm[e0:e1])
                t = np.array(time_mm[e0:e1])
                rows = indptr_to_row_ids(indptr[r0: r1 + 1] - e0)
                order = np.lexsort((t, c, rows))
                c = c[order]
                t = t[order]
                col_mm[e0:e1] = c
                time_mm[e0:e1] = t
                gs = np.empty(c.size, dtype=np.bool_)
                gs[0] = True
                np.not_equal(c[1:], c[:-1], out=gs[1:])
                rs = rows[order]
                gs[1:] |= rs[1:] != rs[:-1]
                gs_mm[e0:e1] = gs
                done += 1
                _drop_pages(col_mm, dirty=True, lo=e0, hi=e1)
                _drop_pages(time_mm, dirty=True, lo=e0, hi=e1)
                _drop_pages(gs_mm, dirty=True, lo=e0, hi=e1)
            return [None]

        executor.map_chunks(sort_rows, len(blocks))

    # ------------------------------------------------------------------
    def finalize(self) -> str:
        """Run the construction passes and seal the artifact.

        Returns the artifact path.  The preamble's ``finalized`` flag is
        written last, so a crash mid-build leaves a file every reader
        rejects rather than a silently-truncated artifact.
        """
        if self._finalized:
            return self.path
        self._finalized = True
        self._spill_file.flush()
        self._spill_file.close()
        n, V = self._n_events, self.n_vertices
        executor = ChunkedThreadExecutor(self.n_workers)

        spill: Optional[np.ndarray] = None
        if n:
            spill = np.memmap(
                self._spill_path, dtype=np.int64, mode="r+",
                shape=(3 * n,),
            )
            in_counts, out_counts, samples = self._sort_count_pass(
                spill, executor
            )
            _, splits = self._bucket_splits(spill, samples)
        else:
            in_counts = np.zeros(V, dtype=np.int64)
            out_counts = np.zeros(V, dtype=np.int64)
            splits = np.zeros((0, 2), dtype=np.int64)

        ti_len = len(range(0, n, self.time_index_stride))
        entries, arrays_end = _layout(V, n, ti_len)
        with open(self.path, "wb") as f:
            f.write(
                _pack_preamble(0, V, n, 0, 0, self.time_index_stride)
            )
            f.truncate(arrays_end)
        maps: Dict[str, np.ndarray] = {}
        for e in entries:
            shape = tuple(e["shape"])
            if int(np.prod(shape, dtype=np.int64)) == 0:
                maps[e["name"]] = np.empty(shape, dtype=e["dtype"])
            else:
                maps[e["name"]] = np.memmap(
                    self.path, dtype=np.dtype(str(e["dtype"])),
                    mode="r+", offset=int(e["offset"]), shape=shape,
                )

        try:
            if n:
                self._merge_pass(spill, splits, maps, executor)
            # the spill is dead once the merged log exists
            if spill is not None:
                _close_map(spill)
                spill = None
            os.unlink(self._spill_path)

            for prefix, counts, rows_key, cols_key in (
                ("in", in_counts, "ev_dst", "ev_src"),
                ("out", out_counts, "ev_src", "ev_dst"),
            ):
                indptr = lengths_to_indptr(counts)
                maps[f"{prefix}_indptr"][:] = indptr
                if n:
                    self._scatter_pass(
                        maps[rows_key], maps[cols_key], maps["ev_time"],
                        indptr,
                        maps[f"{prefix}_col"], maps[f"{prefix}_time"],
                    )
                    self._rowsort_pass(
                        indptr,
                        maps[f"{prefix}_col"], maps[f"{prefix}_time"],
                        maps[f"{prefix}_group_start"], executor,
                    )
                for name in ("_col", "_time", "_group_start", "_indptr"):
                    _drop_pages(maps[prefix + name], dirty=True)

            table = {
                "arrays": entries,
                "meta": {
                    "chunk_events": self.chunk_events,
                    "n_chunks": len(self._chunks),
                    "time_index_stride": self.time_index_stride,
                },
            }
            payload = json.dumps(table).encode()
            for arr in maps.values():
                if isinstance(arr, np.memmap):
                    arr.flush()
            with open(self.path, "r+b") as f:
                f.seek(arrays_end)
                f.write(payload)
                f.seek(0)
                f.write(
                    _pack_preamble(
                        FLAG_FINALIZED, V, n, arrays_end, len(payload),
                        self.time_index_stride,
                    )
                )
                f.flush()
                os.fsync(f.fileno())
        finally:
            if spill is not None:
                _close_map(spill)
            for arr in maps.values():
                _close_map(arr)
        return self.path

    def abort(self) -> None:
        """Drop the spill without writing an artifact."""
        if not self._finalized:
            self._finalized = True
            self._spill_file.close()
            if os.path.exists(self._spill_path):
                os.unlink(self._spill_path)

    def __enter__(self) -> "TemporalCSRBuilder":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.finalize()


def build_tcsr(
    chunks: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    path: PathLike,
    n_vertices: int,
    **builder_kwargs,
) -> str:
    """Build a ``.tcsr`` from an iterable of ``(src, dst, time)`` chunks.

    The chunks may arrive in any timestamp order and need never coexist
    in memory; equal-timestamp events keep chunk-concatenation order
    (the same stable-sort semantics as ``TemporalEventSet``).
    """
    with TemporalCSRBuilder(path, n_vertices, **builder_kwargs) as b:
        for src, dst, time in chunks:
            b.add_events(src, dst, time)
    return os.fspath(path)


def write_tcsr(
    events: TemporalEventSet, path: PathLike, **builder_kwargs
) -> str:
    """Write an in-RAM event set as a ``.tcsr`` artifact.

    ``open_adjacency`` on the result equals
    ``TemporalAdjacency.from_events(events)`` array for array.
    """
    chunk = builder_kwargs.get("chunk_events", DEFAULT_CHUNK_EVENTS)
    with TemporalCSRBuilder(
        path, events.n_vertices, **builder_kwargs
    ) as b:
        for lo in range(0, len(events), chunk):
            hi = min(lo + chunk, len(events))
            b.add_events(
                events.src[lo:hi], events.dst[lo:hi], events.time[lo:hi]
            )
    return os.fspath(path)


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
def _narrowed_searchsorted(
    time_arr: np.ndarray,
    time_index: np.ndarray,
    stride: int,
    value: int,
    side: str,
) -> int:
    """``searchsorted`` over the full time column touching at most one
    stride block, located via the in-RAM time index."""
    n = time_arr.size
    if n == 0:
        return 0
    i = int(np.searchsorted(time_index, value, side=side))
    lo = max(i - 1, 0) * stride
    hi = min(i * stride + 1, n)
    return lo + int(np.searchsorted(time_arr[lo:hi], value, side=side))


class TcsrFile:
    """Read side of the ``.tcsr`` artifact.

    Arrays are exposed as read-only ``np.memmap`` views created on first
    access — opening a file costs one preamble page plus the JSON table,
    regardless of event count.  Use as a context manager or call
    :meth:`close`; views are invalid afterwards.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        size = os.path.getsize(self.path)
        with open(self.path, "rb") as f:
            head = f.read(PREAMBLE_SIZE)
            if len(head) < PREAMBLE_SIZE:
                raise ValidationError(
                    f"{self.path}: not a temporal-CSR artifact "
                    "(file too short)"
                )
            (magic, version, flags, n_vertices, n_events,
             table_offset, table_len, stride) = _PREAMBLE.unpack(
                head[: _PREAMBLE.size]
            )
            if magic != MAGIC:
                raise ValidationError(
                    f"{self.path}: not a temporal-CSR artifact (bad magic)"
                )
            if version != VERSION:
                raise ValidationError(
                    f"{self.path}: unsupported .tcsr version {version}"
                )
            if not flags & FLAG_FINALIZED:
                raise ValidationError(
                    f"{self.path}: artifact was never finalized "
                    "(builder crashed or is still running?)"
                )
            if table_offset + table_len > size or table_len == 0:
                raise ValidationError(
                    f"{self.path}: truncated artifact (layout table "
                    "extends past end of file)"
                )
            f.seek(table_offset)
            try:
                table = json.loads(f.read(table_len).decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValidationError(
                    f"{self.path}: corrupt layout table ({exc})"
                ) from None
        self.n_vertices = int(n_vertices)
        self.n_events = int(n_events)
        self.time_index_stride = int(stride)
        self.meta: Dict[str, object] = table.get("meta", {})
        self._entries: Dict[str, Dict[str, object]] = {}
        for e in table.get("arrays", ()):
            nbytes = int(
                np.prod(e["shape"], dtype=np.int64)
            ) * np.dtype(str(e["dtype"])).itemsize
            if int(e["offset"]) + nbytes > table_offset:
                raise ValidationError(
                    f"{self.path}: array {e['name']!r} extends past the "
                    "layout table (corrupt artifact)"
                )
            self._entries[str(e["name"])] = e
        missing = set(ARRAY_NAMES) - set(self._entries)
        if missing:
            raise ValidationError(
                f"{self.path}: artifact is missing arrays "
                f"{sorted(missing)}"
            )
        self._views: Dict[str, np.ndarray] = {}
        self._time_index_ram: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def array(self, name: str) -> np.ndarray:
        """A read-only mapped view of one stored array (cached).

        Views page lazily and are frozen at the artifact boundary; they
        are invalid after :meth:`close` — copy to outlive the file.
        """
        arr = self._views.get(name)
        if arr is None:
            e = self._entries.get(name)
            if e is None:
                raise ValidationError(
                    f"{self.path}: no array {name!r} "
                    f"(has {sorted(self._entries)})"
                )
            shape = tuple(int(d) for d in e["shape"])
            dtype = np.dtype(str(e["dtype"]))
            if int(np.prod(shape, dtype=np.int64)) == 0:
                arr = np.empty(shape, dtype=dtype)
                arr.flags.writeable = False
            else:
                arr = np.memmap(
                    self.path, dtype=dtype, mode="r",
                    offset=int(e["offset"]), shape=shape,
                )
            self._views[name] = arr
        # the accessor is the one sanctioned zero-copy boundary of the
        # artifact (documented contract above)
        # lint: disable=mmap-escape
        return freeze_boundary(arr)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Every stored array, keyed by name."""
        return {name: self.array(name) for name in self._entries}

    # ------------------------------------------------------------------
    def _time_index(self) -> np.ndarray:
        if self._time_index_ram is None:
            # tiny (n / stride entries): keep a heap copy so slicing
            # never pages the full time column
            self._time_index_ram = np.array(self.array("time_index"))
        return self._time_index_ram

    def time_slice_indices(self, t_start: int, t_end: int) -> Tuple[int, int]:
        """Event-log index range ``[lo, hi)`` with ``t_start <= t <=
        t_end``, touching at most two stride blocks of the time column."""
        time_arr = self.array("ev_time")
        ti = self._time_index()
        lo = _narrowed_searchsorted(
            time_arr, ti, self.time_index_stride, int(t_start), "left"
        )
        hi = _narrowed_searchsorted(
            time_arr, ti, self.time_index_stride, int(t_end), "right"
        )
        return lo, hi

    def events(self) -> "MappedEventSet":
        """The artifact's event log as a mapped
        :class:`~repro.events.event_set.TemporalEventSet`."""
        return MappedEventSet(
            self.path,
            self.array("ev_src"),
            self.array("ev_dst"),
            self.array("ev_time"),
            self.n_vertices,
            self._time_index(),
            self.time_index_stride,
        )

    def adjacency(self) -> TemporalAdjacency:
        """Both temporal-CSR orientations as mapped arrays.

        The precomputed ``group_start`` masks are trusted (the writer
        derived them once), so no O(nnz) pass runs at open time.
        """
        def orientation(prefix: str) -> TemporalCSR:
            indptr = self.array(f"{prefix}_indptr")
            return TemporalCSR(
                indptr,
                self.array(f"{prefix}_col"),
                self.array(f"{prefix}_time"),
                indptr.size - 1,
                group_start=self.array(f"{prefix}_group_start"),
            )

        return TemporalAdjacency(orientation("in"), orientation("out"))

    # ------------------------------------------------------------------
    def header_info(self) -> Dict[str, object]:
        """The raw preamble fields (shared header-dump shape with
        ``.rankstore``; see ``repro-temporal inspect``)."""
        return {
            "magic": MAGIC.decode(),
            "version": VERSION,
            "finalized": True,
            "n_vertices": self.n_vertices,
            "n_events": self.n_events,
            "time_index_stride": self.time_index_stride,
            "preamble_bytes": PREAMBLE_SIZE,
            "alignment": ALIGNMENT,
        }

    def array_table(self) -> List[Dict[str, object]]:
        """Per-array layout rows (name, dtype, shape, offset, bytes)."""
        rows = []
        for name in self._entries:
            e = self._entries[name]
            nbytes = int(
                np.prod(e["shape"], dtype=np.int64)
            ) * np.dtype(str(e["dtype"])).itemsize
            rows.append(
                {
                    "name": name,
                    "dtype": str(e["dtype"]),
                    "shape": tuple(int(d) for d in e["shape"]),
                    "offset": int(e["offset"]),
                    "bytes": nbytes,
                }
            )
        return rows

    def stored_bytes(self) -> int:
        """Total bytes of all mapped arrays (address space, not RSS)."""
        return sum(int(r["bytes"]) for r in self.array_table())

    def info(self) -> Dict[str, object]:
        """A flat summary for ``repro-temporal inspect``."""
        info: Dict[str, object] = {
            "format": f"tcsr v{VERSION}",
            "vertices": self.n_vertices,
            "events": self.n_events,
            "arrays": len(self._entries),
            "array bytes": self.stored_bytes(),
            "file bytes": os.path.getsize(self.path),
            "time-index entries": len(self._time_index()),
            "time-index stride": self.time_index_stride,
        }
        if self.n_events:
            t = self.array("ev_time")
            info["time span"] = f"[{int(t[0])}, {int(t[-1])}]"
        for key in ("chunk_events", "n_chunks"):
            if key in self.meta:
                info[f"built with {key}"] = self.meta[key]
        return info

    def advise_dontneed(self) -> None:
        """Release resident pages of every open view (advisory)."""
        for arr in self._views.values():
            _drop_pages(arr)

    def close(self) -> None:
        """Release the mappings; all views become invalid."""
        for arr in self._views.values():
            _close_map(arr)
        self._views.clear()

    def __enter__(self) -> "TcsrFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TcsrFile({self.path!r}, vertices={self.n_vertices}, "
            f"events={self.n_events})"
        )


class MappedEventSet(TemporalEventSet):
    """A ``TemporalEventSet`` whose arrays are ``.tcsr``-mapped views.

    Construction is trusted (the artifact writer validated and sorted
    once), so opening is O(1) — no full-array scans.  Pickling carries
    only the artifact path: workers reopen the file and map the same
    pages instead of serializing the arrays.
    """

    __slots__ = ("path", "_time_index", "_stride")

    def __init__(
        self,
        path: PathLike,
        src: np.ndarray,
        dst: np.ndarray,
        time: np.ndarray,
        n_vertices: int,
        time_index: np.ndarray,
        stride: int,
    ) -> None:
        # deliberately NOT calling TemporalEventSet.__init__: its O(n)
        # validation scans (id bounds, monotone timestamps) would page
        # the whole mapped log in; the writer enforced both invariants
        self.src = src
        self.dst = dst
        self.time = time
        self.n_vertices = int(n_vertices)
        self.path = os.fspath(path)
        self._time_index = np.array(time_index)
        self._stride = int(stride)

    def time_slice_indices(self, t_start: int, t_end: int) -> Tuple[int, int]:
        lo = _narrowed_searchsorted(
            self.time, self._time_index, self._stride,
            int(t_start), "left",
        )
        hi = _narrowed_searchsorted(
            self.time, self._time_index, self._stride,
            int(t_end), "right",
        )
        return lo, hi

    def __reduce__(self):
        return (open_events, (self.path,))

    def close(self) -> None:
        """Unmap the event arrays; all views become invalid."""
        for arr in (self.src, self.dst, self.time):
            _close_map(arr)


def open_events(path: PathLike) -> MappedEventSet:
    """Open a ``.tcsr`` artifact's event log as a mapped event set."""
    return TcsrFile(path).events()


def open_adjacency(path: PathLike) -> TemporalAdjacency:
    """Open a ``.tcsr`` artifact as a mapped :class:`TemporalAdjacency`.

    The backing :class:`TcsrFile` mappings stay alive for as long as the
    returned structure's arrays do (numpy owns the maps).
    """
    return TcsrFile(path).adjacency()


def is_tcsr(path: PathLike) -> bool:
    """Whether ``path`` starts with the ``.tcsr`` magic."""
    try:
        with open(path, "rb") as f:
            return f.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
