"""Graph representations.

* :mod:`repro.graph.csr` — plain static CSR (the offline model rebuilds one
  per window).
* :mod:`repro.graph.temporal_csr` — the paper's temporal CSR (Figure 3):
  ``rowA``/``colA``/``timeA`` with adjacencies sorted by neighbor then
  timestamp, plus vectorized window activity/dedup masks and degrees.
* :mod:`repro.graph.multiwindow` — partitioning the window sequence into
  multi-window graphs (Section 4.1) with local vertex compaction.
* :mod:`repro.graph.io` — the out-of-core ``.tcsr`` artifact: a
  memory-mapped temporal CSR built in bounded-memory chunks.
"""

from repro.graph.csr import CSRGraph, build_csr_from_edges
from repro.graph.temporal_csr import TemporalCSR, TemporalAdjacency, WindowView
from repro.graph.io import (
    MappedEventSet,
    TcsrFile,
    TemporalCSRBuilder,
    build_tcsr,
    is_tcsr,
    open_adjacency,
    open_events,
    write_tcsr,
)
from repro.graph.multiwindow import (
    LazyMultiWindowPartition,
    MultiWindowGraph,
    MultiWindowPartition,
)
from repro.graph.balanced import (
    BalancedMultiWindowPartition,
    balanced_boundaries,
    greedy_boundaries,
    window_event_counts,
)

__all__ = [
    "CSRGraph",
    "build_csr_from_edges",
    "TemporalCSR",
    "TemporalAdjacency",
    "WindowView",
    "TemporalCSRBuilder",
    "TcsrFile",
    "MappedEventSet",
    "build_tcsr",
    "write_tcsr",
    "open_events",
    "open_adjacency",
    "is_tcsr",
    "MultiWindowGraph",
    "MultiWindowPartition",
    "LazyMultiWindowPartition",
    "BalancedMultiWindowPartition",
    "balanced_boundaries",
    "greedy_boundaries",
    "window_event_counts",
]
