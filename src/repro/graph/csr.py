"""Static CSR graphs.

The offline execution model reconstructs one of these per window — that
reconstruction cost is precisely what the postmortem representation
amortizes away.  The structure is also the common currency for reference
PageRank implementations and for per-window "compaction" of a temporal CSR.

The graph is directed and *simple*: duplicate (src, dst) pairs in the input
are collapsed (an edge either exists in a window or it does not, regardless
of how many events produced it).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphBuildError
from repro.utils.segments import indptr_to_row_ids, lengths_to_indptr, row_lengths
from repro.utils.validation import check_1d_int, check_same_length

__all__ = ["CSRGraph", "build_csr_from_edges"]


class CSRGraph:
    """A directed graph in compressed-sparse-row form.

    ``indptr`` has ``n_vertices + 1`` entries; ``col[indptr[v]:indptr[v+1]]``
    are the out-neighbors of ``v`` in ascending order with no duplicates.
    """

    __slots__ = ("indptr", "col", "n_vertices")

    def __init__(self, indptr: np.ndarray, col: np.ndarray, n_vertices: int):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.col = np.ascontiguousarray(col, dtype=np.int64)
        self.n_vertices = int(n_vertices)
        if self.indptr.size != self.n_vertices + 1:
            raise GraphBuildError(
                f"indptr size {self.indptr.size} != n_vertices + 1 "
                f"({self.n_vertices + 1})"
            )
        if self.indptr[-1] != self.col.size:
            raise GraphBuildError("indptr[-1] must equal len(col)")

    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return self.col.size

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return row_lengths(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """View of v's out-neighbors."""
        return self.col[self.indptr[v]: self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge (u, v) exists (binary search)."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of all edges."""
        return indptr_to_row_ids(self.indptr), self.col

    def transpose(self) -> "CSRGraph":
        """The reverse graph (in-edges become out-edges)."""
        src, dst = self.edges()
        return build_csr_from_edges(dst, src, self.n_vertices, dedup=False)

    def active_vertices(self) -> np.ndarray:
        """Vertices with at least one incident edge (in either direction)."""
        present = np.zeros(self.n_vertices, dtype=bool)
        src, dst = self.edges()
        present[src] = True
        present[dst] = True
        return np.flatnonzero(present)

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` with unit weights (used
        only by tests for cross-validation)."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.n_edges, dtype=np.float64)
        return csr_matrix(
            (data, self.col, self.indptr),
            shape=(self.n_vertices, self.n_vertices),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n_vertices == other.n_vertices
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.col, other.col)
        )

    def __hash__(self):
        raise TypeError("CSRGraph is not hashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"


def build_csr_from_edges(
    src,
    dst,
    n_vertices: Optional[int] = None,
    *,
    dedup: bool = True,
) -> CSRGraph:
    """Build a CSR graph from parallel (src, dst) arrays.

    Duplicate pairs are collapsed when ``dedup`` is True (the default);
    the per-row adjacency is always sorted ascending.  Fully vectorized:
    lexsort + boundary masks, no Python loop over edges.
    """
    src = check_1d_int(src, "src")
    dst = check_1d_int(dst, "dst")
    check_same_length((src, "src"), (dst, "dst"))

    if n_vertices is None:
        n_vertices = int(max(src.max(), dst.max())) + 1 if src.size else 0
    n_vertices = int(n_vertices)
    if src.size:
        hi = int(max(src.max(), dst.max()))
        if hi >= n_vertices or min(src.min(), dst.min()) < 0:
            raise GraphBuildError(
                f"edge endpoints must lie in [0, {n_vertices})"
            )

    if src.size == 0:
        return CSRGraph(
            np.zeros(n_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            n_vertices,
        )

    order = np.lexsort((dst, src))
    s, d = src[order], dst[order]
    if dedup:
        keep = np.empty(s.size, dtype=bool)
        keep[0] = True
        np.not_equal(s[1:], s[:-1], out=keep[1:])
        keep[1:] |= d[1:] != d[:-1]
        s, d = s[keep], d[keep]

    counts = np.bincount(s, minlength=n_vertices)
    indptr = lengths_to_indptr(counts)
    return CSRGraph(indptr, d, n_vertices)
