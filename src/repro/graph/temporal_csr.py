"""The temporal CSR representation (paper Section 4.1, Figure 3).

One orientation of the structure stores, for every row vertex, its incident
events sorted **by neighbor id, then by timestamp** — exactly the layout of
Figure 3 (``rowA``, ``colA``, ``timeA``).  Because a window is a time
*interval* and each (row, neighbor) group is time-sorted, the events of a
group that are active in a window form a **contiguous run**, which makes
both the activity test and the first-occurrence dedup mask O(nnz)
vectorized operations:

    active[j] = t_start <= timeA[j] <= t_end
    dedup[j]  = active[j] and (group_start[j] or not active[j-1])

``dedup`` selects exactly one event per active (row, neighbor) pair — the
simple-graph edge multiplicity collapse the PageRank kernels need.

:class:`TemporalAdjacency` bundles the two orientations (in-edges for the
pull-style SpMV, out-edges for per-window out-degrees) built from one event
set; :class:`WindowView` packages everything a kernel needs for one window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.errors import GraphBuildError
from repro.graph.csr import CSRGraph, build_csr_from_edges
from repro.utils.arrays import heap_and_mapped_bytes
from repro.utils.segments import (
    indptr_to_row_ids,
    lengths_to_indptr,
    segment_count,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.events.event_set import TemporalEventSet
    from repro.events.windows import Window

__all__ = ["TemporalCSR", "TemporalAdjacency", "WindowView"]


class TemporalCSR:
    """One orientation of the temporal CSR structure.

    Attributes
    ----------
    indptr:
        ``rowA`` — per-row event ranges, ``n_rows + 1`` entries.
    col:
        ``colA`` — neighbor vertex id per event.
    time:
        ``timeA`` — timestamp per event.
    group_start:
        Boolean per event: True where a new (row, neighbor) group begins.
        Precomputed once at build; every window mask derives from it.
    """

    __slots__ = ("indptr", "col", "time", "group_start", "n_rows", "_row_ids")

    def __init__(
        self,
        indptr: np.ndarray,
        col: np.ndarray,
        time: np.ndarray,
        n_rows: int,
        group_start: Optional[np.ndarray] = None,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.col = np.ascontiguousarray(col, dtype=np.int64)
        self.time = np.ascontiguousarray(time, dtype=np.int64)
        self.n_rows = int(n_rows)
        if self.indptr.size != self.n_rows + 1:
            raise GraphBuildError("indptr size must be n_rows + 1")
        if self.indptr[-1] != self.col.size or self.col.size != self.time.size:
            raise GraphBuildError("col/time must both have indptr[-1] entries")

        self._row_ids: Optional[np.ndarray] = None
        if group_start is not None:
            # precomputed mask (e.g. attached from a shared-memory arena):
            # trust it instead of re-deriving — the O(nnz) recompute is
            # exactly the work zero-copy attachment exists to avoid
            group_start = np.ascontiguousarray(group_start, dtype=np.bool_)
            if group_start.size != self.col.size:
                raise GraphBuildError(
                    "group_start must have one entry per stored event"
                )
            self.group_start = group_start
        else:
            self.group_start = self._compute_group_starts()

    def _compute_group_starts(self) -> np.ndarray:
        nnz = self.col.size
        gs = np.zeros(nnz, dtype=bool)
        if nnz == 0:
            return gs
        gs[0] = True
        # new group when the neighbor changes...
        np.not_equal(self.col[1:], self.col[:-1], out=gs[1:])
        # ...or when a new row starts (row boundaries from indptr)
        boundaries = self.indptr[1:-1]
        boundaries = boundaries[boundaries < nnz]
        gs[boundaries] = True
        return gs

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Stored event count Σ|Ew| (>= number of distinct edges)."""
        return self.col.size

    @property
    def n_groups(self) -> int:
        """Number of distinct (row, neighbor) pairs."""
        return int(self.group_start.sum())

    def row_ids(self) -> np.ndarray:
        """Per-event row id (cached expansion of ``indptr``)."""
        if self._row_ids is None:
            self._row_ids = indptr_to_row_ids(self.indptr)
        return self._row_ids

    # ------------------------------------------------------------------
    # window masks — the heart of the representation
    # ------------------------------------------------------------------
    def active_mask(
        self, t_start: int, t_end: int, workspace=None
    ) -> np.ndarray:
        """Events with ``t_start <= t <= t_end``.

        With a :class:`~repro.pagerank.workspace.Workspace` the mask is
        written into reusable scratch (valid until the workspace's next
        ``tcsr.*`` request) instead of freshly allocated.
        """
        if workspace is None:
            return (self.time >= t_start) & (self.time <= t_end)
        nnz = self.col.size
        active = workspace.buffer("tcsr.active", (nnz,), np.bool_)
        tmp = workspace.buffer("tcsr.tmp", (nnz,), np.bool_)
        np.greater_equal(self.time, t_start, out=active)
        np.less_equal(self.time, t_end, out=tmp)
        active &= tmp
        return active

    def dedup_mask(
        self,
        t_start: int,
        t_end: int,
        active: Optional[np.ndarray] = None,
        workspace=None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """First active event of each (row, neighbor) group in the window.

        Selects exactly one representative per active simple edge.  Relies
        on per-group time-sortedness: active events in a group are
        contiguous, so the representative is the event whose predecessor is
        outside the window or in a different group.

        ``workspace`` recycles the construction scratch; ``out`` (shape
        ``(nnz,)`` bool) additionally receives the result in place for
        callers that treat the mask itself as transient.
        """
        if active is None:
            active = self.active_mask(t_start, t_end, workspace=workspace)
        if out is None:
            dedup = active.copy()
        else:
            np.copyto(out, active)
            dedup = out
        if dedup.size == 0:
            return dedup
        if workspace is None:
            inherited = ~self.group_start[1:] & active[:-1]
            dedup[1:] &= ~inherited
        else:
            keep = workspace.buffer(
                "tcsr.keep", (dedup.size - 1,), np.bool_
            )
            # keep = ~inherited = group_start[1:] | ~active[:-1]
            np.logical_not(self.group_start[1:], out=keep)
            keep &= active[:-1]
            np.logical_not(keep, out=keep)
            dedup[1:] &= keep
        return dedup

    def degrees(
        self,
        t_start: int,
        t_end: int,
        dedup: Optional[np.ndarray] = None,
        workspace=None,
    ) -> np.ndarray:
        """Per-row count of distinct active neighbors in the window."""
        cast = None
        if dedup is None:
            out = None
            if workspace is not None:
                nnz = self.col.size
                out = workspace.buffer("tcsr.degrees", (nnz,), np.bool_)
                cast = workspace.buffer("tcsr.cast", (nnz,), np.int64)
            dedup = self.dedup_mask(
                t_start, t_end, workspace=workspace, out=out
            )
        elif workspace is not None:
            cast = workspace.buffer(
                "tcsr.cast", (self.col.size,), np.int64
            )
        return segment_count(dedup, self.indptr, cast_buffer=cast)

    def compact_window(self, t_start: int, t_end: int) -> CSRGraph:
        """Materialize the window's simple graph as a plain CSR (row ->
        neighbor).  Used by tests and by per-window precompaction."""
        dedup = self.dedup_mask(t_start, t_end)
        rows = self.row_ids()[dedup]
        cols = self.col[dedup]
        return build_csr_from_edges(rows, cols, self.n_rows, dedup=False)

    def _arrays(self) -> tuple:
        return (self.indptr, self.col, self.time, self.group_start)

    def memory_bytes(self) -> int:
        """Heap-allocated bytes (64-bit encoding, as in the paper).

        Memory-mapped arrays are *excluded*: their pages are file-backed
        and reclaimable, so counting them as allocated would overstate
        the footprint of an out-of-core graph by orders of magnitude.
        See :meth:`mapped_bytes` for the address-space side.
        """
        heap, _ = heap_and_mapped_bytes(self._arrays())
        return heap

    def mapped_bytes(self) -> int:
        """Bytes backed by memory-mapped files (address space, not RSS)."""
        _, mapped = heap_and_mapped_bytes(self._arrays())
        return mapped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalCSR(n_rows={self.n_rows}, nnz={self.nnz}, "
            f"groups={self.n_groups})"
        )


def _build_orientation(
    rows: np.ndarray, cols: np.ndarray, times: np.ndarray, n_rows: int
) -> TemporalCSR:
    """Sort events by (row, neighbor, time) and pack into a TemporalCSR."""
    if rows.size:
        order = np.lexsort((times, cols, rows))
        rows, cols, times = rows[order], cols[order], times[order]
    counts = np.bincount(rows, minlength=n_rows) if rows.size else np.zeros(
        n_rows, dtype=np.int64
    )
    indptr = lengths_to_indptr(counts)
    return TemporalCSR(indptr, cols, times, n_rows)


class TemporalAdjacency:
    """Both orientations of the temporal CSR for one event set.

    * ``in_csr`` — rows are **destinations**, neighbors are sources: the
      pull-style PageRank iteration is a segment-sum over its rows.
    * ``out_csr`` — rows are **sources**, neighbors are destinations: yields
      per-window out-degrees |Γ+(u)|.
    """

    __slots__ = ("in_csr", "out_csr", "n_vertices")

    def __init__(self, in_csr: TemporalCSR, out_csr: TemporalCSR) -> None:
        if in_csr.n_rows != out_csr.n_rows:
            raise GraphBuildError("orientations must share the vertex count")
        if in_csr.nnz != out_csr.nnz:
            raise GraphBuildError("orientations must store the same events")
        self.in_csr = in_csr
        self.out_csr = out_csr
        self.n_vertices = in_csr.n_rows

    @classmethod
    def from_events(cls, events: "TemporalEventSet") -> "TemporalAdjacency":
        """Build both orientations from a temporal event set — the single
        O(|Events| log |Events|) construction step of the postmortem model."""
        return cls.from_arrays(
            events.src, events.dst, events.time, events.n_vertices
        )

    @classmethod
    def from_arrays(
        cls, src, dst, time, n_vertices: int
    ) -> "TemporalAdjacency":
        """Build both orientations from raw (src, dst, time) arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        time = np.asarray(time, dtype=np.int64)
        in_csr = _build_orientation(dst, src, time, n_vertices)
        out_csr = _build_orientation(src, dst, time, n_vertices)
        return cls(in_csr, out_csr)

    @classmethod
    def open(cls, path) -> "TemporalAdjacency":
        """Open a ``.tcsr`` artifact as mmap-backed orientations.

        O(1) in the event count: arrays page in lazily as windows touch
        them.  See :mod:`repro.graph.io` for the artifact format.
        """
        from repro.graph.io import open_adjacency

        return open_adjacency(path)

    @property
    def nnz(self) -> int:
        return self.in_csr.nnz

    def window_view(self, window: "Window", workspace=None) -> "WindowView":
        """Precompute everything one PageRank run needs for ``window``.

        ``workspace`` recycles the Θ(nnz) construction scratch across the
        windows of one partial-init chain (the view's own persistent
        arrays are still freshly owned).
        """
        return WindowView(self, window, workspace=workspace)

    def memory_bytes(self) -> int:
        """Total heap bytes of both orientations (mapped arrays excluded)."""
        return self.in_csr.memory_bytes() + self.out_csr.memory_bytes()

    def mapped_bytes(self) -> int:
        """Total file-mapped bytes of both orientations."""
        return self.in_csr.mapped_bytes() + self.out_csr.mapped_bytes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalAdjacency(n_vertices={self.n_vertices}, nnz={self.nnz})"
        )


class WindowView:
    """Per-window activity data derived from a :class:`TemporalAdjacency`.

    Holds the in-orientation dedup mask (which edges a pull iteration
    traverses), per-vertex out-degrees, the active vertex set V_i, and
    cached derived quantities.  Cost of construction is Θ(nnz) — the
    per-window traversal the multi-window partitioning shrinks.
    """

    __slots__ = (
        "adjacency",
        "window",
        "in_dedup",
        "out_degrees",
        "in_degrees",
        "active_vertices_mask",
        "n_active_vertices",
        "n_active_edges",
        "_inv_out",
        "_workspace",
        "_compact_pull",
    )

    def __init__(
        self,
        adjacency: TemporalAdjacency,
        window: "Window",
        workspace=None,
    ) -> None:
        self.adjacency = adjacency
        self.window = window
        self._workspace = workspace
        ts, te = window.t_start, window.t_end

        in_csr, out_csr = adjacency.in_csr, adjacency.out_csr
        self.in_dedup = in_csr.dedup_mask(ts, te, workspace=workspace)
        cast = (
            workspace.buffer("tcsr.cast", (in_csr.col.size,), np.int64)
            if workspace is not None
            else None
        )
        self.in_degrees = segment_count(
            self.in_dedup, in_csr.indptr, cast_buffer=cast
        )
        self.out_degrees = out_csr.degrees(ts, te, workspace=workspace)

        active = (self.in_degrees > 0) | (self.out_degrees > 0)
        self.active_vertices_mask = active
        self.n_active_vertices = int(active.sum())
        self.n_active_edges = int(self.in_dedup.sum())
        self._inv_out: Optional[np.ndarray] = None
        self._compact_pull = None

    @property
    def n_vertices(self) -> int:
        """|V_i| — vertices incident to at least one active edge."""
        return self.n_active_vertices

    def inverse_out_degrees(self) -> np.ndarray:
        """1 / |Γ+(u)| with zeros for dangling/inactive vertices.

        Without a construction workspace the Θ(n) result is computed once
        and cached on the view.  With one, it is recomputed into pooled
        scratch on every call (no per-window allocation inside a
        partial-init chain) and stays valid until the next
        ``inverse_out_degrees`` call on *any* view sharing the workspace
        — kernels consume it within a single solve, which never
        interleaves with another view's call.
        """
        ws = self._workspace
        if ws is not None:
            n = self.adjacency.n_vertices
            inv = ws.zeros("view.inv_out", (n,), np.float64)
            nz = ws.buffer("view.inv_nz", (n,), np.bool_)
            np.greater(self.out_degrees, 0, out=nz)
            inv[nz] = 1.0 / self.out_degrees[nz]
            return inv
        if self._inv_out is None:
            inv = np.zeros(self.adjacency.n_vertices, dtype=np.float64)
            nz = self.out_degrees > 0
            inv[nz] = 1.0 / self.out_degrees[nz]
            self._inv_out = inv
        return self._inv_out

    def compact_pull(self, workspace=None):
        """The window's active deduped in-edges packed into a dense
        ``(indptr_c, col_c)`` pair (:class:`~repro.pagerank.compaction.
        CompactedPull`), preserving within-row order so iterating over the
        packed arrays is bitwise-identical to masking the full structure.

        ``workspace`` defaults to the view's construction workspace; with
        one, the packed arrays are pooled-scratch slices valid for the
        current solve.  Without one, the result is owned and cached.
        """
        # lazy import: the compaction engine lives with the kernels it
        # feeds, and the graph layer must stay importable without them
        from repro.pagerank.compaction import compact_pull

        ws = workspace if workspace is not None else self._workspace
        if ws is not None:
            return compact_pull(self, workspace=ws)
        if self._compact_pull is None:
            self._compact_pull = compact_pull(self)
        return self._compact_pull

    def pull_sources(self) -> Tuple[np.ndarray, np.ndarray]:
        """(dedup mask, source ids) for the pull iteration."""
        return self.in_dedup, self.adjacency.in_csr.col

    def compact_graph(self) -> CSRGraph:
        """The window's simple out-graph as a plain CSR (for reference
        implementations and the offline model comparison)."""
        return self.adjacency.out_csr.compact_window(
            self.window.t_start, self.window.t_end
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowView(window={self.window.index}, "
            f"|V|={self.n_active_vertices}, |E|={self.n_active_edges})"
        )
