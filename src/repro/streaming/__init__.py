"""The streaming execution model (paper Section 3.3.2).

A STINGER-like dynamic graph structure holds a single "now" graph; batches
of edge insertions and expirations advance the sliding window, and an
incremental PageRank (Riedy, IPDPSW 2016) updates the previous solution
instead of recomputing from scratch.

This is the baseline the postmortem model is measured against, implemented
with the same batched update semantics the paper used ("the only
modifications to STINGER ... updates in batches equivalent to the
postmortem code").
"""

from repro.streaming.edge_blocks import EdgeBlockAdjacency
from repro.streaming.stinger import StreamingGraph
# re-exported from its new home for compatibility; the solver itself
# lives in repro.pagerank (streaming depends on pagerank, not the reverse)
from repro.pagerank.incremental import incremental_pagerank
from repro.streaming.driver import StreamingDriver
from repro.streaming.delta import delta_incremental_pagerank
from repro.streaming.estimators import HeadTailDegreeEstimator, EdgeSampleTriangleCounter

__all__ = [
    "EdgeBlockAdjacency",
    "StreamingGraph",
    "incremental_pagerank",
    "StreamingDriver",
    "delta_incremental_pagerank",
    "HeadTailDegreeEstimator",
    "EdgeSampleTriangleCounter",
]
