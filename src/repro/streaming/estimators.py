"""Streaming estimators from the paper's related work (Section 3.2).

Two sampling estimators the paper cites as prior art on dynamic graphs,
implemented over the same event stream the streaming model consumes:

* :class:`HeadTailDegreeEstimator` — Stolman & Matulef's HyperHeadTail
  idea: estimate the degree distribution of a streamed multigraph by
  tracking a uniform sample of vertices exactly (the "head" resolves the
  low-degree mass, which dominates power-law graphs) while a
  reservoir-style tail sample catches high-degree vertices.  This
  implementation keeps an exact per-vertex counter for a sampled vertex
  subset and scales up — the estimator's core accuracy/memory tradeoff.
* :class:`EdgeSampleTriangleCounter` — Han & Sethu's edge
  sample-and-discard scheme: keep each streamed edge in a fixed-size
  uniform reservoir; on arrival of an edge, count the triangles it closes
  with reservoir edges and scale by the inverse sampling probability of
  the two reservoir slots.

Both support the window model through :meth:`reset` (re-arm for a new
window) and are validated against exact computations in the tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["HeadTailDegreeEstimator", "EdgeSampleTriangleCounter"]


class HeadTailDegreeEstimator:
    """Degree-distribution estimation from an edge stream by vertex
    sampling.

    Parameters
    ----------
    n_vertices:
        Vertex-id space of the stream.
    sample_rate:
        Fraction of vertices tracked exactly (the "head" sample).
    seed:
        Sampling seed (the vertex sample is fixed per instance).
    """

    def __init__(
        self, n_vertices: int, sample_rate: float = 0.2, seed: int = 0
    ) -> None:
        if n_vertices <= 0:
            raise ValidationError("n_vertices must be > 0")
        if not (0.0 < sample_rate <= 1.0):
            raise ValidationError("sample_rate must be in (0, 1]")
        self.n_vertices = n_vertices
        self.sample_rate = float(sample_rate)
        rng = np.random.default_rng(seed)
        k = max(1, int(round(n_vertices * sample_rate)))
        self._sampled = np.zeros(n_vertices, dtype=bool)
        self._sampled[rng.choice(n_vertices, size=k, replace=False)] = True
        self._k = k
        self._degree = np.zeros(n_vertices, dtype=np.int64)
        self.edges_seen = 0

    def reset(self) -> None:
        """Clear the counters for a new window (sample stays fixed)."""
        self._degree[:] = 0
        self.edges_seen = 0

    def observe_batch(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Consume a batch of streamed (src, dst) edges."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.size != dst.size:
            raise ValidationError("batch arrays must have equal length")
        hit_s = self._sampled[src]
        hit_d = self._sampled[dst]
        np.add.at(self._degree, src[hit_s], 1)
        np.add.at(self._degree, dst[hit_d], 1)
        self.edges_seen += src.size

    def estimate_distribution(self, max_degree: Optional[int] = None):
        """Estimated counts of vertices per (undirected multigraph)
        degree, scaled up by the inverse sampling rate.

        Returns ``(degrees, estimated_counts)``.
        """
        deg = self._degree[self._sampled]
        if max_degree is None:
            max_degree = int(deg.max()) if deg.size else 0
        hist = np.bincount(
            np.minimum(deg, max_degree), minlength=max_degree + 1
        ).astype(np.float64)
        scale = self.n_vertices / self._k
        return np.arange(max_degree + 1), hist * scale

    def estimate_mean_degree(self) -> float:
        """Estimated mean (multigraph) degree over all vertices."""
        deg = self._degree[self._sampled]
        return float(deg.mean()) if deg.size else 0.0


class EdgeSampleTriangleCounter:
    """Triangle counting from an edge stream with a fixed-size reservoir.

    The classic reservoir-sampling estimator: edge t is kept with
    probability ``min(1, capacity / t)``; the count of triangles the
    incoming edge closes with two reservoir edges, weighted by the inverse
    probability that both wedge edges survived, is an unbiased estimate of
    the triangles the incoming edge closes in the full stream.
    """

    def __init__(self, capacity: int = 1_000, seed: int = 0) -> None:
        if capacity < 2:
            raise ValidationError("capacity must be >= 2")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self.reset()

    def reset(self) -> None:
        """Clear reservoir and estimate for a new window."""
        self._adjacency: Dict[int, set] = {}
        self._slots: list[Tuple[int, int]] = []
        self._t = 0
        self.estimate = 0.0

    def _survival_prob(self) -> float:
        t = self._t
        if t <= self.capacity:
            return 1.0
        return self.capacity / t

    def _add_edge(self, u: int, v: int) -> None:
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)
        self._slots.append((u, v))

    def _remove_slot(self, index: int) -> None:
        u, v = self._slots[index]
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        last = self._slots.pop()
        if index < len(self._slots):
            self._slots[index] = last

    def observe(self, u: int, v: int) -> None:
        """Consume one streamed (undirected) edge."""
        if u == v:
            return
        self._t += 1
        # count wedges closed with reservoir edges, inverse-weighted by
        # the probability both wedge edges are present
        nbr_u = self._adjacency.get(u, ())
        nbr_v = self._adjacency.get(v, ())
        common = (
            len(set(nbr_u) & set(nbr_v))
            if nbr_u and nbr_v
            else 0
        )
        if common:
            p = self._survival_prob()
            self.estimate += common / (p * p)

        # reservoir update
        if len(self._slots) < self.capacity:
            self._add_edge(u, v)
        else:
            j = int(self._rng.integers(0, self._t))
            if j < self.capacity:
                self._remove_slot(j)
                self._add_edge(u, v)

    def observe_batch(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Consume a batch of streamed edges in order."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.size != dst.size:
            raise ValidationError("batch arrays must have equal length")
        for u, v in zip(src.tolist(), dst.tolist()):
            self.observe(u, v)

    @property
    def triangles(self) -> float:
        """Current triangle-count estimate."""
        return self.estimate
