"""Backwards-compatibility shim.

The warm-startable power iteration moved to
:mod:`repro.pagerank.incremental` — it is a general simple-graph solver
(the offline model cold-starts it), so ``streaming`` depends on
``pagerank`` rather than the reverse.  Import from there.
"""

from repro.pagerank.incremental import csr_pull_arrays, incremental_pagerank

__all__ = ["incremental_pagerank", "csr_pull_arrays"]
