"""Frontier-based delta incremental PageRank (the paper's eq. 3).

Riedy's streaming update solves for the *correction* Δx induced by a batch
of edge changes instead of re-iterating the whole vector:

    Δx_{k+1} = alpha' A'^T D'^-1 Δx_k + r,
    r = (1 - alpha') v' - (I - alpha' A'^T D'^-1) x_prev

(with alpha' the damping factor and primes denoting the updated graph).
Because ``r`` is non-zero only near the changed edges, the correction can
be propagated with a **frontier**: only vertices whose pending residual
exceeds a per-vertex threshold push their correction to out-neighbors.
When the change is small relative to the graph, the touched-edge count is
far below a full power iteration's — the streaming model's one real
computational edge, measured by the ablation bench.

The final vector is identical (within tolerance) to the from-scratch
solve, which the tests verify.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.pagerank.config import PagerankConfig
from repro.pagerank.result import PagerankResult, WorkStats
from repro.utils.segments import segment_sum

__all__ = ["delta_incremental_pagerank"]


def _pagerank_operator_residual(
    graph: CSRGraph,
    x: np.ndarray,
    mask: np.ndarray,
    n_active: int,
    config: PagerankConfig,
    inv_out: np.ndarray,
    in_indptr: np.ndarray,
    in_col: np.ndarray,
    dangling: np.ndarray,
) -> np.ndarray:
    """r = F(x) - x, the full residual of the updated graph's operator."""
    damping = config.damping
    w = x * inv_out
    y = segment_sum(w[in_col], in_indptr)
    y *= damping
    if config.dangling == "uniform":
        dmass = float(x[dangling].sum())
        if dmass:
            y[mask] += damping * dmass / n_active
    y[mask] += config.alpha / n_active
    y[~mask] = 0.0
    return y - x


def delta_incremental_pagerank(
    graph: CSRGraph,
    prev_values: np.ndarray,
    config: PagerankConfig = PagerankConfig(),
    active: Optional[np.ndarray] = None,
) -> PagerankResult:
    """Update ``prev_values`` to the PageRank of ``graph`` by propagating
    residual corrections through a frontier.

    Parameters
    ----------
    graph:
        The *updated* simple graph (post edge insertions/expirations).
    prev_values:
        The previous window's converged vector (any per-vertex vector
        works; the farther it is from the fixed point, the more work the
        frontier does).
    active:
        Active-vertex mask of the updated graph.

    Notes
    -----
    The frontier push uses the classic Gauss–Southwell style rule: a
    vertex with pending residual ``|r[u]| > tolerance / n_active`` pushes
    ``damping * r[u] / outdeg(u)`` to each out-neighbor.  Terminates when
    the total pending residual mass drops below the configured tolerance.
    """
    n = graph.n_vertices
    if active is None:
        mask = np.zeros(n, dtype=bool)
        src, dst = graph.edges()
        mask[src] = True
        mask[dst] = True
    else:
        mask = np.asarray(active, dtype=bool)
    n_active = int(mask.sum())
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n), iterations=0, converged=True, residual=0.0
        )

    prev = np.asarray(prev_values, dtype=np.float64)
    if prev.shape != (n,):
        raise ValidationError("prev_values must be a per-vertex vector")

    out_deg = graph.out_degrees()
    inv_out = np.zeros(n)
    nz = out_deg > 0
    inv_out[nz] = 1.0 / out_deg[nz]
    tr = graph.transpose()
    in_indptr, in_col = tr.indptr, tr.col
    dangling = mask & ~nz

    # rebase the previous vector onto the new active set
    x = np.where(mask, prev, 0.0)
    total = x.sum()
    if total <= 0:
        x = np.where(mask, 1.0 / n_active, 0.0)
    else:
        x *= 1.0 / total

    # initial residual of the updated operator at the warm start
    r = _pagerank_operator_residual(
        graph, x, mask, n_active, config, inv_out, in_indptr, in_col,
        dangling,
    )

    damping = config.damping
    threshold = config.tolerance / max(n_active, 1)
    work = WorkStats()
    it = 0
    while it < config.max_iterations:
        pending = np.abs(r)
        frontier = np.flatnonzero(pending > threshold)
        res_mass = float(pending.sum())
        if res_mass < config.tolerance or frontier.size == 0:
            return PagerankResult(x, it, True, res_mass, work)
        it += 1

        push = r[frontier]
        x[frontier] += push
        r[frontier] = 0.0
        # propagate the pushed correction to out-neighbors: each frontier
        # vertex u adds damping * push[u] / outdeg(u) to r[v] for (u, v)
        shares = push * inv_out[frontier] * damping
        # expand frontier adjacency vectorized
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        lens = ends - starts
        if lens.sum() > 0:
            flat_targets = np.concatenate(
                [graph.col[s:e] for s, e in zip(starts, ends)]
            ) if frontier.size < 1024 else _gather_ranges(graph.col, starts, ends)
            flat_shares = np.repeat(shares, lens)
            np.add.at(r, flat_targets, flat_shares)
        if config.dangling == "uniform":
            dmass = float(push[dangling[frontier]].sum())
            if dmass:
                r[mask] += damping * dmass / n_active
        r[~mask] = 0.0

        work.iterations += 1
        work.edge_traversals += int(lens.sum())
        work.active_edge_traversals += int(lens.sum())
        work.vertex_ops += frontier.size

    res_mass = float(np.abs(r).sum())
    return PagerankResult(x, it, res_mass < config.tolerance, res_mass, work)


def _gather_ranges(col: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Vectorized concatenation of ``col[s:e]`` slices."""
    lens = ends - starts
    total = int(lens.sum())
    out_idx = np.repeat(starts - np.concatenate([[0], np.cumsum(lens)[:-1]]),
                        lens)
    return col[np.arange(total) + out_idx]
