"""A STINGER-like edge-block adjacency structure.

STINGER stores each vertex's adjacency as a linked list of fixed-size edge
blocks so insertions are O(1) amortized and deletions compact in place.  We
model the same structure: per-vertex Python lists of NumPy blocks, each
holding ``(neighbor, timestamp)`` entries with a fill counter.  The
structure is a *multigraph* — the same (u, v) pair may hold several entries
with different timestamps, and the simple edge exists while at least one
entry is live — exactly the semantics the sliding-window model needs
(an event inserted at t expires when the window start passes t).

The maintenance cost of this structure under updates is an intrinsic part
of the streaming baseline the paper measures against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.utils.segments import lengths_to_indptr

__all__ = ["EdgeBlock", "EdgeBlockAdjacency"]

DEFAULT_BLOCK_SIZE = 64


class EdgeBlock:
    """One fixed-capacity block of (neighbor, timestamp) entries."""

    __slots__ = ("nbr", "time", "fill")

    def __init__(self, capacity: int) -> None:
        self.nbr = np.empty(capacity, dtype=np.int64)
        self.time = np.empty(capacity, dtype=np.int64)
        self.fill = 0

    @property
    def capacity(self) -> int:
        return self.nbr.size

    @property
    def space(self) -> int:
        return self.capacity - self.fill

    def append(self, nbrs: np.ndarray, times: np.ndarray) -> int:
        """Append up to ``space`` entries; returns how many were taken."""
        take = min(self.space, nbrs.size)
        if take:
            self.nbr[self.fill: self.fill + take] = nbrs[:take]
            self.time[self.fill: self.fill + take] = times[:take]
            self.fill += take
        return take

    def compact_keep(self, keep: np.ndarray) -> None:
        """Keep only the flagged live entries, preserving order."""
        kept = int(keep.sum())
        if kept != self.fill:
            self.nbr[:kept] = self.nbr[: self.fill][keep]
            self.time[:kept] = self.time[: self.fill][keep]
            self.fill = kept

    def live(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.nbr[: self.fill], self.time[: self.fill]


class EdgeBlockAdjacency:
    """Per-vertex edge-block lists with batch insert and time-based expiry.

    Update counters (``entries_inserted``, ``entries_expired``,
    ``blocks_allocated``) feed the streaming model's cost accounting.
    """

    def __init__(self, n_vertices: int, block_size: int = DEFAULT_BLOCK_SIZE):
        if n_vertices < 0:
            raise ValidationError("n_vertices must be >= 0")
        if block_size <= 0:
            raise ValidationError("block_size must be > 0")
        self.n_vertices = int(n_vertices)
        self.block_size = int(block_size)
        self._blocks: List[List[EdgeBlock]] = [[] for _ in range(n_vertices)]
        # per-vertex minimum live timestamp; expiry scans only vertices whose
        # minimum falls below the new window start (STINGER-style ageing).
        self._min_time = np.full(n_vertices, np.iinfo(np.int64).max)
        self._n_entries = 0
        self.entries_inserted = 0
        self.entries_expired = 0
        self.blocks_allocated = 0

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Live multigraph entries (events currently in the window)."""
        return self._n_entries

    def vertex_entries(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated live (neighbors, timestamps) of vertex ``u``."""
        blocks = self._blocks[u]
        if not blocks:
            return (np.empty(0, dtype=np.int64),) * 2
        nbrs = np.concatenate([b.live()[0] for b in blocks])
        times = np.concatenate([b.live()[1] for b in blocks])
        return nbrs, times

    def out_degree(self, u: int) -> int:
        """Number of *distinct* live out-neighbors of ``u``."""
        nbrs, _ = self.vertex_entries(u)
        return int(np.unique(nbrs).size)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert_batch(self, src: np.ndarray, dst: np.ndarray, time: np.ndarray):
        """Insert a batch of events, grouped per source vertex."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        time = np.asarray(time, dtype=np.int64)
        if not (src.size == dst.size == time.size):
            raise ValidationError("batch arrays must have equal length")
        if src.size == 0:
            return
        if src.min() < 0 or src.max() >= self.n_vertices:
            raise ValidationError("source vertex out of range")
        if dst.min() < 0 or dst.max() >= self.n_vertices:
            raise ValidationError("destination vertex out of range")

        order = np.argsort(src, kind="stable")
        s, d, t = src[order], dst[order], time[order]
        # contiguous runs per source vertex
        starts = np.flatnonzero(np.r_[True, s[1:] != s[:-1]])
        ends = np.r_[starts[1:], s.size]
        for lo, hi in zip(starts, ends):
            self._insert_vertex(int(s[lo]), d[lo:hi], t[lo:hi])
        self._n_entries += src.size
        self.entries_inserted += src.size

    def _insert_vertex(self, u: int, nbrs: np.ndarray, times: np.ndarray):
        blocks = self._blocks[u]
        pos = 0
        if blocks and blocks[-1].space:
            pos += blocks[-1].append(nbrs, times)
        while pos < nbrs.size:
            block = EdgeBlock(self.block_size)
            self.blocks_allocated += 1
            blocks.append(block)
            pos += block.append(nbrs[pos:], times[pos:])
        if times.size:
            self._min_time[u] = min(self._min_time[u], int(times.min()))

    def expire_before(self, t_cut: int) -> int:
        """Remove every entry with ``timestamp < t_cut``; returns count.

        Only vertices whose cached minimum timestamp falls below the cut are
        scanned, mimicking STINGER's ability to age out edges without a full
        structure sweep.
        """
        stale = np.flatnonzero(self._min_time < t_cut)
        removed = 0
        for u in stale:
            blocks = self._blocks[u]
            new_min = np.iinfo(np.int64).max
            for block in blocks:
                nbrs, times = block.live()
                keep = times >= t_cut
                dropped = int(block.fill - keep.sum())
                if dropped:
                    block.compact_keep(keep)
                    removed += dropped
                if block.fill:
                    new_min = min(new_min, int(block.time[: block.fill].min()))
            self._blocks[u] = [b for b in blocks if b.fill]
            self._min_time[u] = new_min
        self._n_entries -= removed
        self.entries_expired += removed
        return removed

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All live entries as flat (src, dst) arrays (with multiplicity)."""
        srcs, dsts = [], []
        for u in range(self.n_vertices):
            nbrs, _ = self.vertex_entries(u)
            if nbrs.size:
                srcs.append(np.full(nbrs.size, u, dtype=np.int64))
                dsts.append(nbrs)
        if not srcs:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(srcs), np.concatenate(dsts)

    def snapshot_csr(self):
        """The current *simple* graph as a CSR (dedup over live entries)."""
        from repro.graph.csr import build_csr_from_edges

        src, dst = self.snapshot_arrays()
        return build_csr_from_edges(src, dst, self.n_vertices, dedup=True)

    def check_invariants(self) -> None:
        """Internal consistency check used by tests and fault injection."""
        count = 0
        for u in range(self.n_vertices):
            for block in self._blocks[u]:
                if not (0 <= block.fill <= block.capacity):
                    raise ValidationError(
                        f"block of vertex {u} has invalid fill {block.fill}"
                    )
                count += block.fill
                _, times = block.live()
                if times.size and self._min_time[u] > times.min():
                    raise ValidationError(
                        f"min-time cache of vertex {u} is stale"
                    )
        if count != self._n_entries:
            raise ValidationError(
                f"entry counter {self._n_entries} != actual {count}"
            )
