"""The streaming execution-model driver.

Windows are processed strictly in order.  For each window the driver:

1. advances the STINGER-like structure (batch insert of newly streamed
   events, expiry of events that left the window),
2. snapshots the current simple graph (the structure is update-oriented;
   the PageRank pull needs consolidated adjacency),
3. runs the incremental PageRank warm-started from the previous window.

The phase breakdown (``update`` / ``snapshot`` / ``pagerank``) quantifies
the streaming model's structural costs that Figure 5 compares against
offline and postmortem.

The warm-start chain makes window ``i`` depend on window ``i-1``, so the
model's dependence structure admits only the ``serial`` executor — the
driver rejects any other :class:`~repro.runtime.context.DriverContext`
choice at construction.  Sinks and progress work exactly as in the other
models: with ``value_sink=RankStoreWriter.write_window`` a streaming run
feeds the serving layer window by window.
"""

from __future__ import annotations

from typing import Optional

from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.errors import ValidationError
from repro.models.base import RunResult, WindowResult
from repro.pagerank.config import PagerankConfig
from repro.programs.registry import resolve_program
from repro.runtime.base import record_run_metadata
from repro.runtime.context import DriverContext, RunScope
from repro.runtime.execution import require_executor
from repro.runtime.sinks import chain_sinks
from repro.streaming.stinger import StreamingGraph

__all__ = ["StreamingDriver"]


class StreamingDriver:
    """Runs Algorithm 1 under the streaming model."""

    model_name = "streaming"
    supported_executors = ("serial",)

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        config: PagerankConfig = PagerankConfig(),
        block_size: int = 64,
        engine: str = "warm",
        *,
        context: Optional[DriverContext] = None,
        program=None,
    ) -> None:
        if engine not in ("warm", "delta"):
            raise ValueError(
                f"engine must be 'warm' or 'delta', got {engine!r}"
            )
        self.events = events
        self.spec = spec
        self.config = config
        self.block_size = block_size
        #: "warm" = warm-started power iteration; "delta" = frontier-based
        #: residual propagation (the paper's eq. 3, see
        #: :mod:`repro.streaming.delta`)
        self.engine = engine
        self.context = context if context is not None else DriverContext()
        require_executor(
            self.context.executor, self.supported_executors, self.model_name
        )
        if program is None:
            program = self.context.program
        self.program = resolve_program(program, config)
        if engine == "delta" and self.program.name != "pagerank":
            raise ValidationError(
                "the delta engine is PageRank-specific (eq. 3 residual "
                f"propagation); program {self.program.name!r} requires "
                "engine='warm'"
            )

    def run(
        self,
        store_values: bool = True,
        *,
        value_sink=None,
        progress=None,
    ) -> RunResult:
        ctx = self.context
        sink = chain_sinks(ctx.value_sink, value_sink)
        progress = progress if progress is not None else ctx.progress
        result = RunResult(model=self.model_name)
        scope = RunScope.into(result)
        n = self.spec.n_windows
        ctx.emit("run.start", model=self.model_name, executor="serial",
                 n_windows=n)

        stream = StreamingGraph(self.events, self.block_size)
        prev_values = None
        prev_active = None

        for window in self.spec:
            with scope.phase("update"):
                stream.advance_to(window)
            with scope.phase("snapshot"):
                graph, active = stream.snapshot()
            with scope.phase("pagerank"):
                if self.engine == "delta" and prev_values is not None:
                    from repro.streaming.delta import (
                        delta_incremental_pagerank,
                    )

                    pr = delta_incremental_pagerank(
                        graph, prev_values, self.config, active=active
                    )
                else:
                    pr = self.program.solve_graph(
                        graph,
                        active,
                        prev_values=prev_values,
                        prev_active=prev_active,
                    )
            scope.add_work(pr.work)
            window_result = WindowResult(
                window_index=window.index,
                values=pr.values if store_values else None,
                iterations=pr.iterations,
                converged=pr.converged,
                residual=pr.residual,
                n_active_vertices=int(active.sum()),
                n_active_edges=graph.n_edges,
            )
            if sink is not None:
                sink(window.index, pr.values, window_result)
            result.windows.append(window_result)
            ctx.emit("window.done", window=window.index)
            if progress is not None:
                progress(window.index + 1, n)
            prev_values = pr.values
            prev_active = active

        record_run_metadata(
            result, executor="serial", n_workers=1, n_windows=n
        )
        result.metadata["program"] = self.program.name
        result.metadata["entries_inserted"] = stream.adjacency.entries_inserted
        result.metadata["entries_expired"] = stream.adjacency.entries_expired
        result.metadata["blocks_allocated"] = stream.adjacency.blocks_allocated
        ctx.emit("run.done", model=self.model_name, n_windows=n)
        return result
