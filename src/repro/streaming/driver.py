"""The streaming execution-model driver.

Windows are processed strictly in order.  For each window the driver:

1. advances the STINGER-like structure (batch insert of newly streamed
   events, expiry of events that left the window),
2. snapshots the current simple graph (the structure is update-oriented;
   the PageRank pull needs consolidated adjacency),
3. runs the incremental PageRank warm-started from the previous window.

The phase breakdown (``update`` / ``snapshot`` / ``pagerank``) quantifies
the streaming model's structural costs that Figure 5 compares against
offline and postmortem.
"""

from __future__ import annotations

import numpy as np

from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.models.base import RunResult, WindowResult
from repro.pagerank.config import PagerankConfig
from repro.streaming.incremental import incremental_pagerank
from repro.streaming.stinger import StreamingGraph

__all__ = ["StreamingDriver"]


class StreamingDriver:
    """Runs Algorithm 1 under the streaming model."""

    model_name = "streaming"

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        config: PagerankConfig = PagerankConfig(),
        block_size: int = 64,
        engine: str = "warm",
    ) -> None:
        if engine not in ("warm", "delta"):
            raise ValueError(
                f"engine must be 'warm' or 'delta', got {engine!r}"
            )
        self.events = events
        self.spec = spec
        self.config = config
        self.block_size = block_size
        #: "warm" = warm-started power iteration; "delta" = frontier-based
        #: residual propagation (the paper's eq. 3, see
        #: :mod:`repro.streaming.delta`)
        self.engine = engine

    def run(self, store_values: bool = True) -> RunResult:
        result = RunResult(model=self.model_name)
        stream = StreamingGraph(self.events, self.block_size)
        prev_values = None
        prev_active = None

        for window in self.spec:
            with result.timings.phase("update"):
                summary = stream.advance_to(window)
            with result.timings.phase("snapshot"):
                graph, active = stream.snapshot()
            with result.timings.phase("pagerank"):
                if self.engine == "delta" and prev_values is not None:
                    from repro.streaming.delta import (
                        delta_incremental_pagerank,
                    )

                    pr = delta_incremental_pagerank(
                        graph, prev_values, self.config, active=active
                    )
                else:
                    pr = incremental_pagerank(
                        graph,
                        self.config,
                        active=active,
                        prev_values=prev_values,
                        prev_active=prev_active,
                    )
            result.work.merge(pr.work)
            result.windows.append(
                WindowResult(
                    window_index=window.index,
                    values=pr.values if store_values else None,
                    iterations=pr.iterations,
                    converged=pr.converged,
                    residual=pr.residual,
                    n_active_vertices=int(active.sum()),
                    n_active_edges=graph.n_edges,
                )
            )
            prev_values = pr.values
            prev_active = active

        result.metadata["n_windows"] = self.spec.n_windows
        result.metadata["entries_inserted"] = stream.adjacency.entries_inserted
        result.metadata["entries_expired"] = stream.adjacency.entries_expired
        result.metadata["blocks_allocated"] = stream.adjacency.blocks_allocated
        return result
