"""The streaming graph middleware: sliding a window over an event stream.

:class:`StreamingGraph` owns an :class:`~repro.streaming.edge_blocks.
EdgeBlockAdjacency` representing the graph "now" and advances it window by
window: events entering ``(prev_end, new_end]`` are batch-inserted, events
older than the new window start are expired.  Updates are batched exactly
like the paper's modified STINGER ("updates in batches equivalent to the
postmortem code").

The streaming model sees the event log *as a stream*: it may only read
events in timestamp order and cannot look ahead beyond the current window's
end — the structural reason it cannot parallelize across windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import Window
from repro.graph.csr import CSRGraph
from repro.streaming.edge_blocks import EdgeBlockAdjacency

__all__ = ["StreamingGraph", "UpdateSummary"]


@dataclass
class UpdateSummary:
    """What one window transition did to the structure."""

    window_index: int
    inserted: int
    expired: int
    live_entries: int


class StreamingGraph:
    """Sliding-window view over an event stream, STINGER-style."""

    def __init__(
        self, events: TemporalEventSet, block_size: int = 64
    ) -> None:
        self.events = events
        self.adjacency = EdgeBlockAdjacency(events.n_vertices, block_size)
        self._cursor = 0  # next unread event in the stream
        self._current: Optional[Window] = None
        self.updates: list[UpdateSummary] = []

    @property
    def current_window(self) -> Optional[Window]:
        return self._current

    @property
    def n_live_entries(self) -> int:
        return self.adjacency.n_entries

    def advance_to(self, window: Window) -> UpdateSummary:
        """Slide the structure forward to ``window``.

        Windows must be visited in increasing start-time order (a stream
        cannot rewind).
        """
        if self._current is not None and window.t_start < self._current.t_start:
            raise ValidationError(
                "streaming model cannot move the window backwards "
                f"({window.t_start} < {self._current.t_start})"
            )

        # ingest stream events up to the new window end
        time = self.events.time
        new_hi = int(np.searchsorted(time, window.t_end, side="right"))
        inserted = 0
        if new_hi > self._cursor:
            lo, hi = self._cursor, new_hi
            src = self.events.src[lo:hi]
            dst = self.events.dst[lo:hi]
            t = time[lo:hi]
            # events before the window start would expire immediately; they
            # still traverse the structure in a real stream, so insert first
            self.adjacency.insert_batch(src, dst, t)
            inserted = hi - lo
            self._cursor = new_hi

        expired = self.adjacency.expire_before(window.t_start)
        self._current = window
        summary = UpdateSummary(
            window_index=window.index,
            inserted=inserted,
            expired=expired,
            live_entries=self.adjacency.n_entries,
        )
        self.updates.append(summary)
        return summary

    def snapshot(self) -> Tuple[CSRGraph, np.ndarray]:
        """The current simple graph and its active-vertex mask."""
        graph = self.adjacency.snapshot_csr()
        active = np.zeros(self.events.n_vertices, dtype=bool)
        src, dst = graph.edges()
        active[src] = True
        active[dst] = True
        return graph, active
