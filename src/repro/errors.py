"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "EmptyEventSetError",
    "WindowSpecError",
    "GraphBuildError",
    "ConvergenceError",
    "SchedulerError",
    "DatasetError",
    "LockOrderError",
    "OverloadedError",
    "ShardUnavailableError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, range, ordering)."""


class EmptyEventSetError(ValidationError):
    """An operation requires at least one temporal event."""


class WindowSpecError(ValidationError):
    """A sliding-window specification is inconsistent (e.g. sw <= 0)."""


class GraphBuildError(ReproError):
    """A graph representation could not be constructed from the inputs."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within ``max_iterations``.

    Raised only when the caller requests strict convergence; by default the
    solvers return the best iterate with a ``converged=False`` flag, which is
    what the paper's implementation does (fixed max iteration count).
    """


class SchedulerError(ReproError):
    """The parallel scheduler (real or simulated) hit an invalid state."""


class DatasetError(ReproError):
    """A synthetic dataset profile could not be generated."""


class LockOrderError(ReproError):
    """Service-layer locks were acquired out of the global rank order.

    Raised only in sanitizer mode (:mod:`repro.sanitize`): every ordered
    lock carries a rank, and acquiring a lock whose rank is not strictly
    greater than the highest rank already held by the thread is the
    deadlock-shaped bug the runtime check exists to catch.
    """


class OverloadedError(ReproError):
    """The serving tier shed a request instead of queueing it.

    Raised when a bounded admission queue is full past its submit
    timeout.  The HTTP layers translate this into a ``429`` so clients
    see explicit load-shedding rather than unbounded latency.
    """


class ShardUnavailableError(ReproError):
    """A cluster shard (or every replica of it) is dead or unreachable.

    The federation layer catches this per query and answers with an
    explicit ``degraded`` flag instead of failing the whole request.
    """
