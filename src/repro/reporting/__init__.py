"""Plain-text rendering of tables, series and heatmaps.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers render them as aligned ASCII so benchmark
output is directly readable in a terminal and diffable in EXPERIMENTS.md.
"""

from repro.reporting.tables import format_table, format_kv
from repro.reporting.report import generate_report
from repro.reporting.figures import (
    format_series,
    format_heatmap,
    format_bar_chart,
)

__all__ = [
    "format_table",
    "format_kv",
    "format_series",
    "format_heatmap",
    "format_bar_chart",
    "generate_report",
]
