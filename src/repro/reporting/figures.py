"""Plain-text renderings of the paper's figure types: labelled series
(Figures 6–10), heatmaps (Figures 11–12) and bar groups (Figure 5)."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.reporting.tables import format_table

__all__ = ["format_series", "format_heatmap", "format_bar_chart"]


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render named series over shared x values as a table (one row per x,
    one column per series) — the textual form of a multi-line figure."""
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(ys)} points for "
                f"{len(x_values)} x values"
            )
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append(
            [x] + [round(float(series[name][i]), precision) for name in series]
        )
    return format_table(headers, rows, title=title)


def format_heatmap(
    grid: np.ndarray,
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    row_title: str = "",
    col_title: str = "",
    title: Optional[str] = None,
    precision: int = 0,
) -> str:
    """Render a 2-D grid in the paper's Figure 11 orientation: one row per
    window size, one column per sliding offset."""
    grid = np.asarray(grid)
    if grid.shape != (len(row_labels), len(col_labels)):
        raise ValidationError(
            f"grid shape {grid.shape} != labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    corner = f"{row_title}\\{col_title}" if (row_title or col_title) else ""
    headers = [corner] + [str(c) for c in col_labels]
    rows = []
    for i, rl in enumerate(row_labels):
        rows.append(
            [rl] + [round(float(grid[i, j]), precision) for j in range(grid.shape[1])]
        )
    return format_table(headers, rows, title=title)


def format_bar_chart(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars, longest bar = ``width`` chars (Figure 5
    style: one bar per execution model)."""
    if not values:
        return title or ""
    vmax = max(abs(v) for v in values.values()) or 1.0
    name_w = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for k, v in values.items():
        bar = "#" * max(1, int(round(width * abs(v) / vmax)))
        lines.append(f"{k.ljust(name_w)} | {bar} {v:.3g}{unit}")
    return "\n".join(lines)
