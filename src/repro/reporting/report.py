"""Collating benchmark outputs into a single report.

The benchmark harness writes each table/figure rendering to
``benchmarks/output/*.txt``; :func:`generate_report` collates them into one
Markdown document (per-artifact sections, fenced as code blocks) so a full
reproduction run can be published as a single file.  Exposed on the CLI as
``repro-temporal report``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import ValidationError

__all__ = ["generate_report", "ARTIFACT_ORDER"]

#: preferred section order (paper order, then ablations/extensions)
ARTIFACT_ORDER = [
    "table1_graphs",
    "fig4_edge_distribution",
    "fig5_models",
    "fig6_partial_init",
    "fig7_partitioners",
    "fig8_multiwindow",
    "fig9_few_windows",
    "fig10_many_windows",
    "fig11_best_speedup",
    "fig12_suggested",
    "ablation_partition",
    "ablation_vector_length",
    "ablation_memory",
    "ablation_delta_engine",
    "ablation_tolerance",
    "scaling_workers",
    "extension_kcore",
]

_TITLES = {
    "table1_graphs": "Table 1 — graphs and parameters",
    "fig4_edge_distribution": "Figure 4 — temporal edge distributions",
    "fig5_models": "Figure 5 — offline vs streaming vs postmortem",
    "fig6_partial_init": "Figure 6 — partial initialization",
    "fig7_partitioners": "Figure 7 — partitioners and granularity (256 windows)",
    "fig8_multiwindow": "Figure 8 — multi-window count",
    "fig9_few_windows": "Figure 9 — few windows (6)",
    "fig10_many_windows": "Figure 10 — many windows (1024)",
    "fig11_best_speedup": "Figure 11 — best speedup over streaming",
    "fig12_suggested": "Figure 12 — suggested parameters",
    "ablation_partition": "Ablation — balanced multi-window partitioning",
    "ablation_vector_length": "Ablation — SpMM vector length",
    "ablation_memory": "Ablation — memory vs multi-window count",
    "ablation_delta_engine": "Ablation — delta vs warm streaming engine",
    "ablation_tolerance": "Ablation — tolerance vs ranking quality",
    "scaling_workers": "Study — strong scaling",
    "extension_kcore": "Extension — k-core under the three models",
}


def generate_report(
    output_dir: Union[str, os.PathLike],
    report_path: Optional[Union[str, os.PathLike]] = None,
    title: str = "Reproduction report",
) -> str:
    """Collate ``<output_dir>/*.txt`` artifacts into one Markdown report.

    Returns the Markdown text; writes it to ``report_path`` when given.
    Unknown artifacts (not in :data:`ARTIFACT_ORDER`) are appended in
    alphabetical order so custom benches are never dropped.
    """
    out_dir = Path(output_dir)
    if not out_dir.is_dir():
        raise ValidationError(f"{out_dir} is not a directory")
    available = {p.stem: p for p in sorted(out_dir.glob("*.txt"))}
    if not available:
        raise ValidationError(f"no .txt artifacts found in {out_dir}")

    ordered: List[str] = [k for k in ARTIFACT_ORDER if k in available]
    ordered += [k for k in sorted(available) if k not in ARTIFACT_ORDER]

    lines = [f"# {title}", ""]
    lines.append(
        "Generated from the benchmark harness outputs in "
        f"`{out_dir}` ({len(ordered)} artifacts)."
    )
    lines.append("")
    for key in ordered:
        lines.append(f"## {_TITLES.get(key, key)}")
        lines.append("")
        lines.append("```text")
        lines.append(available[key].read_text().rstrip())
        lines.append("```")
        lines.append("")
    text = "\n".join(lines)
    if report_path is not None:
        Path(report_path).write_text(text)
    return text
