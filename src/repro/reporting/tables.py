"""Aligned ASCII tables."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from repro.errors import ValidationError

__all__ = ["format_table", "format_kv"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a column-aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5], [30, 4]]))
    a   b
    --  ---
    1   2.5
    30  4
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValidationError(
                f"row width {len(r)} != header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render a mapping as aligned ``key: value`` lines."""
    if not pairs:
        return title or ""
    width = max(len(k) for k in pairs)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_cell(v)}")
    return "\n".join(lines)
