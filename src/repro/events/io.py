"""Serialization of temporal event sets.

Two formats:

* **TSV** — the SNAP-style ``src\\tdst\\ttimestamp`` text format the paper's
  datasets ship in; human-readable, slow.
* **NPZ** — compressed NumPy archive of the three arrays; fast, used by the
  benchmark harness to cache generated datasets.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet

__all__ = [
    "load_events_tsv",
    "save_events_tsv",
    "load_events_npz",
    "save_events_npz",
]

PathLike = Union[str, os.PathLike]


def save_events_tsv(events: TemporalEventSet, path: PathLike) -> None:
    """Write ``src dst time`` rows, one event per line."""
    data = np.column_stack([events.src, events.dst, events.time])
    np.savetxt(path, data, fmt="%d", delimiter="\t")


def load_events_tsv(path: PathLike, n_vertices=None) -> TemporalEventSet:
    """Read a SNAP-style ``src dst time`` file.

    Lines starting with ``#`` or ``%`` are treated as comments.
    """
    import warnings

    with warnings.catch_warnings():
        # an empty (comments-only) file is a valid empty event set
        warnings.filterwarnings(
            "ignore", message=".*input contained no data.*"
        )
        data = np.loadtxt(path, dtype=np.int64, comments=("#", "%"), ndmin=2)
    if data.size == 0:
        return TemporalEventSet([], [], [], n_vertices=n_vertices or 0)
    if data.shape[1] != 3:
        raise ValidationError(
            f"expected 3 columns (src, dst, time), got {data.shape[1]}"
        )
    return TemporalEventSet(
        data[:, 0], data[:, 1], data[:, 2], n_vertices=n_vertices
    )


def save_events_npz(events: TemporalEventSet, path: PathLike) -> None:
    """Cache an event set as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        src=events.src,
        dst=events.dst,
        time=events.time,
        n_vertices=np.int64(events.n_vertices),
    )


def load_events_npz(path: PathLike) -> TemporalEventSet:
    """Load an event set cached by :func:`save_events_npz`."""
    with np.load(path) as archive:
        for key in ("src", "dst", "time", "n_vertices"):
            if key not in archive:
                raise ValidationError(f"npz archive missing array {key!r}")
        return TemporalEventSet(
            archive["src"],
            archive["dst"],
            archive["time"],
            n_vertices=int(archive["n_vertices"]),
            sort=False,
        )
