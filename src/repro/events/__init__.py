"""Temporal event sets and the sliding-window model (paper Section 2.1).

A *temporal edge set* is a sequence of events ``(u, v, t)`` sorted by
non-decreasing timestamp.  A :class:`~repro.events.windows.WindowSpec`
turns it into the graph sequence ``G_i = G(T_i, T_i + delta)`` with
``T_i = T_0 + i * sw``.
"""

from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec, Window
from repro.events.io import (
    load_events_tsv,
    save_events_tsv,
    load_events_npz,
    save_events_npz,
)

__all__ = [
    "TemporalEventSet",
    "WindowSpec",
    "Window",
    "load_events_tsv",
    "save_events_tsv",
    "load_events_npz",
    "save_events_npz",
]
