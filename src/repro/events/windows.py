"""The sliding-window model (paper Section 2.1, Figure 1).

``WindowSpec(t0, delta, sw, n_windows)`` describes the graph sequence

    G_i = G(T_i, T_i + delta),   T_i = t0 + i * sw,   i = 0..n_windows-1.

``delta`` is the window size; ``sw`` the sliding offset.  The paper always
chooses ``sw <= delta`` so consecutive windows overlap, but the code supports
disjoint windows too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List

import numpy as np

from repro.errors import WindowSpecError

if TYPE_CHECKING:  # pragma: no cover
    from repro.events.event_set import TemporalEventSet

__all__ = ["Window", "WindowSpec"]

SECONDS_PER_DAY = 86_400


@dataclass(frozen=True)
class Window:
    """One concrete window ``[t_start, t_end]`` (inclusive ends)."""

    index: int
    t_start: int
    t_end: int

    @property
    def length(self) -> int:
        return self.t_end - self.t_start

    def contains(self, t) -> bool | np.ndarray:
        """Whether timestamp(s) ``t`` fall inside the window (vectorized)."""
        return (np.asarray(t) >= self.t_start) & (np.asarray(t) <= self.t_end)

    def overlaps(self, other: "Window") -> bool:
        return self.t_start <= other.t_end and other.t_start <= self.t_end


@dataclass(frozen=True)
class WindowSpec:
    """The full sliding-window specification.

    Parameters
    ----------
    t0:
        Start time of the first window (the paper sets it to the beginning
        of the dataset).
    delta:
        Window size in time units.
    sw:
        Sliding offset in time units.
    n_windows:
        Number of windows ``m + 1`` in the sequence.
    """

    t0: int
    delta: int
    sw: int
    n_windows: int

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise WindowSpecError(f"delta must be > 0, got {self.delta}")
        if self.sw <= 0:
            raise WindowSpecError(f"sw must be > 0, got {self.sw}")
        if self.n_windows <= 0:
            raise WindowSpecError(
                f"n_windows must be > 0, got {self.n_windows}"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def covering(
        cls, events: "TemporalEventSet", delta: int, sw: int
    ) -> "WindowSpec":
        """The spec whose windows start at the dataset start and slide until
        the last window still intersects the data — exactly the paper's
        setup ("T0 is set by the beginning of the dataset")."""
        t0 = events.t_min
        span = events.t_max - t0
        # last window index i such that T_i <= t_max
        n = max(1, int(span // sw) + 1)
        return cls(t0=t0, delta=delta, sw=sw, n_windows=n)

    @classmethod
    def covering_days(
        cls, events: "TemporalEventSet", delta_days: float, sw_seconds: int
    ) -> "WindowSpec":
        """Paper-style parameters: window size in days, offset in seconds."""
        return cls.covering(events, int(delta_days * SECONDS_PER_DAY), sw_seconds)

    # ------------------------------------------------------------------
    # window access
    # ------------------------------------------------------------------
    def window(self, i: int) -> Window:
        """The i-th window ``[T_i, T_i + delta]``."""
        if not (0 <= i < self.n_windows):
            raise WindowSpecError(
                f"window index {i} out of range [0, {self.n_windows})"
            )
        ts = self.t0 + i * self.sw
        return Window(index=i, t_start=ts, t_end=ts + self.delta)

    def __len__(self) -> int:
        return self.n_windows

    def __iter__(self) -> Iterator[Window]:
        for i in range(self.n_windows):
            yield self.window(i)

    def windows(self) -> List[Window]:
        """All windows of the sequence, in order."""
        return list(self)

    @property
    def t_end(self) -> int:
        """End time of the last window."""
        return self.t0 + (self.n_windows - 1) * self.sw + self.delta

    @property
    def overlap_fraction(self) -> float:
        """Fraction of a window shared with its successor (0 when
        disjoint)."""
        return max(0.0, 1.0 - self.sw / self.delta)

    def starts(self) -> np.ndarray:
        """Vector of all window start times."""
        return self.t0 + np.arange(self.n_windows, dtype=np.int64) * self.sw

    def ends(self) -> np.ndarray:
        """Vector of all window end times."""
        return self.starts() + self.delta

    # ------------------------------------------------------------------
    # event <-> window algebra
    # ------------------------------------------------------------------
    def windows_containing(self, t: int) -> np.ndarray:
        """Indices of every window whose interval contains timestamp ``t``.

        A timestamp is in window i iff ``T_i <= t <= T_i + delta`` i.e.
        ``(t - delta - t0)/sw <= i <= (t - t0)/sw``.
        """
        hi = (t - self.t0) // self.sw
        lo = -(-(t - self.delta - self.t0) // self.sw)  # ceil division
        lo = max(lo, 0)
        hi = min(hi, self.n_windows - 1)
        if hi < lo:
            return np.empty(0, dtype=np.int64)
        return np.arange(lo, hi + 1, dtype=np.int64)

    def first_window_of(self, t: np.ndarray) -> np.ndarray:
        """Vectorized: index of the earliest window containing each
        timestamp (may be ``n_windows`` meaning "none", or negative parts
        clipped to 0 checks by caller)."""
        t = np.asarray(t, dtype=np.int64)
        lo = -(-(t - self.delta - self.t0) // self.sw)
        return np.maximum(lo, 0)

    def last_window_of(self, t: np.ndarray) -> np.ndarray:
        """Vectorized: index of the latest window containing each timestamp
        (may be ``-1`` meaning "before the first window")."""
        t = np.asarray(t, dtype=np.int64)
        hi = (t - self.t0) // self.sw
        return np.minimum(hi, self.n_windows - 1)

    def event_window_multiplicity(self, t: np.ndarray) -> np.ndarray:
        """How many windows each timestamp falls into (the replication
        factor that drives multi-window memory cost)."""
        lo = self.first_window_of(t)
        hi = self.last_window_of(t)
        return np.maximum(hi - lo + 1, 0)

    def subspec(self, w_start: int, w_count: int) -> "WindowSpec":
        """A spec for the contiguous run of windows ``[w_start,
        w_start + w_count)`` — used by multi-window partitioning."""
        if w_start < 0 or w_count <= 0 or w_start + w_count > self.n_windows:
            raise WindowSpecError(
                f"invalid subspec [{w_start}, {w_start + w_count}) of "
                f"{self.n_windows} windows"
            )
        return WindowSpec(
            t0=self.t0 + w_start * self.sw,
            delta=self.delta,
            sw=self.sw,
            n_windows=w_count,
        )
