"""The temporal edge set: the single input of every execution model.

The paper assumes events ``(u, v, t)`` arrive in non-decreasing timestamp
order (Section 2.1).  :class:`TemporalEventSet` stores the three parallel
arrays (``src``, ``dst``, ``time``) contiguously, enforces the ordering, and
provides the vectorized range queries every model needs:

* the streaming model consumes events in timestamp order, batch by batch;
* the offline model slices ``[Ts, Te]`` per window;
* the postmortem model hands the whole arrays to the temporal-CSR builder.

Timestamps are integers (seconds in all the paper's datasets); vertices are
``0..n_vertices-1``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import EmptyEventSetError, ValidationError
from repro.utils.validation import check_1d_int, check_same_length

__all__ = ["TemporalEventSet"]


class TemporalEventSet:
    """An immutable, timestamp-sorted set of directed temporal events.

    Parameters
    ----------
    src, dst:
        Integer vertex ids of each event's endpoints.
    time:
        Integer timestamps, non-decreasing.  If ``sort=True`` (default) the
        events are sorted by time on construction (stable, so equal-time
        events keep input order — this mirrors how an event log would be
        replayed).
    n_vertices:
        Total vertex-set size |V|.  Defaults to ``max(src, dst) + 1``.  The
        paper assumes V is known up front ("the elements of V known because
        of offline behavior").
    """

    __slots__ = ("src", "dst", "time", "n_vertices")

    def __init__(
        self,
        src,
        dst,
        time,
        n_vertices: Optional[int] = None,
        *,
        sort: bool = True,
    ) -> None:
        src = check_1d_int(src, "src")
        dst = check_1d_int(dst, "dst")
        time = check_1d_int(time, "time")
        check_same_length((src, "src"), (dst, "dst"), (time, "time"))
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise ValidationError("vertex ids must be non-negative")

        if sort and time.size > 1 and np.any(np.diff(time) < 0):
            order = np.argsort(time, kind="stable")
            src, dst, time = src[order], dst[order], time[order]
        elif not sort and time.size > 1 and np.any(np.diff(time) < 0):
            raise ValidationError(
                "timestamps must be non-decreasing when sort=False"
            )

        max_id = int(max(src.max(), dst.max())) if src.size else -1
        if n_vertices is None:
            n_vertices = max_id + 1
        elif n_vertices <= max_id:
            raise ValidationError(
                f"n_vertices={n_vertices} too small for max vertex id {max_id}"
            )

        self.src = np.ascontiguousarray(src)
        self.dst = np.ascontiguousarray(dst)
        self.time = np.ascontiguousarray(time)
        self.n_vertices = int(n_vertices)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.src.size

    @property
    def n_events(self) -> int:
        """Number of events |Events| (with multiplicity)."""
        return self.src.size

    @property
    def t_min(self) -> int:
        """Timestamp of the earliest event."""
        self._require_nonempty()
        return int(self.time[0])

    @property
    def t_max(self) -> int:
        """Timestamp of the latest event."""
        self._require_nonempty()
        return int(self.time[-1])

    @property
    def span(self) -> int:
        """``t_max - t_min``, the covered time span."""
        return self.t_max - self.t_min

    def _require_nonempty(self) -> None:
        if self.src.size == 0:
            raise EmptyEventSetError("operation requires a non-empty event set")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self) == 0:
            return "TemporalEventSet(empty)"
        return (
            f"TemporalEventSet(n_events={self.n_events}, "
            f"n_vertices={self.n_vertices}, t=[{self.t_min}, {self.t_max}])"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, TemporalEventSet):
            return NotImplemented
        return (
            self.n_vertices == other.n_vertices
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
            and np.array_equal(self.time, other.time)
        )

    def __hash__(self):  # mutable-array container: keep unhashable semantics
        raise TypeError("TemporalEventSet is not hashable")

    # ------------------------------------------------------------------
    # range queries (all O(log n) + slice views, no copies)
    # ------------------------------------------------------------------
    def time_slice_indices(self, t_start: int, t_end: int) -> Tuple[int, int]:
        """Index range ``[lo, hi)`` of events with ``t_start <= t <= t_end``.

        Both bounds are inclusive, matching the paper's window definition
        ``Ts <= t <= Te``.
        """
        lo = int(np.searchsorted(self.time, t_start, side="left"))
        hi = int(np.searchsorted(self.time, t_end, side="right"))
        return lo, hi

    def events_between(self, t_start: int, t_end: int) -> "TemporalEventSet":
        """A view-backed event set of events in ``[t_start, t_end]``."""
        lo, hi = self.time_slice_indices(t_start, t_end)
        return TemporalEventSet(
            self.src[lo:hi],
            self.dst[lo:hi],
            self.time[lo:hi],
            n_vertices=self.n_vertices,
            sort=False,
        )

    def edges_between(self, t_start: int, t_end: int) -> Tuple[np.ndarray, np.ndarray]:
        """(src, dst) array views of events in ``[t_start, t_end]``."""
        lo, hi = self.time_slice_indices(t_start, t_end)
        return self.src[lo:hi], self.dst[lo:hi]

    def count_between(self, t_start: int, t_end: int) -> int:
        """Number of events with ``t_start <= t <= t_end``."""
        lo, hi = self.time_slice_indices(t_start, t_end)
        return hi - lo

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def symmetrized(self) -> "TemporalEventSet":
        """Return an event set with each event mirrored ``(v, u, t)``.

        Collaboration-style datasets (ca-cit-HepTh) are undirected; the
        paper treats them as a directed graph with both arcs present.
        """
        if len(self) == 0:
            return TemporalEventSet([], [], [], n_vertices=self.n_vertices)
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        time = np.concatenate([self.time, self.time])
        return TemporalEventSet(src, dst, time, n_vertices=self.n_vertices)

    def without_self_loops(self) -> "TemporalEventSet":
        """Drop events with ``u == v`` (self-loops contribute nothing to
        PageRank mass exchange and streaming frameworks typically drop
        them)."""
        keep = self.src != self.dst
        return TemporalEventSet(
            self.src[keep],
            self.dst[keep],
            self.time[keep],
            n_vertices=self.n_vertices,
            sort=False,
        )

    def relabeled_compact(self) -> Tuple["TemporalEventSet", np.ndarray]:
        """Relabel vertices to ``0..k-1`` keeping only vertices that appear.

        Returns the new event set and the ``old_id_of_new`` mapping array.
        """
        self._require_nonempty()
        ids = np.union1d(self.src, self.dst)
        new_src = np.searchsorted(ids, self.src)
        new_dst = np.searchsorted(ids, self.dst)
        es = TemporalEventSet(
            new_src, new_dst, self.time, n_vertices=ids.size, sort=False
        )
        return es, ids

    def iter_batches(self, batch_size: int) -> Iterator["TemporalEventSet"]:
        """Yield consecutive fixed-size batches in timestamp order.

        This is how the streaming model ingests the event log.
        """
        if batch_size <= 0:
            raise ValidationError(f"batch_size must be > 0, got {batch_size}")
        for lo in range(0, len(self), batch_size):
            hi = min(lo + batch_size, len(self))
            yield TemporalEventSet(
                self.src[lo:hi],
                self.dst[lo:hi],
                self.time[lo:hi],
                n_vertices=self.n_vertices,
                sort=False,
            )

    def concatenated(self, other: "TemporalEventSet") -> "TemporalEventSet":
        """Merge two event sets (re-sorts by timestamp)."""
        n = max(self.n_vertices, other.n_vertices)
        return TemporalEventSet(
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
            np.concatenate([self.time, other.time]),
            n_vertices=n,
        )
