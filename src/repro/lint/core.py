"""The static-analysis engine: AST visitors, suppression, path scoping.

The engine is deliberately small: one parse per file, one visitor pass per
applicable rule, findings filtered through ``# lint: disable=<rule>``
comments.  Rules (:mod:`repro.lint.rules`) are project-specific — they
encode invariants this codebase has already been bitten by (escaping mmap
views, inconsistent lock discipline, hidden nondeterminism) rather than
generic style — so the engine favors precision over configurability: a
rule either applies to a file (its ``scopes`` match the path) or it does
not, and a finding is either real or carries an inline justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.errors import ValidationError

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "filter_suppressed",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "resolve_rules",
    "statement_spans",
]

#: rule name synthesized for files the engine cannot parse
PARSE_ERROR = "parse-error"

#: ``# lint: disable=rule-a, rule-b`` (the justification text after the
#: rule list is free-form and ignored by the parser)
_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([\w\-, ]+)")

#: directories never descended into when expanding a path argument
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "output", ".hypothesis"}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class LintContext:
    """Per-file state shared by every rule visiting that file."""

    path: str
    source: str
    findings: List[Finding] = field(default_factory=list)


class Rule(ast.NodeVisitor):
    """Base class for one checker: an AST visitor with a name and a scope.

    ``scopes`` is a tuple of posix path fragments; a rule applies to a file
    when any fragment occurs in the file's posix path (an empty tuple means
    every file).  Subclasses override visitor methods (or :meth:`run` for
    multi-pass rules) and call :meth:`report` on violations.
    """

    name: str = ""
    description: str = ""
    #: the motivating-bug text, shared verbatim with docs/linting.md
    #: (surfaced by ``repro-temporal lint --explain <rule>``)
    motivation: str = ""
    scopes: Tuple[str, ...] = ()

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx

    @classmethod
    def applies_to(cls, posix_path: str) -> bool:
        return not cls.scopes or any(s in posix_path for s in cls.scopes)

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.findings.append(
            Finding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=self.name,
                message=message,
            )
        )

    def run(self, tree: ast.Module) -> None:
        self.visit(tree)


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------
def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names disabled on that line.

    A finding is suppressed when its line, or the line directly above it,
    carries ``# lint: disable=<rule>[,<rule>...]``; the token ``all``
    disables every rule for that line.
    """
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DISABLE_RE.search(line)
        if m:
            tokens = {t for t in re.split(r"[\s,]+", m.group(1)) if t}
            if tokens:
                out[lineno] = tokens
    return out


def statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """Line spans a ``# lint: disable=`` comment covers as one statement.

    Simple statements span ``lineno..end_lineno`` — a call split across
    five lines is suppressible from any of them.  Compound statements
    (``if``/``for``/``with``/``def``/``class``) span only their *header*
    — from the first decorator down to the line before the body — so a
    disable on a decorator reaches the ``def`` it decorates without
    blanketing the whole body.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(
            body[0], ast.stmt
        ):
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min(start, min(d.lineno for d in decorators))
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None) or start
        spans.append((start, end))
    return spans


def _suppressed(
    finding: Finding,
    disables: Dict[int, Set[str]],
    spans: Optional[List[Tuple[int, int]]] = None,
) -> bool:
    def hit(line: int) -> bool:
        rules = disables.get(line)
        return bool(rules and (finding.rule in rules or "all" in rules))

    if hit(finding.line) or hit(finding.line - 1):
        return True
    for start, end in spans or ():
        if start <= finding.line <= end and (
            hit(start - 1) or any(hit(ln) for ln in range(start, end + 1))
        ):
            return True
    return False


def filter_suppressed(
    findings: Iterable[Finding],
    source: str,
    tree: Optional[ast.Module] = None,
) -> List[Finding]:
    """Drop findings covered by ``# lint: disable=`` comments in
    ``source``; ``tree`` (parsed separately) enables the statement-span
    rules for decorated and multiline statements."""
    disables = parse_suppressions(source)
    spans = statement_spans(tree) if tree is not None else None
    return [f for f in findings if not _suppressed(f, disables, spans)]


# ----------------------------------------------------------------------
# rule selection
# ----------------------------------------------------------------------
def resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Type[Rule]]:
    """The rule classes to run, after ``--select`` / ``--ignore``."""
    from repro.lint.rules import ALL_RULES

    by_name = {r.name: r for r in ALL_RULES}
    for names in (select, ignore):
        unknown = set(names or ()) - set(by_name)
        if unknown:
            raise ValidationError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(sorted(by_name))}"
            )
    chosen = list(select) if select else list(by_name)
    ignored = set(ignore or ())
    return [by_name[n] for n in by_name if n in chosen and n not in ignored]


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<memory>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives rule scoping, so tests exercise scoped rules by naming
    fixtures accordingly (e.g. ``service/fixture.py``).
    """
    posix = Path(path).as_posix() if path != "<memory>" else path
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    ctx = LintContext(path=posix, source=source)
    for rule_cls in resolve_rules(select, ignore):
        if rule_cls.applies_to(posix):
            rule_cls(ctx).run(tree)
    return sorted(filter_suppressed(ctx.findings, source, tree))


def lint_file(
    path: "Path | str",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one ``.py`` file from disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError(f"cannot read {p}: {exc}") from exc
    return lint_source(source, path=str(p), select=select, ignore=ignore)


def iter_python_files(paths: Sequence["Path | str"]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(
                f
                for f in p.rglob("*.py")
                if not (_SKIP_DIRS & set(f.parts))
            )
        elif p.suffix == ".py":
            candidates = [p]
        elif not p.exists():
            raise ValidationError(f"no such file or directory: {p}")
        else:
            candidates = []
        for f in candidates:
            if f not in seen:
                seen.add(f)
                out.append(f)
    return out


@dataclass
class LintReport:
    """The result of linting a path set."""

    findings: List[Finding]
    files_checked: int
    rules: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))


def lint_paths(
    paths: Sequence["Path | str"],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and aggregate the findings."""
    rules = resolve_rules(select, ignore)
    files = iter_python_files(paths)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f, select=select, ignore=ignore))
    return LintReport(
        findings=sorted(findings),
        files_checked=len(files),
        rules=sorted(r.name for r in rules),
    )
