"""Project-wide symbol table and call graph for the deep analyses.

The per-file rules (:mod:`repro.lint.rules`) see one AST at a time; the
whole-program analyses (:mod:`repro.lint.analyses`) need to answer
questions that span modules — "which locks may be held when this
function runs?", "is this blocking call reachable from a coroutine?",
"does this function transitively return a shared-memory view?".  This
module builds the shared substrate once per run:

* a :class:`Project`: every ``.py`` file parsed once, modules named by
  walking the ``__init__.py`` chain, imports resolved to qualified
  names, module-level integer constants collected (so lock *ranks*
  spelled as ``LOCK_RANK_*`` symbols from :mod:`repro.sanitize` resolve
  to comparable numbers);
* per-class metadata: methods, base classes, attribute types inferred
  from ``self.x = ClassName(...)`` and annotated constructor parameters,
  and lock attributes created by ``make_lock``/``OrderedLock``/
  ``threading.Lock``;
* a :class:`CallGraph`: one :class:`CallSite` per ``ast.Call`` whose
  callee resolves to a project function, via direct names, module
  aliases, ``self.method``, ``self.attr.method`` and typed locals.
  Callables *passed as arguments* (e.g. ``loop.run_in_executor(None,
  fn)``) deliberately do **not** create edges — they run on another
  thread, which is exactly the boundary the async-safety analysis needs
  respected.

Resolution is deliberately conservative: an attribute call on a receiver
whose class is unknown produces no edge (analyses stay quiet) rather
than a guessed edge (analyses cry wolf).

Because the build is pure parsing, it caches cleanly:
:func:`build_project` keys a pickle on the sha256 of every source file,
so an unchanged tree loads the symbol table + call graph in
milliseconds (the CI ``lint-deep`` job relies on this).
"""

from __future__ import annotations

import ast
import hashlib
import logging
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LockInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "module_name_for",
]

logger = logging.getLogger(__name__)

#: bump to invalidate cached pickles when the build logic changes
CACHE_VERSION = 1

#: constructors that create lock objects; value = whether rank-ordered
_LOCK_CONSTRUCTORS = {"make_lock": True, "OrderedLock": True,
                      "Lock": False, "RLock": False}


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain.

    ``src/repro/service/engine.py`` -> ``repro.service.engine``;
    a file outside any package is just its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


@dataclass
class LockInfo:
    """One lock object the project creates.

    ``rank`` is the resolved integer rank for ordered locks
    (``make_lock``/``OrderedLock``) and ``None`` for plain
    ``threading.Lock``/``RLock`` — held but unordered.
    """

    name: str                 # display name ("replica-0.1", "_lock", ...)
    rank: Optional[int]
    owner: str                # qualified owner ("mod.Class.attr" or "mod.var")


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str                # "repro.service.engine.QueryEngine.batch"
    module: str
    path: str                 # posix path, as handed to the linter
    node: ast.AST             # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qname, when a method
    is_async: bool = False

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[1]


@dataclass
class ClassInfo:
    """One class: methods, bases, inferred attribute types, lock attrs."""

    qname: str
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)      # qualified, project-internal
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class qname
    attr_locks: Dict[str, LockInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call: the AST node plus its candidate callees."""

    node: ast.Call
    callees: Tuple[str, ...]  # function qnames (usually one)
    dotted: Optional[str]     # source spelling, for messages


@dataclass
class ModuleInfo:
    """One parsed file."""

    name: str
    path: str
    tree: ast.Module
    source: str
    imports: Dict[str, str] = field(default_factory=dict)   # local -> qualified
    constants: Dict[str, int] = field(default_factory=dict)  # module ints
    module_locks: Dict[str, LockInfo] = field(default_factory=dict)


class Project:
    """Every parsed module plus the symbol tables the analyses query."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    # ------------------------------------------------------------------
    # symbol lookups
    # ------------------------------------------------------------------
    def resolve_import(self, module: str, name: str) -> Optional[str]:
        """The qualified name ``name`` refers to inside ``module``."""
        info = self.modules.get(module)
        if info is None:
            return None
        return info.imports.get(name)

    def resolve_int(self, module: str, name: str,
                    _seen: Optional[Set[str]] = None) -> Optional[int]:
        """Resolve ``name`` in ``module`` to an integer constant, chasing
        one level of ``from x import NAME`` indirection per hop."""
        seen = _seen if _seen is not None else set()
        key = f"{module}:{name}"
        if key in seen:
            return None
        seen.add(key)
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.constants:
            return info.constants[name]
        target = info.imports.get(name)
        if target and "." in target:
            src_mod, src_name = target.rsplit(".", 1)
            return self.resolve_int(src_mod, src_name, seen)
        return None

    def method_of(self, class_qname: str, name: str,
                  _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Look up a method qname on a class, walking project bases."""
        seen = _seen if _seen is not None else set()
        if class_qname in seen:
            return None
        seen.add(class_qname)
        cls = self.classes.get(class_qname)
        if cls is None:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            found = self.method_of(base, name, seen)
            if found:
                return found
        return None

    def lock_attr(self, class_qname: str, attr: str,
                  _seen: Optional[Set[str]] = None) -> Optional[LockInfo]:
        """Look up a lock attribute on a class, walking project bases."""
        seen = _seen if _seen is not None else set()
        if class_qname in seen:
            return None
        seen.add(class_qname)
        cls = self.classes.get(class_qname)
        if cls is None:
            return None
        if attr in cls.attr_locks:
            return cls.attr_locks[attr]
        for base in cls.bases:
            found = self.lock_attr(base, attr, seen)
            if found:
                return found
        return None


class CallGraph:
    """Call sites per function, plus forward/reverse adjacency."""

    def __init__(self) -> None:
        self.sites: Dict[str, List[CallSite]] = {}
        self.callers: Dict[str, Set[str]] = {}

    def add(self, caller: str, site: CallSite) -> None:
        self.sites.setdefault(caller, []).append(site)
        for callee in site.callees:
            self.callers.setdefault(callee, set()).add(caller)

    def callees_of(self, qname: str) -> Set[str]:
        return {
            c for s in self.sites.get(qname, ()) for c in s.callees
        }

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Every function reachable from ``roots`` via call edges
        (roots included)."""
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(self.callees_of(fn) - seen)
        return seen

    def reaching(self, sinks: Sequence[str]) -> Set[str]:
        """Every function from which some sink is reachable
        (sinks included)."""
        seen: Set[str] = set()
        stack = list(sinks)
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(self.callers.get(fn, set()) - seen)
        return seen


# ----------------------------------------------------------------------
# small AST helpers (shared with analyses)
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_class(project: Project, module: str,
                      annotation: Optional[ast.AST]) -> Optional[str]:
    """The project class an annotation names, if any (handles Optional
    and string annotations superficially)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name: Optional[str] = annotation.value.strip("'\"")
    else:
        name = dotted_name(annotation)
    if name is None:
        if isinstance(annotation, ast.Subscript):  # Optional[X] / "List[X]"
            return _annotation_class(project, module, annotation.slice)
        return None
    qualified = project.resolve_import(module, name.split(".")[0])
    if qualified is not None and "." in name:
        qualified = qualified + "." + name.split(".", 1)[1]
    for candidate in (qualified, name, f"{module}.{name}"):
        if candidate and candidate in project.classes:
            return candidate
    return None


def _lock_from_call(project: Project, module: str, call: ast.Call,
                    owner: str) -> Optional[LockInfo]:
    """A :class:`LockInfo` if ``call`` constructs a lock, else None."""
    func_name = None
    if isinstance(call.func, ast.Name):
        func_name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        func_name = call.func.attr
    if func_name not in _LOCK_CONSTRUCTORS:
        return None
    ranked = _LOCK_CONSTRUCTORS[func_name]
    display = owner.rsplit(".", 1)[-1]
    rank: Optional[int] = None
    if ranked:
        rank_arg: Optional[ast.AST] = None
        if len(call.args) >= 2:
            rank_arg = call.args[1]
        else:
            for kw in call.keywords:
                if kw.arg == "rank":
                    rank_arg = kw.value
        if len(call.args) >= 1 and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            display = call.args[0].value
        if isinstance(rank_arg, ast.Constant) and isinstance(
            rank_arg.value, int
        ):
            rank = rank_arg.value
        elif rank_arg is not None:
            rank_name = dotted_name(rank_arg)
            if rank_name is not None:
                rank = project.resolve_int(
                    module, rank_name.split(".")[-1]
                )
    return LockInfo(name=display, rank=rank, owner=owner)


# ----------------------------------------------------------------------
# the build
# ----------------------------------------------------------------------
def _collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: resolve against this package
                base_parts = module.split(".")
                # level 1 = current package; drop one extra per level
                drop = node.level if module.endswith("__init__") else node.level
                base = ".".join(base_parts[:-drop]) if drop < len(
                    base_parts
                ) else package
                src = f"{base}.{node.module}" if node.module else base
            else:
                src = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = (
                    f"{src}.{alias.name}" if src else alias.name
                )
    return out


def _collect_module_level(project: Project, info: ModuleInfo) -> None:
    """Module constants, classes (methods registered), functions, locks."""
    module = info.name
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
            if isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, int
            ) and not isinstance(stmt.value.value, bool):
                info.constants[target] = stmt.value.value
            elif isinstance(stmt.value, ast.Call):
                lock = _lock_from_call(
                    project, module, stmt.value, f"{module}.{target}"
                )
                if lock is not None:
                    info.module_locks[target] = lock
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{module}.{stmt.name}"
            project.functions[qname] = FunctionInfo(
                qname=qname, module=module, path=info.path, node=stmt,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
        elif isinstance(stmt, ast.ClassDef):
            _collect_class(project, info, stmt)


def _collect_class(project: Project, info: ModuleInfo,
                   node: ast.ClassDef) -> None:
    module = info.name
    qname = f"{module}.{node.name}"
    cls = ClassInfo(qname=qname, module=module, node=node)
    for base in node.bases:
        base_name = dotted_name(base)
        if base_name is None:
            continue
        resolved = project.resolve_import(module, base_name.split(".")[0])
        for candidate in (resolved, base_name, f"{module}.{base_name}"):
            if candidate:
                cls.bases.append(candidate)
                break
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_qname = f"{qname}.{item.name}"
            cls.methods[item.name] = fn_qname
            project.functions[fn_qname] = FunctionInfo(
                qname=fn_qname, module=module, path=info.path, node=item,
                cls=qname,
                is_async=isinstance(item, ast.AsyncFunctionDef),
            )
    project.classes[qname] = cls


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.a`` -> ``a`` (single level only), else None."""
    if isinstance(node, ast.Attribute) and isinstance(
        node.value, ast.Name
    ) and node.value.id == "self":
        return node.attr
    return None


def _infer_class_attrs(project: Project, info: ModuleInfo,
                       cls: ClassInfo) -> None:
    """Fill ``attr_types`` and ``attr_locks`` from every method body."""
    module = info.name
    for method_qname in cls.methods.values():
        fn = project.functions[method_qname]
        node = fn.node
        # annotated parameters: self.x = param where param: ProjectClass
        param_types: Dict[str, str] = {}
        args = node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            klass = _annotation_class(project, module, arg.annotation)
            if klass:
                param_types[arg.arg] = klass
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            if value is None:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if isinstance(value, ast.Call):
                    lock = _lock_from_call(
                        project, module, value, f"{cls.qname}.{attr}"
                    )
                    if lock is not None:
                        cls.attr_locks.setdefault(attr, lock)
                        continue
                    klass = _resolve_constructor(project, module, value)
                    if klass:
                        cls.attr_types.setdefault(attr, klass)
                elif isinstance(value, ast.Name) and \
                        value.id in param_types:
                    cls.attr_types.setdefault(
                        attr, param_types[value.id]
                    )
        # annotated attribute declarations in the class body
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            klass = _annotation_class(
                project, info.name, stmt.annotation
            )
            if klass:
                cls.attr_types.setdefault(stmt.target.id, klass)


def _resolve_constructor(project: Project, module: str,
                         call: ast.Call) -> Optional[str]:
    """The project class ``call`` constructs, if any."""
    name = dotted_name(call.func)
    if name is None:
        return None
    head = name.split(".")[0]
    resolved = project.resolve_import(module, head)
    if resolved is not None and "." in name:
        resolved = resolved + "." + name.split(".", 1)[1]
    for candidate in (resolved, name, f"{module}.{name}"):
        if candidate and candidate in project.classes:
            return candidate
    return None


class _FunctionCallCollector(ast.NodeVisitor):
    """Extract resolved call sites and local variable types for one
    function body (nested defs are separate functions; skipped here)."""

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.module = fn.module
        self.local_types: Dict[str, str] = {}
        self.local_locks: Dict[str, LockInfo] = {}
        self.sites: List[CallSite] = []
        self._collect_param_types()

    def _collect_param_types(self) -> None:
        args = self.fn.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            klass = _annotation_class(
                self.project, self.module, arg.annotation
            )
            if klass:
                self.local_types[arg.arg] = klass

    # -- traversal: do not descend into nested function/class defs -----
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.fn.node:
            return
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    # -- typed locals ---------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assignment(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            klass = _annotation_class(
                self.project, self.module, node.annotation
            )
            if klass:
                self.local_types[node.target.id] = klass
        if node.value is not None:
            self._record_assignment([node.target], node.value)
        self.generic_visit(node)

    def _record_assignment(self, targets: List[ast.AST],
                           value: ast.AST) -> None:
        name_targets = [t.id for t in targets if isinstance(t, ast.Name)]
        if not name_targets:
            return
        if isinstance(value, ast.Call):
            lock = _lock_from_call(
                self.project, self.module, value,
                f"{self.fn.qname}.{name_targets[0]}",
            )
            if lock is not None:
                for t in name_targets:
                    self.local_locks[t] = lock
                return
            klass = _resolve_constructor(self.project, self.module, value)
            if klass:
                for t in name_targets:
                    self.local_types[t] = klass
        elif isinstance(value, ast.Attribute):
            attr_cls = self._receiver_class_of(value)
            if attr_cls:
                for t in name_targets:
                    self.local_types[t] = attr_cls

    # -- receiver typing ------------------------------------------------
    def _receiver_class_of(self, node: ast.AST) -> Optional[str]:
        """The project class of an expression, where inferable."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.fn.cls:
                return self.fn.cls
            return self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._receiver_class_of(node.value)
            if base is not None:
                cls = self.project.classes.get(base)
                while cls is not None:
                    if node.attr in cls.attr_types:
                        return cls.attr_types[node.attr]
                    cls = self.project.classes.get(
                        cls.bases[0]
                    ) if cls.bases else None
            return None
        if isinstance(node, ast.Call):
            return _resolve_constructor(self.project, self.module, node)
        return None

    # -- call resolution ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callees = self._resolve(node)
        if callees:
            self.sites.append(
                CallSite(
                    node=node,
                    callees=tuple(callees),
                    dotted=dotted_name(node.func),
                )
            )
        self.generic_visit(node)

    def _resolve(self, node: ast.Call) -> List[str]:
        func = node.func
        project = self.project
        if isinstance(func, ast.Name):
            name = func.id
            # module-level function in this module
            qname = f"{self.module}.{name}"
            if qname in project.functions:
                return [qname]
            target = project.resolve_import(self.module, name)
            if target:
                if target in project.functions:
                    return [target]
                if target in project.classes:
                    init = project.method_of(target, "__init__")
                    return [init] if init else []
            if f"{self.module}.{name}" in project.classes or (
                target in project.classes if target else False
            ):
                return []
            return []
        if isinstance(func, ast.Attribute):
            receiver_cls = self._receiver_class_of(func.value)
            if receiver_cls is not None:
                method = project.method_of(receiver_cls, func.attr)
                return [method] if method else []
            # module alias: mod.fn(...)
            base = dotted_name(func.value)
            if base is not None:
                target = project.resolve_import(
                    self.module, base.split(".")[0]
                )
                if target is not None:
                    if "." in base:
                        target = target + "." + base.split(".", 1)[1]
                    candidate = f"{target}.{func.attr}"
                    if candidate in project.functions:
                        return [candidate]
                    if target in project.classes:
                        method = project.method_of(target, func.attr)
                        return [method] if method else []
        return []


def _source_digest(paths: Sequence[Tuple[str, str]]) -> str:
    h = hashlib.sha256()
    h.update(f"v{CACHE_VERSION}".encode())
    for path, source in sorted(paths):
        h.update(path.encode())
        h.update(hashlib.sha256(source.encode()).digest())
    return h.hexdigest()


def build_project(
    files: Sequence[Path],
    cache_dir: Optional[Path] = None,
) -> Tuple[Project, CallGraph]:
    """Parse ``files`` and build the symbol table + call graph.

    ``cache_dir``, when given, memoizes the result keyed on the sha256
    of every source file — an unchanged tree is a cache hit.
    """
    sources: List[Tuple[str, str]] = []
    for f in files:
        try:
            sources.append((Path(f).as_posix(), Path(f).read_text(
                encoding="utf-8"
            )))
        except OSError as exc:
            logger.warning("deep lint skipping unreadable %s: %s", f, exc)

    cache_file: Optional[Path] = None
    if cache_dir is not None:
        digest = _source_digest(sources)
        cache_file = Path(cache_dir) / f"callgraph-{digest[:24]}.pkl"
        if cache_file.exists():
            try:
                with open(cache_file, "rb") as fh:
                    project, graph = pickle.load(fh)
                return project, graph
            except (OSError, pickle.PickleError, EOFError, ValueError,
                    AttributeError) as exc:
                logger.warning("deep lint cache unreadable (%s); "
                               "rebuilding", exc)

    project = Project()
    for path, source in sources:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            # per-file linting owns the parse-error finding
            logger.debug("deep lint skipping unparseable %s: %s",
                         path, exc)
            continue
        name = module_name_for(Path(path))
        info = ModuleInfo(name=name, path=path, tree=tree, source=source)
        project.modules[name] = info
        project.modules_by_path[path] = info

    # pass 1: imports (needed before class-base / constant resolution)
    for info in project.modules.values():
        info.imports = _collect_imports(info.tree, info.name)
    # pass 2: classes, functions, constants, module locks
    for info in project.modules.values():
        _collect_module_level(project, info)
    # pass 3: attribute types and lock attributes (needs all classes)
    for info in project.modules.values():
        for stmt in info.tree.body:
            if isinstance(stmt, ast.ClassDef):
                cls = project.classes[f"{info.name}.{stmt.name}"]
                _infer_class_attrs(project, info, cls)

    graph = CallGraph()
    for fn in project.functions.values():
        collector = _FunctionCallCollector(project, fn)
        collector.visit(fn.node)
        for site in collector.sites:
            graph.add(fn.qname, site)
        # stash per-function typing for the analyses to reuse
        fn_locals = dict(collector.local_types)
        fn_locks = dict(collector.local_locks)
        setattr(fn, "local_types", fn_locals)
        setattr(fn, "local_locks", fn_locks)

    if cache_file is not None:
        try:
            cache_file.parent.mkdir(parents=True, exist_ok=True)
            tmp = cache_file.with_suffix(".tmp")
            with open(tmp, "wb") as fh:
                pickle.dump((project, graph), fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(cache_file)
        except (OSError, pickle.PickleError) as exc:
            logger.warning("deep lint cache write failed: %s", exc)
    return project, graph
