"""The accepted-findings baseline for ``lint --deep``.

Whole-program analyses are *may*-analyses: some findings describe paths
that cannot happen for reasons only a human can certify (a lock taken
in a branch the callee never reaches, a set whose iteration order is
washed out by a later reduction).  Rather than weaken the analyses or
scatter inline suppressions through code that is not wrong, such
findings are recorded once in a committed baseline file
(``lint-baseline.json``) with a written reason each — CI fails on any
finding *not* in the baseline, and reports baseline entries that no
longer match anything so the file cannot rot.

Matching is deliberately line-number-free: a finding matches an entry
when the rule matches, the message matches exactly, and one path is a
suffix of the other (so absolute vs. repo-relative invocations agree).
Unrelated edits that merely move code therefore do not invalidate the
baseline, while any change to what the analysis actually reports does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.lint.core import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

#: schema version of the baseline document
BASELINE_VERSION = 1

#: the committed file ``--deep`` picks up automatically
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: identity minus the line number."""

    rule: str
    path: str
    message: str
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule or finding.message != self.message:
            return False
        a = Path(finding.path).as_posix()
        b = Path(self.path).as_posix()
        return a == b or a.endswith("/" + b) or b.endswith("/" + a)


@dataclass
class Baseline:
    """The parsed baseline file."""

    entries: List[BaselineEntry] = field(default_factory=list)
    path: str = ""

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: "Path | str") -> Baseline:
    p = Path(path)
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValidationError(f"cannot read baseline {p}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"baseline {p} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or "entries" not in doc:
        raise ValidationError(
            f"baseline {p} must be an object with an 'entries' list"
        )
    entries: List[BaselineEntry] = []
    for i, raw in enumerate(doc["entries"]):
        if not isinstance(raw, dict) or not {"rule", "path",
                                             "message"} <= set(raw):
            raise ValidationError(
                f"baseline {p} entry {i} needs rule/path/message keys"
            )
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                message=str(raw["message"]),
                reason=str(raw.get("reason", "")),
            )
        )
    return Baseline(entries=entries, path=str(p))


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], int, List[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(kept, matched_count, stale_entries)``: findings not
    covered by any entry, how many were covered, and entries that
    covered nothing (candidates for deletion).
    """
    kept: List[Finding] = []
    used = [False] * len(baseline.entries)
    matched = 0
    for finding in findings:
        hit = False
        for i, entry in enumerate(baseline.entries):
            if entry.matches(finding):
                used[i] = True
                hit = True
        if hit:
            matched += 1
        else:
            kept.append(finding)
    stale = [e for i, e in enumerate(baseline.entries) if not used[i]]
    return kept, matched, stale


def write_baseline(
    findings: Sequence[Finding],
    path: "Path | str",
    reason: str = "accepted by --write-baseline; add a per-entry reason",
) -> Baseline:
    """Record ``findings`` as the new baseline at ``path``."""
    seen: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for f in sorted(findings):
        key = (f.rule, Path(f.path).as_posix(), f.message)
        if key not in seen:
            seen[key] = BaselineEntry(
                rule=key[0], path=key[1], message=key[2], reason=reason
            )
    baseline = Baseline(entries=list(seen.values()), path=str(path))
    doc = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "path": e.path,
                "message": e.message,
                "reason": e.reason,
            }
            for e in baseline.entries
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
    return baseline
