"""Finding renderers: human text and machine-readable JSON.

The JSON document is the CI contract (schema version 1)::

    {
      "version": 1,
      "clean": false,
      "files_checked": 83,
      "rules": ["csr-python-loop", ...],
      "summary": {"missing-dtype": 2},
      "findings": [
        {"rule": "missing-dtype", "path": "src/...", "line": 66,
         "col": 19, "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.lint.core import LintReport

__all__ = [
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "render_json",
    "render_sarif",
    "render_text",
]

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """One ``path:line:col: [rule] message`` line per finding + a tally."""
    lines = [f.render() for f in report.findings]
    if report.clean:
        lines.append(
            f"clean: {report.files_checked} files checked, "
            f"{len(report.rules)} rules"
        )
    else:
        per_rule = ", ".join(
            f"{rule}: {count}" for rule, count in report.summary().items()
        )
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} files checked ({per_rule})"
        )
    return "\n".join(lines)


def render_sarif(
    report: LintReport,
    descriptions: Optional[Dict[str, str]] = None,
) -> str:
    """A SARIF 2.1.0 document (the GitHub code-scanning contract).

    ``descriptions`` maps rule/analysis name to its one-line
    description; unnamed rules still get a rule entry so every result's
    ``ruleIndex`` resolves.
    """
    descriptions = dict(descriptions or {})
    rule_ids = sorted(
        set(report.rules)
        | {f.rule for f in report.findings}
        | set(descriptions)
    )
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": rid},
            "fullDescription": {
                "text": descriptions.get(rid, rid)
            },
        }
        for rid in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(f.path).as_posix(),
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
        }
        for f in report.findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-temporal-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


def render_json(report: LintReport) -> str:
    """The schema-versioned JSON report consumed by CI."""
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "clean": report.clean,
            "files_checked": report.files_checked,
            "rules": report.rules,
            "summary": report.summary(),
            "findings": [f.as_dict() for f in report.findings],
        },
        indent=2,
    )
