"""Finding renderers: human text and machine-readable JSON.

The JSON document is the CI contract (schema version 1)::

    {
      "version": 1,
      "clean": false,
      "files_checked": 83,
      "rules": ["csr-python-loop", ...],
      "summary": {"missing-dtype": 2},
      "findings": [
        {"rule": "missing-dtype", "path": "src/...", "line": 66,
         "col": 19, "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json

from repro.lint.core import LintReport

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text"]

JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """One ``path:line:col: [rule] message`` line per finding + a tally."""
    lines = [f.render() for f in report.findings]
    if report.clean:
        lines.append(
            f"clean: {report.files_checked} files checked, "
            f"{len(report.rules)} rules"
        )
    else:
        per_rule = ", ".join(
            f"{rule}: {count}" for rule, count in report.summary().items()
        )
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} files checked ({per_rule})"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The schema-versioned JSON report consumed by CI."""
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "clean": report.clean,
            "files_checked": report.files_checked,
            "rules": report.rules,
            "summary": report.summary(),
            "findings": [f.as_dict() for f in report.findings],
        },
        indent=2,
    )
