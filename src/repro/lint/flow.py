"""Interprocedural lock-flow facts on top of the call graph.

:mod:`repro.lint.callgraph` answers *who calls whom*; this module
answers *what is held where*.  Two layers:

* **Local scan** (:func:`scan_function_locks`): walk one function body
  tracking the ``with`` stack, resolving each context manager to a
  :class:`~repro.lint.callgraph.LockInfo` — local lock variables,
  ``self``-attribute locks (through base classes and through typed
  attributes like ``self.cluster._lock``), module-level locks, and a
  last-resort name heuristic (``*lock*``/``*mutex*`` spellings become
  rank-``None`` locks, held but unordered).  The scan yields every
  acquisition site with the locks already held at that point, and the
  held set at every call expression.

* **Entry-set fixpoint** (:func:`compute_lock_flow`): a may-analysis
  over the call graph.  ``entry_held[g]`` accumulates every lock that
  *some* caller may hold when ``g`` runs: for each call site ``f -> g``,
  the locks held locally at the site plus ``f``'s own entry set flow
  into ``g``.  Each propagated lock carries a witness chain
  ("acquired in ``A`` at line 10, via ``B:42``") so a report one or two
  frames away from the acquisition can still show the path.  The
  fixpoint is a standard worklist; monotone set growth bounds it.

May-analysis means findings read "may be held", not "is held" — a
caller that branches around the lock still propagates it.  That is the
right polarity for a lock-order checker: rank inversion only has to be
*possible* to be a bug.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    LockInfo,
    Project,
    dotted_name,
)

__all__ = [
    "Acquisition",
    "FunctionLocks",
    "HeldLock",
    "LockFlow",
    "compute_lock_flow",
    "scan_function_locks",
]

#: cap on witness-chain length in messages (not on propagation depth)
_MAX_CHAIN = 6


@dataclass
class Acquisition:
    """One ``with <lock>:`` site inside a function."""

    node: ast.AST             # the context expression (has lineno/col)
    lock: LockInfo
    held_before: Tuple[LockInfo, ...]  # locks already held at this site


@dataclass
class FunctionLocks:
    """Local lock facts for one function."""

    qname: str
    acquisitions: List[Acquisition] = field(default_factory=list)
    #: id(ast.Call) -> locks held at that expression
    held_at_call: Dict[int, Tuple[LockInfo, ...]] = field(
        default_factory=dict
    )


@dataclass(frozen=True)
class HeldLock:
    """A lock that may be held on entry, with its witness chain."""

    lock: LockInfo
    chain: Tuple[str, ...]    # ("mod.Class.fn:123", ...) acquisition-first

    def describe(self) -> str:
        rank = f" (rank {self.lock.rank})" if self.lock.rank is not None \
            else ""
        via = " -> ".join(self.chain[:_MAX_CHAIN])
        return f"'{self.lock.name}'{rank} acquired via {via}"


@dataclass
class LockFlow:
    """The full lock model: local facts + interprocedural entry sets."""

    per_function: Dict[str, FunctionLocks]
    #: fn qname -> lock owner key -> HeldLock (first witness wins)
    entry_held: Dict[str, Dict[str, HeldLock]]

    def locals_of(self, qname: str) -> FunctionLocks:
        return self.per_function.get(qname) or FunctionLocks(qname=qname)


def _looks_like_lock(name: str) -> bool:
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered


def _resolve_lock_expr(project: Project, fn: FunctionInfo,
                       expr: ast.AST) -> Optional[LockInfo]:
    """The lock ``expr`` denotes inside ``fn``, if it denotes one.

    Resolution order: known local lock vars, ``self.attr`` locks
    (through bases), attribute locks on typed receivers
    (``self.cluster._lock``), module-level locks, then the name
    heuristic for lock-ish spellings we could not resolve.
    """
    # ``with self._lock.acquire_timeout(...)``-style wrappers: look at
    # the receiver of a call used as a context manager
    if isinstance(expr, ast.Call):
        inner = _resolve_lock_expr(project, fn, expr.func)
        if inner is not None:
            return inner
        return None
    local_locks: Dict[str, LockInfo] = getattr(fn, "local_locks", {})
    local_types: Dict[str, str] = getattr(fn, "local_types", {})
    if isinstance(expr, ast.Name):
        if expr.id in local_locks:
            return local_locks[expr.id]
        info = project.modules.get(fn.module)
        if info is not None and expr.id in info.module_locks:
            return info.module_locks[expr.id]
        if _looks_like_lock(expr.id):
            return LockInfo(name=expr.id, rank=None,
                            owner=f"{fn.qname}:{expr.id}")
        return None
    if isinstance(expr, ast.Attribute):
        # receiver class: self, typed local, or typed attribute chain
        receiver_cls: Optional[str] = None
        value = expr.value
        if isinstance(value, ast.Name):
            if value.id == "self" and fn.cls:
                receiver_cls = fn.cls
            else:
                receiver_cls = local_types.get(value.id)
        elif isinstance(value, ast.Attribute):
            # one extra hop: self.attr.lock / local.attr.lock
            base_cls: Optional[str] = None
            if isinstance(value.value, ast.Name):
                if value.value.id == "self" and fn.cls:
                    base_cls = fn.cls
                else:
                    base_cls = local_types.get(value.value.id)
            if base_cls is not None:
                cls = project.classes.get(base_cls)
                if cls is not None and value.attr in cls.attr_types:
                    receiver_cls = cls.attr_types[value.attr]
        if receiver_cls is not None:
            lock = project.lock_attr(receiver_cls, expr.attr)
            if lock is not None:
                return lock
        if _looks_like_lock(expr.attr):
            spelling = dotted_name(expr) or expr.attr
            return LockInfo(name=spelling, rank=None,
                            owner=f"{fn.qname}:{spelling}")
    return None


class _LockScanner:
    """Walk one function body tracking the ``with``-held lock stack."""

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.result = FunctionLocks(qname=fn.qname)

    def scan(self) -> FunctionLocks:
        body = getattr(self.fn.node, "body", [])
        for stmt in body:
            self._visit(stmt, ())
        return self.result

    def _visit(self, node: ast.AST, held: Tuple[LockInfo, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs run later, under their own locks
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                self._visit_expr(item.context_expr, inner)
                lock = _resolve_lock_expr(
                    self.project, self.fn, item.context_expr
                )
                if lock is not None:
                    self.result.acquisitions.append(
                        Acquisition(
                            node=item.context_expr, lock=lock,
                            held_before=inner,
                        )
                    )
                    inner = inner + (lock,)
            for child in node.body:
                self._visit(child, inner)
            return
        # statements: record calls in expressions, recurse into blocks
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, held)
            else:
                self._visit(child, held)

    def _visit_expr(self, node: ast.AST, held: Tuple[LockInfo, ...]) -> None:
        if isinstance(node, (ast.Lambda,)):
            return  # deferred execution
        if isinstance(node, ast.Call):
            self.result.held_at_call[id(node)] = held
        for child in ast.iter_child_nodes(node):
            self._visit_expr(child, held)


def scan_function_locks(project: Project,
                        fn: FunctionInfo) -> FunctionLocks:
    """Local lock facts (acquisitions, held-at-call) for one function."""
    return _LockScanner(project, fn).scan()


def compute_lock_flow(project: Project, graph: CallGraph) -> LockFlow:
    """Scan every function, then run the entry-set fixpoint."""
    per_function = {
        qname: scan_function_locks(project, fn)
        for qname, fn in project.functions.items()
    }
    entry_held: Dict[str, Dict[str, HeldLock]] = {
        qname: {} for qname in project.functions
    }

    worklist = deque(project.functions)
    queued = set(worklist)
    while worklist:
        caller = worklist.popleft()
        queued.discard(caller)
        caller_entry = entry_held[caller]
        locks_here = per_function[caller]
        for site in graph.sites.get(caller, ()):
            held_local = locks_here.held_at_call.get(id(site.node), ())
            # build the combined may-held map flowing into the callee
            flowing: Dict[str, HeldLock] = dict(caller_entry)
            for lock in held_local:
                flowing.setdefault(
                    lock.owner,
                    HeldLock(
                        lock=lock,
                        chain=(f"{caller}:{site.node.lineno}",),
                    ),
                )
            if not flowing:
                continue
            for callee in site.callees:
                target = entry_held.setdefault(callee, {})
                changed = False
                for key, held in flowing.items():
                    if key in target:
                        continue
                    chain = held.chain
                    hop = f"{caller}:{site.node.lineno}"
                    if chain[-1:] != (hop,) and len(chain) < _MAX_CHAIN:
                        chain = chain + (hop,)
                    target[key] = HeldLock(lock=held.lock, chain=chain)
                    changed = True
                if changed and callee not in queued and \
                        callee in project.functions:
                    worklist.append(callee)
                    queued.add(callee)

    return LockFlow(per_function=per_function, entry_held=entry_held)
