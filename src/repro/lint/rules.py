"""The project-specific checkers.

Each rule encodes an invariant the codebase depends on, with the defect
class that motivated it:

* ``mmap-escape`` — PR 1's use-after-unmap segfaults: a function handing
  out a view of a memory-mapped array lets the caller keep a pointer into
  pages that vanish on ``close()``.
* ``lock-discipline`` — the writer/executor races: an attribute guarded by
  ``with self._lock:`` in one method and written bare in another is not
  guarded at all.
* ``lock-blocking-call`` — joining threads or waiting on futures while
  holding a lock is the classic self-deadlock shape.
* ``unseeded-rng`` — hidden nondeterminism in kernels and benchmarks makes
  reproduction results unreproducible.
* ``missing-dtype`` — allocations in hot kernels without an explicit
  ``dtype=`` drift to platform defaults and silently double memory traffic.
* ``csr-python-loop`` — Python-level loops over CSR arrays are the O(n)
  scalar fallbacks the vectorized kernels exist to avoid.
* ``silent-except`` — swallowed exceptions in drivers hide the failure
  until it resurfaces somewhere unrelated.
* ``mutable-default`` — mutable default arguments and module-level mutable
  state are shared across calls and threads by accident.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.core import Rule

__all__ = ["ALL_RULES", "rule_descriptions"]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _dotted_name(node: ast.AST) -> Optional[str]:
    """``np.random.rand`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute (``x.col`` -> ``col``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish(expr: ast.AST) -> bool:
    """Whether a ``with`` context expression looks like a lock acquire."""
    name = _terminal_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = _terminal_name(expr.func)
    return name is not None and "lock" in name.lower()


def _self_attr_path(node: ast.AST) -> Optional[str]:
    """``self.a.b`` -> ``a.b``; ``self.a[i]`` -> ``a``; else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _imports_module(tree: ast.Module, module: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.split(".")[0] == module for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == module:
                return True
    return False


def _uses_locks(tree: ast.Module) -> bool:
    """Whether the module can hold locks: imports ``threading`` or pulls
    the sanitizer's ordered-lock constructors from :mod:`repro.sanitize`."""
    if _imports_module(tree, "threading"):
        return True
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module.endswith("sanitize")
        ):
            if any(a.name in ("make_lock", "OrderedLock")
                   for a in node.names):
                return True
    return False


# ----------------------------------------------------------------------
# 1. mmap / zero-copy escape
# ----------------------------------------------------------------------
class MmapEscapeRule(Rule):
    """Returning views of memory-mapped arrays without a copy."""

    name = "mmap-escape"
    description = (
        "function returns a slice/view of a memory-mapped or shared-memory "
        "array without copying; the view dangles (and segfaults) once the "
        "map is closed or the segment unlinked"
    )
    motivation = (
        "PR 1's use-after-unmap crashes: returning a view of a "
        "`np.memmap` lets callers keep pointers into pages that vanish "
        "on `close()`. The same dangling-view shape exists for "
        "shared-memory arenas, so `.shared_view(...)` results "
        "(`repro.parallel.shared_arena`) are tainted too — a view of an "
        "unlinked segment is a segfault in waiting. Flags returning (or "
        "passing through an unknown call) anything assigned from "
        "`np.memmap(...)`/`.shared_view(...)` without an intervening "
        "`np.array(..., copy=True)` / `.copy()`."
    )
    scopes = ("service/", "utils/", "parallel/", "runtime/", "graph/io")

    #: call names that materialize a copy and therefore defuse the escape
    SAFE_CALLS = {"array", "ascontiguousarray", "copy", "deepcopy"}

    #: trailing call names whose result aliases externally-owned memory:
    #: ``np.memmap`` (rank-store artifacts) and ``.shared_view`` (arena
    #: segments published by repro.parallel.shared_arena)
    VIEW_CALLS = {"memmap", "shared_view"}

    def run(self, tree: ast.Module) -> None:
        self._tainted_names: Set[str] = set()
        self._tainted_attrs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_memmap_call(
                node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._tainted_names.add(target.id)
                    else:
                        attr = _self_attr_path(target)
                        if attr:
                            self._tainted_attrs.add(attr)
        self.visit(tree)

    def _is_memmap_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = _dotted_name(node.func)
        return (
            dotted is not None
            and dotted.split(".")[-1] in self.VIEW_CALLS
        )

    def _tainted(self, node: ast.AST) -> Optional[str]:
        """The mapped array's name if ``node`` aliases one, else None."""
        while isinstance(node, ast.Subscript):
            node = node.value
        attr = _self_attr_path(node)
        if attr is not None and attr in self._tainted_attrs:
            return f"self.{attr}"
        if isinstance(node, ast.Name) and node.id in self._tainted_names:
            return node.id
        return None

    def visit_Return(self, node: ast.Return) -> None:
        value = node.value
        source: Optional[str] = None
        if value is not None:
            source = self._tainted(value)
            if source is None and self._is_memmap_call(value):
                source = _dotted_name(value.func)
            if source is None and isinstance(value, ast.Call):
                func_name = _terminal_name(value.func)
                if func_name not in self.SAFE_CALLS:
                    for arg in value.args:
                        source = self._tainted(arg)
                        if source:
                            break
        if source:
            self.report(
                node,
                f"returns a view of memory-mapped array '{source}' "
                "without copying; wrap in np.array(..., copy=True) or "
                "justify with a disable comment",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# 2. lock discipline
# ----------------------------------------------------------------------
class LockDisciplineRule(Rule):
    """Attributes written both under and outside a lock."""

    name = "lock-discipline"
    description = (
        "an instance attribute is written under `with self._lock:` in one "
        "place and without the lock in another — the lock protects nothing"
    )
    motivation = (
        "The writer/executor races: an attribute written under "
        "`with self._lock:` in one method and bare in another is not "
        "protected at all. The real `RankStoreWriter._closed` race this "
        "rule caught is fixed in the same PR that introduced it."
    )
    scopes = ()  # any module that imports threading

    #: constructor-shaped methods whose writes happen before sharing
    EXEMPT_METHODS = {"__init__", "__new__", "__post_init__"}

    def run(self, tree: ast.Module) -> None:
        if not _uses_locks(tree):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(node)

    def _check_class(self, cls: ast.ClassDef) -> None:
        # attr path -> (locked_writes, unlocked_write_nodes)
        writes: Dict[str, Tuple[int, List[ast.AST]]] = {}

        def record(target: ast.AST, node: ast.AST, locked: bool) -> None:
            attr = _self_attr_path(target)
            if attr is None or "lock" in attr.lower():
                return
            locked_count, unlocked = writes.setdefault(attr, (0, []))
            if locked:
                writes[attr] = (locked_count + 1, unlocked)
            else:
                unlocked.append(node)

        def walk(node: ast.AST, depth: int) -> None:
            if isinstance(node, ast.With):
                held = depth + sum(
                    1 for item in node.items
                    if _is_lockish(item.context_expr)
                )
                for child in node.body:
                    walk(child, held)
                return
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(target, node, depth > 0)
            elif isinstance(node, ast.AugAssign) or (
                isinstance(node, ast.AnnAssign) and node.value is not None
            ):
                record(node.target, node, depth > 0)
            for child in ast.iter_child_nodes(node):
                walk(child, depth)

        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name not in self.EXEMPT_METHODS
            ):
                for stmt in item.body:
                    walk(stmt, 0)

        for attr, (locked_count, unlocked) in sorted(writes.items()):
            if locked_count and unlocked:
                for node in unlocked:
                    self.report(
                        node,
                        f"attribute 'self.{attr}' of class {cls.name} is "
                        "written here without the lock but under "
                        "`with ...lock:` elsewhere",
                    )


# ----------------------------------------------------------------------
# 3. blocking calls while holding a lock
# ----------------------------------------------------------------------
class LockBlockingCallRule(Rule):
    """join()/result()/wait()/sleep()/open() inside a lock's scope."""

    name = "lock-blocking-call"
    description = (
        "a blocking call (thread join, Future.result, wait, sleep, open) "
        "is made while holding a lock — the self-deadlock shape"
    )
    motivation = (
        "Self-deadlock shape: `Thread.join()`, `Future.result()`, "
        "`wait()`, `sleep()`, or `open()` while holding a lock."
    )
    scopes = ()  # any module that imports threading

    BLOCKING_METHODS = {"join", "result", "wait", "sleep"}
    BLOCKING_FUNCTIONS = {"open", "sleep"}

    def run(self, tree: ast.Module) -> None:
        if not _uses_locks(tree):
            return
        self._walk(tree, in_lock=False)

    def _walk(self, node: ast.AST, in_lock: bool) -> None:
        if isinstance(node, ast.With):
            held = in_lock or any(
                _is_lockish(item.context_expr) for item in node.items
            )
            for child in node.body:
                self._walk(child, held)
            return
        if in_lock and isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = (
                    func.attr if func.attr in self.BLOCKING_METHODS else None
                )
            elif isinstance(func, ast.Name):
                name = (
                    func.id if func.id in self.BLOCKING_FUNCTIONS else None
                )
            if name:
                self.report(
                    node,
                    f"blocking call '{name}()' while holding a lock; "
                    "release the lock first",
                )
        for child in ast.iter_child_nodes(node):
            self._walk(child, in_lock)


# ----------------------------------------------------------------------
# 4. unseeded RNG
# ----------------------------------------------------------------------
class UnseededRngRule(Rule):
    """Global-state numpy RNG or seedless default_rng in hot/bench code."""

    name = "unseeded-rng"
    description = (
        "numpy's global-state RNG (np.random.rand & co.) or "
        "np.random.default_rng() with no seed makes runs nondeterministic"
    )
    motivation = (
        "Nondeterministic reproduction results. Flags numpy's "
        "global-state RNG (`np.random.rand` & co.) and "
        "`np.random.default_rng()` with no seed."
    )
    scopes = ("kernels/", "pagerank/", "benchmarks/")

    LEGACY = {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "uniform", "normal",
        "poisson", "exponential", "binomial", "sample",
    }

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 3 and parts[-2] == "random" and parts[0] in (
                "np", "numpy"
            ):
                leaf = parts[-1]
                if leaf in self.LEGACY:
                    self.report(
                        node,
                        f"global-state RNG call '{dotted}'; use a seeded "
                        "np.random.default_rng(seed) generator",
                    )
                elif leaf == "default_rng" and (
                    not node.args
                    or (
                        isinstance(node.args[0], ast.Constant)
                        and node.args[0].value is None
                    )
                ):
                    self.report(
                        node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# 5. dtype drift in hot allocations
# ----------------------------------------------------------------------
class MissingDtypeRule(Rule):
    """np.zeros/ones/empty/full without an explicit dtype in hot kernels."""

    name = "missing-dtype"
    description = (
        "an ndarray allocation in a hot kernel has no explicit dtype=, "
        "so precision and memory traffic drift with the platform default"
    )
    motivation = (
        "dtype drift: `np.zeros/ones/empty/full` without an explicit "
        "`dtype=` inherits the platform default, silently changing "
        "precision and doubling memory traffic in hot kernels."
    )
    scopes = (
        "pagerank/", "pagerank/backends/", "kernels/", "programs/",
        "graph/temporal_csr", "graph/io",
        "benchmarks/bench_edge_compaction",
        "benchmarks/bench_backends",
    )

    #: allocator -> index of the positional dtype parameter
    ALLOCATORS = {"zeros": 1, "ones": 1, "empty": 1, "full": 2}

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            leaf = parts[-1]
            if (
                len(parts) == 2
                and parts[0] in ("np", "numpy")
                and leaf in self.ALLOCATORS
            ):
                has_kw = any(k.arg == "dtype" for k in node.keywords)
                has_pos = len(node.args) > self.ALLOCATORS[leaf]
                if not has_kw and not has_pos:
                    self.report(
                        node,
                        f"'{dotted}' allocation without an explicit "
                        "dtype=; hot-kernel arrays must pin their dtype",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# 6. Python loops over CSR arrays
# ----------------------------------------------------------------------
class CsrPythonLoopRule(Rule):
    """Scalar Python loops over CSR structure arrays."""

    name = "csr-python-loop"
    description = (
        "a Python-level for loop iterates over a CSR structure array "
        "(O(nnz) interpreter work); use the vectorized segment primitives"
    )
    motivation = (
        "O(nnz) interpreter loops over CSR structure arrays (`indptr`, "
        "`indices`, `rowA`, ...) — the scalar fallback the vectorized "
        "segment primitives exist to avoid."
    )
    scopes = (
        "kernels/", "pagerank/", "pagerank/backends/", "graph/",
        "programs/",
        "benchmarks/bench_edge_compaction", "benchmarks/bench_backends",
    )

    CSR_NAMES = {
        "indptr", "indices", "col", "cols", "row", "rows", "rowa", "cola",
        "timea", "row_ptr", "col_indices", "nnz_index",
    }

    def _csr_name(self, node: ast.AST) -> Optional[str]:
        name = _terminal_name(node)
        if name is not None and name.lower() in self.CSR_NAMES:
            return name
        return None

    def visit_For(self, node: ast.For) -> None:
        target = None
        it = node.iter
        direct = self._csr_name(it)
        if direct:
            target = direct
        elif isinstance(it, ast.Call) and _terminal_name(it.func) == "range":
            if it.args:
                arg = it.args[-1]  # range(n) and range(0, n) both end in n
                if (
                    isinstance(arg, ast.Call)
                    and _terminal_name(arg.func) == "len"
                    and arg.args
                ):
                    target = self._csr_name(arg.args[0])
                elif isinstance(arg, ast.Attribute) and arg.attr in (
                    "size", "shape"
                ):
                    target = self._csr_name(arg.value)
                elif isinstance(arg, ast.Subscript) and isinstance(
                    arg.value, ast.Attribute
                ) and arg.value.attr == "shape":
                    target = self._csr_name(arg.value.value)
        if target:
            self.report(
                node,
                f"Python loop over CSR array '{target}'; vectorize with "
                "numpy / repro.utils.segments instead",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# 7. silent exception swallowing
# ----------------------------------------------------------------------
class SilentExceptRule(Rule):
    """Bare excepts and pass-only handlers."""

    name = "silent-except"
    description = (
        "a bare `except:` or a handler whose body is only pass/continue "
        "swallows failures; log, narrow, or re-raise"
    )
    motivation = (
        "Swallowed failures: bare `except:` or handlers whose body is "
        "only `pass`/`continue`/`...` hide the error until it resurfaces "
        "somewhere unrelated."
    )
    scopes = ()

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            return True
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                "name the exception type",
            )
        elif all(self._is_noop(s) for s in node.body):
            caught = _dotted_name(node.type) or "exception"
            self.report(
                node,
                f"`except {caught}:` silently swallows the error; log it "
                "or re-raise",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# 8. mutable defaults and module-level mutable state
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    """Mutable default arguments; lowercase module-level mutable bindings."""

    name = "mutable-default"
    description = (
        "mutable default arguments are shared across calls; lowercase "
        "module-level list/dict/set bindings are hidden global state"
    )
    motivation = (
        "Accidental shared state: mutable default arguments, and "
        "lowercase module-level `list`/`dict`/`set` bindings (hidden "
        "globals). `UPPER_CASE` names are treated as frozen-by-"
        "convention constants."
    )
    scopes = ()

    MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict"}

    def _is_mutable_literal(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) in self.MUTABLE_CALLS
        )

    def run(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and not target.id.startswith("__")
                    and target.id != target.id.upper()
                    and self._is_mutable_literal(stmt.value)
                ):
                    self.report(
                        stmt,
                        f"module-level mutable binding '{target.id}'; use "
                        "an UPPER_CASE constant name (treated as frozen by "
                        "convention) or move it into a class/function",
                    )
        self.visit(tree)

    def _check_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_literal(default):
                self.report(
                    default,
                    f"mutable default argument in '{node.name}()'; "
                    "default to None and allocate inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


ALL_RULES: Tuple[type, ...] = (
    MmapEscapeRule,
    LockDisciplineRule,
    LockBlockingCallRule,
    UnseededRngRule,
    MissingDtypeRule,
    CsrPythonLoopRule,
    SilentExceptRule,
    MutableDefaultRule,
)


def rule_descriptions() -> Dict[str, str]:
    """Rule name -> one-line description (for ``lint --list-rules``)."""
    return {r.name: r.description for r in ALL_RULES}
