"""repro.lint — the project-specific static-analysis suite.

Eight per-file AST checkers enforce the invariants this codebase's own
post-mortems produced (see ``docs/linting.md`` for the rule catalog and
each rule's motivating bug): zero-copy escapes from mmap-backed stores,
lock discipline in the serving layer, blocking calls under locks,
deterministic RNG, pinned dtypes in hot kernels, vectorized CSR access,
no swallowed exceptions, no shared mutable defaults.  On top of them,
``--deep`` (:mod:`repro.lint.analyses`) builds a project-wide call graph
(:mod:`repro.lint.callgraph`) and runs four whole-program analyses —
``lock-order``, ``async-blocking``, ``arena-lifecycle``,
``deep-determinism`` — that catch the cross-module twins the per-file
view cannot see.

Run from the CLI::

    repro-temporal lint src benchmarks
    repro-temporal lint --format json --select missing-dtype,unseeded-rng
    repro-temporal lint --deep --format sarif --output lint.sarif src
    repro-temporal lint --explain lock-order

or programmatically via :func:`lint_paths` / :func:`lint_source` /
:func:`repro.lint.analyses.run_deep`.  Intentional violations carry
``# lint: disable=<rule>`` with a one-line justification; certified-
impossible deep findings live in the committed ``lint-baseline.json``
instead.  The two most dangerous rules are additionally enforced at
runtime by :mod:`repro.sanitize`.
"""

from repro.lint.core import (
    Finding,
    LintReport,
    Rule,
    filter_suppressed,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    resolve_rules,
    statement_spans,
)
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.rules import ALL_RULES, rule_descriptions

__all__ = [
    "ALL_RULES",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "Rule",
    "SARIF_VERSION",
    "filter_suppressed",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rules",
    "rule_descriptions",
    "statement_spans",
]
