"""repro.lint — the project-specific static-analysis suite.

Eight AST-based checkers enforce the invariants this codebase's own
post-mortems produced (see ``docs/linting.md`` for the rule catalog and
each rule's motivating bug): zero-copy escapes from mmap-backed stores,
lock discipline in the serving layer, blocking calls under locks,
deterministic RNG, pinned dtypes in hot kernels, vectorized CSR access,
no swallowed exceptions, no shared mutable defaults.

Run from the CLI::

    repro-temporal lint src benchmarks
    repro-temporal lint --format json --select missing-dtype,unseeded-rng

or programmatically via :func:`lint_paths` / :func:`lint_source`.
Intentional violations carry ``# lint: disable=<rule>`` with a one-line
justification.  The two most dangerous rules are additionally enforced at
runtime by :mod:`repro.sanitize`.
"""

from repro.lint.core import (
    Finding,
    LintReport,
    Rule,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
)
from repro.lint.rules import ALL_RULES, rule_descriptions

__all__ = [
    "ALL_RULES",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "Rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "resolve_rules",
    "rule_descriptions",
]
