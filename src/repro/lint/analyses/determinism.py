"""Determinism analysis: unordered iteration and unseeded randomness on
paths that feed result values.

The paper's core guarantee is *byte-identical* postmortem answers: the
same run must produce the same ``RunResult`` values and the same
rank-store bytes every time, on every executor.  Two defect classes
break that silently:

* iterating a ``set``/``frozenset`` — element order depends on hash
  seeding and insertion history, so any accumulation, concatenation, or
  write driven by the iteration order differs between runs while every
  individual element is "correct";
* drawing from an unseeded RNG.

The per-file ``unseeded-rng`` rule is scoped to kernels and benchmarks;
this analysis instead asks *where the data goes*: it marks every
function that constructs a :class:`RunResult`/:class:`WindowResult` or
writes rank-store bytes (``write_window``/``write_store``) as a sink,
then walks the call graph in *both* directions from the sinks — callers
compute the arguments handed down into a sink, callees compute the
values a sink packages up — and flags unordered iteration or unseeded
draws anywhere in that neighborhood, with the witness chain showing the
path the tainted order travels.
``sorted(...)`` around the iterable defuses the finding, which is also
the fix.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.analyses.common import (
    Analysis,
    bfs_parents,
    bfs_toward_sinks,
    chain_from_roots,
    chain_to_sink,
)
from repro.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    Project,
    dotted_name,
)
from repro.lint.core import Finding
from repro.lint.flow import LockFlow

__all__ = ["DeepDeterminismAnalysis"]

#: constructors / writers whose inputs become result values or bytes
_SINK_CONSTRUCTORS = {"RunResult", "WindowResult"}
_SINK_METHODS = {"write_window"}
_SINK_FUNCTIONS = {"write_store"}

#: numpy legacy global-state draws (mirrors the per-file rule)
_NP_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "poisson", "exponential", "binomial", "sample",
}
#: stdlib random module draws
_STDLIB_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate",
}


def _is_sink_call(call: ast.Call) -> bool:
    func = call.func
    name = dotted_name(func)
    base = name.split(".")[-1] if name else None
    if base in _SINK_CONSTRUCTORS or base in _SINK_FUNCTIONS:
        return True
    return isinstance(func, ast.Attribute) and func.attr in _SINK_METHODS


class DeepDeterminismAnalysis(Analysis):
    name = "deep-determinism"
    description = (
        "iteration over an unordered set, or an unseeded RNG draw, on a "
        "call path that feeds RunResult values or rank-store bytes — "
        "each run produces different, individually-plausible output"
    )
    motivation = (
        "a driver accumulated per-window contributions by iterating a "
        "set of pending windows; every run wrote a valid rank store, no "
        "two runs wrote the same bytes, and the postmortem byte-equality "
        "check could never say which one was right"
    )

    def run(self, project: Project, graph: CallGraph,
            flow: LockFlow) -> List[Finding]:
        sinks = [
            qname for qname, fn in project.functions.items()
            if any(
                _is_sink_call(c)
                for c in ast.walk(fn.node)
                if isinstance(c, ast.Call)
            )
        ]
        if not sinks:
            return []
        # data reaches a sink from both directions: callers compute the
        # arguments handed down to it, callees compute the values it
        # packages up — a set-iteration in either feeds the result
        toward = bfs_toward_sinks(graph, sinks)
        beneath = bfs_parents(graph, sinks)
        findings: List[Finding] = []
        for qname in sorted(set(toward) | set(beneath)):
            fn = project.functions.get(qname)
            if fn is None:
                continue
            if qname in toward:
                suffix = "; feeds result values via " + chain_to_sink(
                    toward, qname
                ) if toward[qname] is not None else ""
            else:
                suffix = (
                    "; computes values beneath result construction via "
                    + chain_from_roots(beneath, qname)
                )
            set_vars = self._set_vars(fn)
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.For, ast.comprehension)):
                    label = self._unordered_label(node.iter, set_vars)
                    if label is not None:
                        anchor = node if isinstance(node, ast.For) \
                            else node.iter
                        findings.append(self.finding(
                            fn, anchor,
                            f"iterates over unordered {label}; element "
                            "order varies between runs"
                            f"{suffix} — wrap the iterable in sorted()",
                        ))
                elif isinstance(node, ast.Call):
                    message = self._unseeded_message(node)
                    if message is not None:
                        findings.append(self.finding(
                            fn, node, message + suffix,
                        ))
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _set_vars(fn: FunctionInfo) -> Set[str]:
        """Locals bound to set-typed values anywhere in the function."""
        out: Set[str] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_set = isinstance(value, (ast.Set, ast.SetComp))
            if not is_set and isinstance(value, ast.Call):
                name = dotted_name(value.func)
                is_set = name is not None and name.split(".")[-1] in (
                    "set", "frozenset"
                )
            if is_set:
                out.update(
                    t.id for t in node.targets
                    if isinstance(t, ast.Name)
                )
        return out

    @staticmethod
    def _unordered_label(iter_expr: ast.AST,
                         set_vars: Set[str]) -> Optional[str]:
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            return "set literal"
        if isinstance(iter_expr, ast.Call):
            name = dotted_name(iter_expr.func)
            base = name.split(".")[-1] if name else None
            if base in ("set", "frozenset"):
                return f"{base}(...)"
            return None
        if isinstance(iter_expr, ast.Name) and iter_expr.id in set_vars:
            return f"set '{iter_expr.id}'"
        return None

    @staticmethod
    def _unseeded_message(call: ast.Call) -> Optional[str]:
        name = dotted_name(call.func)
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and \
                parts[-2] == "random":
            leaf = parts[-1]
            if leaf in _NP_LEGACY:
                return (
                    f"global-state RNG call '{name}' on a result-feeding "
                    "path; use a seeded np.random.default_rng(seed)"
                )
            if leaf == "default_rng" and (
                not call.args or (
                    isinstance(call.args[0], ast.Constant)
                    and call.args[0].value is None
                )
            ) and not call.keywords:
                return (
                    "np.random.default_rng() without a seed on a "
                    "result-feeding path; pass an explicit seed"
                )
        if len(parts) == 2 and parts[0] == "random" and \
                parts[1] in _STDLIB_RANDOM:
            return (
                f"unseeded stdlib RNG call '{name}' on a result-feeding "
                "path; use random.Random(seed) or a seeded numpy "
                "generator"
            )
        return None
