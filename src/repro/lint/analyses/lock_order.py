"""Static lock-order analysis over the whole call graph.

:class:`repro.sanitize.OrderedLock` enforces the service-layer lock
hierarchy *dynamically*: acquiring a lock whose rank is not strictly
greater than the highest rank already held raises ``LockOrderError`` —
but only on the execution path that actually runs.  This analysis proves
the same property statically, before any test exercises the path:

* **Rank inversion** — at every ``with <ordered lock>:`` site, every
  lock that *may* already be held (locally enclosing ``with`` blocks,
  plus the interprocedural entry set from
  :func:`repro.lint.flow.compute_lock_flow`) must have strictly lower
  rank.  Equal rank included: ordered locks are not reentrant, so
  re-acquiring the same rank self-deadlocks just as surely.

* **Blocking call under a caller's lock** — the per-file
  ``lock-blocking-call`` rule sees ``with self._lock: t.join()``; it
  cannot see the caller that holds the lock when the ``join`` lives one
  frame deeper.  This check flags blocking calls in functions whose
  entry set is non-empty, and leaves the same-frame case to the
  per-file rule so each finding is reported exactly once.

Both messages carry the witness chain ("acquired via A:10 -> B:42") so
a report far from the acquisition still shows the path that creates it.
"""

from __future__ import annotations

from typing import List

from repro.lint.analyses.common import (
    Analysis,
    Finding,
    blocking_label,
    iter_function_calls,
)
from repro.lint.callgraph import CallGraph, Project
from repro.lint.flow import LockFlow

__all__ = ["LockOrderAnalysis"]


class LockOrderAnalysis(Analysis):
    name = "lock-order"
    description = (
        "a rank-ordered lock may be acquired while an equal- or "
        "higher-ranked lock is already held somewhere up the call "
        "chain, or a blocking call runs under a caller's lock — the "
        "static form of sanitize.LockOrderError"
    )
    motivation = (
        "the coordinator's health loop held the replica lock while "
        "calling into code that took the state lock — a rank inversion "
        "the dynamic OrderedLock only catches on the path that actually "
        "deadlocks under load, and only at runtime"
    )

    def run(self, project: Project, graph: CallGraph,
            flow: LockFlow) -> List[Finding]:
        findings: List[Finding] = []
        for qname, fn in project.functions.items():
            locks = flow.locals_of(qname)
            entry = flow.entry_held.get(qname, {})
            for acq in locks.acquisitions:
                if acq.lock.rank is None:
                    continue
                # local inversion: enclosing with-blocks in this frame
                for held in acq.held_before:
                    if held.rank is not None and \
                            held.rank >= acq.lock.rank:
                        findings.append(self.finding(
                            fn, acq.node,
                            f"acquires '{acq.lock.name}' (rank "
                            f"{acq.lock.rank}) while already holding "
                            f"'{held.name}' (rank {held.rank}); lock "
                            "ranks must be strictly increasing",
                        ))
                # interprocedural inversion: a caller may hold it
                for held in entry.values():
                    if held.lock.rank is not None and \
                            held.lock.rank >= acq.lock.rank:
                        findings.append(self.finding(
                            fn, acq.node,
                            f"acquires '{acq.lock.name}' (rank "
                            f"{acq.lock.rank}) while a caller may hold "
                            f"{held.describe()}; lock ranks must be "
                            "strictly increasing along every call chain",
                        ))
            if entry:
                witnesses = sorted(
                    entry.values(),
                    key=lambda h: (-(h.lock.rank or 0), h.lock.owner),
                )
                for call in iter_function_calls(fn):
                    label = blocking_label(call)
                    if label is None:
                        continue
                    findings.append(self.finding(
                        fn, call,
                        f"blocking call '{label}' while a caller may "
                        f"hold {witnesses[0].describe()}; release the "
                        "lock before calling in, or hoist the blocking "
                        "call out",
                    ))
        return findings
