"""Shared machinery for the whole-program analyses.

An :class:`Analysis` is the cross-module counterpart of the per-file
:class:`repro.lint.core.Rule`: same ``name``/``description`` contract,
same :class:`~repro.lint.core.Finding` output (so the reporters,
suppression comments, and baseline treat both uniformly), but ``run``
receives the whole :class:`~repro.lint.callgraph.Project` + call graph +
lock flow instead of one file's AST.

The helpers here are the idioms every analysis needs: walking one
function body without descending into nested ``def``s (a nested function
runs later, on someone else's stack), classifying blocking calls, and
BFS witness chains through the call graph — forward from roots
("reachable from coroutine A via B:42") and backward to sinks ("feeds
RunResult via solve:88").
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import CallGraph, FunctionInfo, Project
from repro.lint.core import Finding
from repro.lint.flow import LockFlow

__all__ = [
    "Analysis",
    "BLOCKING_FUNCTIONS",
    "BLOCKING_METHODS",
    "awaited_call_ids",
    "bfs_parents",
    "bfs_toward_sinks",
    "blocking_label",
    "chain_from_roots",
    "chain_to_sink",
    "iter_function_calls",
]

#: method names that block the calling thread (matches the per-file
#: ``lock-blocking-call`` rule; the async analysis extends this set)
BLOCKING_METHODS = {"join", "result", "wait", "sleep"}
#: bare-function spellings of the same
BLOCKING_FUNCTIONS = {"open", "sleep"}


class Analysis:
    """One whole-program checker."""

    name: str = ""
    description: str = ""
    #: the motivating-bug text, shared verbatim with docs/linting.md
    motivation: str = ""

    def run(self, project: Project, graph: CallGraph,
            flow: LockFlow) -> List[Finding]:
        raise NotImplementedError

    def finding(self, fn: FunctionInfo, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=fn.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


# ----------------------------------------------------------------------
# AST walking
# ----------------------------------------------------------------------
def iter_function_calls(fn: FunctionInfo) -> Iterator[ast.Call]:
    """Every ``ast.Call`` in ``fn``'s own body (nested defs excluded)."""
    stack: List[ast.AST] = list(getattr(fn.node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def awaited_call_ids(fn: FunctionInfo) -> Set[int]:
    """ids of Call nodes directly under ``await`` — they suspend, they
    do not block."""
    out: Set[int] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Await) and isinstance(
            node.value, ast.Call
        ):
            out.add(id(node.value))
    return out


def blocking_label(
    call: ast.Call,
    methods: Optional[Set[str]] = None,
    functions: Optional[Set[str]] = None,
) -> Optional[str]:
    """A short ``x.result()``-style label when ``call`` blocks, else
    None."""
    methods = BLOCKING_METHODS if methods is None else methods
    functions = BLOCKING_FUNCTIONS if functions is None else functions
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in methods:
        return f".{func.attr}()"
    if isinstance(func, ast.Name) and func.id in functions:
        return f"{func.id}()"
    return None


# ----------------------------------------------------------------------
# witness chains
# ----------------------------------------------------------------------
def bfs_parents(
    graph: CallGraph, roots: Sequence[str]
) -> Dict[str, Optional[Tuple[str, int]]]:
    """BFS forward from ``roots``: fn -> (caller, call line), None for
    roots.  Membership in the result *is* forward reachability."""
    parents: Dict[str, Optional[Tuple[str, int]]] = {
        r: None for r in roots
    }
    queue = deque(roots)
    while queue:
        f = queue.popleft()
        for site in graph.sites.get(f, ()):
            for callee in site.callees:
                if callee not in parents:
                    parents[callee] = (f, site.node.lineno)
                    queue.append(callee)
    return parents


def chain_from_roots(
    parents: Dict[str, Optional[Tuple[str, int]]], fn: str,
    limit: int = 6,
) -> str:
    """``root -> mid:42 -> fn`` for a forward BFS parent map."""
    parts: List[str] = [fn]
    cur = parents.get(fn)
    while cur is not None and len(parts) < limit:
        caller, line = cur
        parts.append(f"{caller}:{line}")
        cur = parents.get(caller)
    return " -> ".join(reversed(parts))


def bfs_toward_sinks(
    graph: CallGraph, sinks: Sequence[str]
) -> Dict[str, Optional[Tuple[str, int]]]:
    """BFS backward from ``sinks``: fn -> (next callee toward a sink,
    call line), None for sinks.  Membership *is* reverse reachability."""
    toward: Dict[str, Optional[Tuple[str, int]]] = {
        s: None for s in sinks
    }
    queue = deque(sinks)
    while queue:
        g = queue.popleft()
        for caller in graph.callers.get(g, ()):
            if caller in toward:
                continue
            line = next(
                (
                    s.node.lineno
                    for s in graph.sites.get(caller, ())
                    if g in s.callees
                ),
                0,
            )
            toward[caller] = (g, line)
            queue.append(caller)
    return toward


def chain_to_sink(
    toward: Dict[str, Optional[Tuple[str, int]]], fn: str,
    limit: int = 6,
) -> str:
    """``fn:12 -> mid:34 -> sink`` for a backward BFS map."""
    parts: List[str] = []
    cur: Optional[str] = fn
    while cur is not None and len(parts) < limit:
        step = toward.get(cur)
        if step is None:
            parts.append(cur)
            break
        callee, line = step
        parts.append(f"{cur}:{line}" if line else cur)
        cur = callee
    return " -> ".join(parts)
