"""Async-safety analysis: blocking work reachable from coroutines.

The cluster frontend runs an asyncio event loop on a background thread;
every coroutine scheduled on it shares that single thread.  One
synchronous ``Future.result()``, ``Thread.join()``, ``time.sleep()``,
pipe ``send``/``recv``/``poll``, or ranked-lock acquisition anywhere in
a coroutine's *synchronous* call tree stalls every in-flight request at
once — the whole point of the ``run_in_executor`` seam in
``service/cluster/frontend.py``.

The analysis takes every ``async def`` in the project as a root and
walks forward over call-graph edges.  Two properties make the walk
sound for this codebase:

* :mod:`repro.lint.callgraph` creates **no edge for callables passed as
  arguments**, so ``loop.run_in_executor(None, self.cluster.batch)``
  correctly does *not* drag the blocking cluster path into the
  coroutine's tree — handing work to the executor is the sanctioned
  fix, not a finding.
* Calls directly under ``await`` are skipped — ``await
  asyncio.sleep(...)`` suspends, it does not block.

Findings in the coroutine itself point at the offending call; findings
deeper in the tree carry the BFS witness chain back to the coroutine.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.analyses.common import (
    Analysis,
    awaited_call_ids,
    bfs_parents,
    blocking_label,
    chain_from_roots,
    iter_function_calls,
)
from repro.lint.callgraph import CallGraph, Project, dotted_name
from repro.lint.core import Finding
from repro.lint.flow import LockFlow

__all__ = ["AsyncBlockingAnalysis"]

#: the per-file blocking set, extended with lock/semaphore acquisition
#: and the multiprocessing pipe surface
_METHODS = {"join", "result", "wait", "sleep", "acquire",
            "send", "recv", "poll", "send_bytes", "recv_bytes"}
_FUNCTIONS = {"open", "sleep"}

#: receivers whose .send/.wait/... are asyncio-native, not blocking
_ASYNC_RECEIVERS = {"asyncio", "loop", "self.loop", "writer", "app"}


class AsyncBlockingAnalysis(Analysis):
    name = "async-blocking"
    description = (
        "a synchronous blocking operation (Future.result, Thread.join, "
        "sleep, pipe I/O, ranked-lock acquisition) is reachable from an "
        "async def coroutine — it stalls the whole event loop, not one "
        "request"
    )
    motivation = (
        "the frontend's health and stats handlers called straight into "
        "coordinator methods that take replica and counter locks on the "
        "event-loop thread; one slow replica froze every concurrent "
        "request, including the health probe meant to detect it"
    )

    def run(self, project: Project, graph: CallGraph,
            flow: LockFlow) -> List[Finding]:
        roots = [q for q, fn in project.functions.items() if fn.is_async]
        if not roots:
            return []
        parents = bfs_parents(graph, roots)
        findings: List[Finding] = []
        for qname in sorted(parents):
            fn = project.functions.get(qname)
            if fn is None:
                continue
            awaited = awaited_call_ids(fn) if fn.is_async else set()
            suffix = "" if fn.is_async else (
                "; reachable from coroutine via "
                + chain_from_roots(parents, qname)
            )
            for call in iter_function_calls(fn):
                if id(call) in awaited:
                    continue
                label = blocking_label(call, _METHODS, _FUNCTIONS)
                if label is None or self._async_native(call):
                    continue
                findings.append(self.finding(
                    fn, call,
                    f"blocking call '{label}' on the event-loop thread"
                    f"{suffix}; run it in an executor instead",
                ))
            for acq in flow.locals_of(qname).acquisitions:
                if acq.lock.rank is None:
                    continue
                findings.append(self.finding(
                    fn, acq.node,
                    f"acquires ranked lock '{acq.lock.name}' (rank "
                    f"{acq.lock.rank}) on the event-loop thread"
                    f"{suffix}; ranked locks block — take them on an "
                    "executor thread",
                ))
        return findings

    @staticmethod
    def _async_native(call: ast.Call) -> bool:
        """asyncio's own API surface is suspension, not blocking."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        receiver: Optional[str] = dotted_name(func.value)
        return receiver is not None and (
            receiver in _ASYNC_RECEIVERS
            or receiver.split(".")[-1] in ("loop", "asyncio")
        )
