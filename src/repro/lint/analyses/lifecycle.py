"""Shared-memory / mmap lifecycle analysis.

The arena protocol (:mod:`repro.parallel.shared_arena`) has a strict
lifecycle: the parent *creates* and eventually *unlinks* a segment,
workers *attach*, and every ``shared_view``/``np.memmap`` array is a
borrowed pointer into pages that vanish when the segment goes away.
The per-file ``mmap-escape`` rule catches a view returned from the
function that created it; this analysis sees the shapes one function
cannot:

* **use-after-close** — a view variable is used (returned, stored,
  passed on) at a program point *after* its source object's
  ``close()``/``unlink()``/``destroy()`` ran in the same function.
  This is PR 1's segfault class, caught statically.

* **transitive view escape** — ``f`` returns the result of ``g``, and
  ``g`` (possibly through more calls) returns a raw
  ``shared_view``/``np.memmap`` array.  The per-file rule sees ``g``;
  only the call graph sees that ``f`` re-exports the borrowed pointer
  another frame outward.  Function summaries (``returns_view``)
  propagate through the graph by fixpoint; a ``np.array``/``copy``
  wrapper defuses the escape, and sanctioned accessors (the arena's own
  ``shared_view``) participate in summaries without themselves being
  findings.

* **unclosed local segment** — a ``SharedArena(...)`` or
  ``SharedMemory(create=True)`` bound to a local that is never closed,
  returned, stored, or passed to anything leaks a ``/dev/shm`` segment
  on every call: nobody else can possibly clean up what nobody else can
  reach.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.analyses.common import Analysis
from repro.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    Project,
    dotted_name,
)
from repro.lint.core import Finding
from repro.lint.flow import LockFlow

__all__ = ["ArenaLifecycleAnalysis"]

#: trailing call names whose result borrows externally-owned pages
_VIEW_CALLS = {"shared_view", "memmap"}
#: call names constructing objects that own a shm segment
_SEGMENT_CTORS = {"SharedArena", "SharedMemory"}
#: methods that end an object's lifetime
_CLOSERS = {"close", "unlink", "destroy"}
#: copying wrappers that defuse an escape (matches mmap-escape)
_SAFE_CALLS = {"array", "ascontiguousarray", "copy", "deepcopy"}


def _call_basename(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    return name.split(".")[-1] if name else None


class ArenaLifecycleAnalysis(Analysis):
    name = "arena-lifecycle"
    description = (
        "a shared-memory view is used after its arena closed, escapes "
        "through a second return frame the per-file mmap-escape rule "
        "cannot see, or a locally-created segment is never closed"
    )
    motivation = (
        "a helper returned its caller's shared_view result verbatim; "
        "the per-file taint saw a clean function returning 'a numpy "
        "array', the process saw SIGSEGV when the coordinator unlinked "
        "the segment mid-query"
    )

    def run(self, project: Project, graph: CallGraph,
            flow: LockFlow) -> List[Finding]:
        returns_view = self._view_summaries(project, graph)
        findings: List[Finding] = []
        for qname, fn in sorted(project.functions.items()):
            findings.extend(self._check_use_after_close(fn))
            findings.extend(
                self._check_transitive_escape(
                    project, graph, fn, returns_view
                )
            )
            findings.extend(self._check_unclosed_segment(fn))
        return findings

    # ------------------------------------------------------------------
    # summaries: which functions (transitively) return raw views
    # ------------------------------------------------------------------
    def _returns_view_locally(self, fn: FunctionInfo) -> bool:
        view_vars = self._view_vars(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Call) and \
                    _call_basename(value) in _VIEW_CALLS:
                return True
            if isinstance(value, ast.Name) and value.id in view_vars:
                return True
        return False

    def _view_summaries(self, project: Project,
                        graph: CallGraph) -> Set[str]:
        summaries = {
            q for q, fn in project.functions.items()
            if self._returns_view_locally(fn)
        }
        changed = True
        while changed:
            changed = False
            for qname, fn in project.functions.items():
                if qname in summaries:
                    continue
                if self._returned_view_call(graph, fn, summaries):
                    summaries.add(qname)
                    changed = True
        return summaries

    @staticmethod
    def _returned_view_call(graph: CallGraph, fn: FunctionInfo,
                            summaries: Set[str]) -> Optional[ast.Return]:
        """The ``return g(...)`` statement whose callee returns a view."""
        site_by_id = {
            id(s.node): s for s in graph.sites.get(fn.qname, ())
        }
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            if _call_basename(call) in _SAFE_CALLS:
                continue
            site = site_by_id.get(id(call))
            if site and any(c in summaries for c in site.callees):
                return node
        return None

    def _check_transitive_escape(
        self, project: Project, graph: CallGraph, fn: FunctionInfo,
        summaries: Set[str],
    ) -> List[Finding]:
        # only the *transitive* frame is new information: a function
        # that itself builds the view belongs to the per-file rule
        if self._returns_view_locally(fn):
            return []
        node = self._returned_view_call(graph, fn, summaries)
        if node is None:
            return []
        call = node.value
        assert isinstance(call, ast.Call)
        callee = next(
            (
                c
                for s in graph.sites.get(fn.qname, ())
                if s.node is call
                for c in s.callees
                if c in summaries
            ),
            dotted_name(call.func) or "<call>",
        )
        return [self.finding(
            fn, node,
            f"returns the result of '{callee}', which returns a raw "
            "shared-memory/mmap view; the borrowed pages escape another "
            "frame outward — copy with np.array(..., copy=True) before "
            "returning",
        )]

    # ------------------------------------------------------------------
    # use-after-close
    # ------------------------------------------------------------------
    @staticmethod
    def _view_vars(fn: FunctionInfo) -> Dict[str, str]:
        """local view var -> the local var it borrows from (itself for
        direct np.memmap results)."""
        out: Dict[str, str] = {}
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            base = _call_basename(node.value)
            if base not in _VIEW_CALLS:
                continue
            func = node.value.func
            source: Optional[str] = None
            if base == "shared_view" and isinstance(
                func, ast.Attribute
            ) and isinstance(func.value, ast.Name):
                source = func.value.id
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = source or target.id
        return out

    def _check_use_after_close(self, fn: FunctionInfo) -> List[Finding]:
        views = self._view_vars(fn)
        # owners: view sources plus directly-created arenas/segments
        owners: Set[str] = set(views.values())
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                base = _call_basename(node.value)
                if base in _SEGMENT_CTORS or base == "attach_arena":
                    owners.update(
                        t.id for t in node.targets
                        if isinstance(t, ast.Name)
                    )
        if not owners:
            return []

        def closes_in(stmt: ast.stmt) -> Set[str]:
            out: Set[str] = set()
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLOSERS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in owners
                ):
                    out.add(node.func.value.id)
            return out

        findings: List[Finding] = []
        reported: Set[int] = set()

        def scan_block(body: List[ast.stmt]) -> None:
            # straight-line only: a close in a conditional branch does
            # not poison the outer block (the branch usually returns)
            closed: Set[str] = set()
            for stmt in body:
                if closed:
                    for node in ast.walk(stmt):
                        if not isinstance(node, ast.Name) or \
                                not isinstance(node.ctx, ast.Load):
                            continue
                        owner = views.get(node.id) or (
                            node.id if node.id in closed else None
                        )
                        if owner not in closed or id(node) in reported:
                            continue
                        reported.add(id(node))
                        what = "view" if node.id in views else "segment"
                        findings.append(self.finding(
                            fn, node,
                            f"{what} '{node.id}' used after "
                            f"'{owner}.close()'; the mapping is gone — "
                            "copy the data out before closing, or "
                            "reorder the teardown",
                        ))
                direct = closes_in(stmt) if not isinstance(
                    stmt, (ast.If, ast.Try, ast.For, ast.While,
                           ast.With, ast.AsyncWith, ast.FunctionDef,
                           ast.AsyncFunctionDef, ast.ClassDef)
                ) else set()
                closed |= direct
                for child_body in self._child_blocks(stmt):
                    scan_block(child_body)

        scan_block(list(getattr(fn.node, "body", [])))
        return findings

    @staticmethod
    def _child_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []
        blocks: List[List[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(stmt, attr, None)
            if isinstance(body, list) and body and isinstance(
                body[0], ast.stmt
            ):
                blocks.append(body)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    # ------------------------------------------------------------------
    # unclosed local segments
    # ------------------------------------------------------------------
    def _check_unclosed_segment(self, fn: FunctionInfo) -> List[Finding]:
        created: Dict[str, ast.Assign] = {}
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            base = _call_basename(node.value)
            if base not in _SEGMENT_CTORS:
                continue
            if base == "SharedMemory" and not any(
                kw.arg == "create" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.value.keywords
            ):
                continue  # attach-side SharedMemory is not an owner
            for target in node.targets:
                if isinstance(target, ast.Name):
                    created[target.id] = node
        if not created:
            return []
        escaped: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLOSERS
                    and isinstance(node.func.value, ast.Name)
                ):
                    escaped.add(node.func.value.id)
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                for sub in ast.walk(value) if value is not None else ():
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
            elif isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Name):
                    escaped.add(node.value.id)  # aliased: alias owns it
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        for sub in ast.walk(node.value):
                            if isinstance(sub, ast.Name):
                                escaped.add(sub.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if isinstance(sub, ast.Name):
                            escaped.add(sub.id)
        return [
            self.finding(
                fn, created[name],
                f"shared-memory segment '{name}' is created here but "
                "never closed, unlinked, returned, or handed off — the "
                "/dev/shm segment leaks on every call",
            )
            for name in sorted(created)
            if name not in escaped
        ]
