"""The whole-program analyses behind ``repro-temporal lint --deep``.

Four checkers run over the shared :mod:`repro.lint.callgraph` project
(one build, one lock-flow fixpoint, four consumers):

* ``lock-order`` — static rank-inversion and blocking-under-a-caller's-
  lock detection (:mod:`.lock_order`);
* ``async-blocking`` — synchronous blocking work reachable from
  coroutines (:mod:`.async_safety`);
* ``arena-lifecycle`` — shared-memory views used after close, escaping
  through extra return frames, or segments never cleaned up
  (:mod:`.lifecycle`);
* ``deep-determinism`` — unordered iteration / unseeded RNG on paths
  feeding result values or rank-store bytes (:mod:`.determinism`).

:func:`run_deep` is the one entry point: build (or load from cache) the
project, compute lock flow, run the selected analyses, and filter the
findings through the same ``# lint: disable=`` suppressions the
per-file rules honor.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ValidationError
from repro.lint.analyses.async_safety import AsyncBlockingAnalysis
from repro.lint.analyses.common import Analysis
from repro.lint.analyses.determinism import DeepDeterminismAnalysis
from repro.lint.analyses.lifecycle import ArenaLifecycleAnalysis
from repro.lint.analyses.lock_order import LockOrderAnalysis
from repro.lint.callgraph import build_project
from repro.lint.core import Finding, filter_suppressed, iter_python_files
from repro.lint.flow import compute_lock_flow

__all__ = [
    "ALL_ANALYSES",
    "Analysis",
    "analysis_descriptions",
    "resolve_analyses",
    "run_deep",
]

ALL_ANALYSES: Tuple[Type[Analysis], ...] = (
    LockOrderAnalysis,
    AsyncBlockingAnalysis,
    ArenaLifecycleAnalysis,
    DeepDeterminismAnalysis,
)


def analysis_descriptions() -> Dict[str, str]:
    """Analysis name -> one-line description (``lint --list-rules``)."""
    return {a.name: a.description for a in ALL_ANALYSES}


def resolve_analyses(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    known_rules: Sequence[str] = (),
) -> List[Type[Analysis]]:
    """The analyses to run after ``--select``/``--ignore``.

    Names belonging to per-file rules (``known_rules``) are someone
    else's to validate; anything else unknown is an error here.
    """
    by_name = {a.name: a for a in ALL_ANALYSES}
    for names in (select, ignore):
        unknown = set(names or ()) - set(by_name) - set(known_rules)
        if unknown:
            raise ValidationError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}; "
                "known rules: "
                f"{', '.join(sorted(set(by_name) | set(known_rules)))}"
            )
    chosen = set(select) if select else set(by_name)
    ignored = set(ignore or ())
    return [
        by_name[n] for n in by_name if n in chosen and n not in ignored
    ]


def run_deep(
    paths: Sequence["Path | str"],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    known_rules: Sequence[str] = (),
    cache_dir: Optional[Path] = None,
) -> List[Finding]:
    """Run the whole-program analyses over every ``.py`` under
    ``paths``; suppressions already honored."""
    analyses = resolve_analyses(select, ignore, known_rules)
    if not analyses:
        return []
    files = iter_python_files(paths)
    project, graph = build_project(files, cache_dir=cache_dir)
    flow = compute_lock_flow(project, graph)
    findings: List[Finding] = []
    for analysis_cls in analyses:
        findings.extend(analysis_cls().run(project, graph, flow))
    out: List[Finding] = []
    by_path: Dict[str, List[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    for path, batch in by_path.items():
        info = project.modules_by_path.get(path)
        if info is None:
            out.extend(batch)
        else:
            out.extend(filter_suppressed(batch, info.source, info.tree))
    return sorted(set(out))
