"""k-core decomposition per window (peeling, from scratch).

The k-core of a graph is its maximal subgraph where every vertex has
degree >= k; a vertex's *core number* is the largest k whose k-core
contains it.  The paper's related work (Gabert et al.; Sariyüce et al.)
analyzes dense temporal regions exactly this way.

Degrees are over the window's *undirected* simple graph (in + out
neighbors, deduplicated).  The implementation is the classic linear-time
peeling: repeatedly remove all vertices of minimum remaining degree,
implemented round-by-round with vectorized degree updates (each round
strips the current-k shell, so total work is Θ(Σ degrees)).

:func:`peel_core_numbers` is the representation-independent half — it
takes any symmetrized simple CSR, which is how the k-core
:class:`~repro.programs.kcore.KCoreProgram` gets *exact* cross-model
parity: the temporal view path and the materialized snapshot path build
the same undirected simple graph and share this one peeling.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_csr_from_edges
from repro.graph.temporal_csr import WindowView

__all__ = [
    "core_numbers",
    "max_core",
    "peel_core_numbers",
    "undirected_simple_csr",
]


def undirected_simple_csr(
    src: np.ndarray, dst: np.ndarray, n_vertices: int
) -> CSRGraph:
    """Symmetrize a simple edge list (u-v and v-u), dropping self-loops."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    return build_csr_from_edges(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        n_vertices,
        dedup=True,
    )


def _undirected_window_csr(view: WindowView) -> CSRGraph:
    """The window's simple graph symmetrized (u-v and v-u), no loops."""
    out_csr = view.adjacency.out_csr
    dedup = out_csr.dedup_mask(view.window.t_start, view.window.t_end)
    src = out_csr.row_ids()[dedup]
    dst = out_csr.col[dedup]
    return undirected_simple_csr(src, dst, view.adjacency.n_vertices)


def peel_core_numbers(g: CSRGraph) -> np.ndarray:
    """Core numbers of a symmetrized simple graph (0 for isolated
    vertices).  The graph must already be undirected (every edge stored in
    both directions) with no self-loops."""
    n = g.n_vertices
    deg = g.out_degrees().astype(np.int64)
    core = np.zeros(n, dtype=np.int64)
    alive = deg > 0
    k = 0
    while alive.any():
        k = max(k, int(deg[alive].min()))
        # strip the k-shell: repeatedly remove vertices with degree <= k
        while True:
            shell = alive & (deg <= k)
            if not shell.any():
                break
            core[shell] = k
            alive[shell] = False
            # subtract removed vertices' contributions from their alive
            # neighbors, vectorized over the shell's adjacency
            idx = np.flatnonzero(shell)
            starts, ends = g.indptr[idx], g.indptr[idx + 1]
            lens = ends - starts
            if lens.sum():
                offsets = np.repeat(
                    starts - np.concatenate([[0], np.cumsum(lens)[:-1]]),
                    lens,
                )
                nbrs = g.col[np.arange(int(lens.sum())) + offsets]
                dec = np.bincount(nbrs[alive[nbrs]], minlength=n)
                deg -= dec
    return core


def core_numbers(view: WindowView) -> np.ndarray:
    """Per-vertex core numbers for one window (0 for inactive vertices and
    vertices with only self-loop incidences)."""
    return peel_core_numbers(_undirected_window_csr(view))


def max_core(view: WindowView) -> int:
    """The window's degeneracy (largest core number) — the density summary
    temporal k-core studies track over time."""
    cores = core_numbers(view)
    return int(cores.max()) if cores.size else 0
