"""Katz centrality per window, with postmortem warm starts.

Katz centrality solves  x = a * A^T x + b  (attenuation ``a`` below the
inverse spectral radius, uniform base ``b``), i.e. the same
gather-over-in-edges iteration as PageRank without the degree
normalization.  Nathan & Bader's streaming Katz (cited in the paper's
Section 3.2) incrementally updates it; here we provide the *postmortem*
version: the masked temporal-CSR kernel plus a partial-initialization
warm start across consecutive windows, mirroring the paper's PageRank
treatment (Section 4.2) on a second analysis kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.graph.temporal_csr import WindowView
from repro.pagerank.result import PagerankResult, WorkStats
from repro.utils.segments import segment_sum

__all__ = ["KatzConfig", "katz_window", "katz_partial_init"]


@dataclass(frozen=True)
class KatzConfig:
    """Katz solver parameters.

    ``attenuation`` must stay below 1/λ_max for convergence; the classic
    safe default for sparse window graphs is a small constant, and the
    kernel additionally caps the contribution per iteration via the
    max-degree bound when ``auto_clamp`` is set.
    """

    attenuation: float = 0.05
    base: float = 1.0
    tolerance: float = 1e-9
    max_iterations: int = 200
    auto_clamp: bool = True
    strict: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.attenuation < 1.0):
            raise ValidationError("attenuation must be in (0, 1)")
        if self.base <= 0:
            raise ValidationError("base must be > 0")
        if self.tolerance <= 0:
            raise ValidationError("tolerance must be > 0")
        if self.max_iterations <= 0:
            raise ValidationError("max_iterations must be > 0")


def _effective_attenuation(view: WindowView, config: KatzConfig) -> float:
    """Clamp attenuation below 1/max_in_degree (a cheap spectral-radius
    upper bound) so the fixed point exists for every window."""
    a = config.attenuation
    if config.auto_clamp:
        dmax = int(
            max(view.in_degrees.max(initial=0), view.out_degrees.max(initial=0))
        )
        if dmax > 0:
            a = min(a, 0.9 / dmax)
    return a


def katz_window(
    view: WindowView,
    config: KatzConfig = KatzConfig(),
    x0: Optional[np.ndarray] = None,
) -> PagerankResult:
    """Katz centrality of one window, normalized to unit L1 mass over the
    active vertices (so warm starts transfer across windows the same way
    eq. 4 does for PageRank)."""
    adjacency = view.adjacency
    n = adjacency.n_vertices
    n_active = view.n_active_vertices
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64), iterations=0, converged=True, residual=0.0
        )

    in_csr = adjacency.in_csr
    dedup = view.in_dedup
    col = in_csr.col
    active = view.active_vertices_mask
    a = _effective_attenuation(view, config)
    b = config.base / n_active

    if x0 is None:
        x = np.where(active, b, 0.0)
    else:
        x = np.asarray(x0, dtype=np.float64).copy()
        if x.shape != (n,):
            raise ValidationError(f"x0 must have shape ({n},)")

    def normalized(v: np.ndarray) -> np.ndarray:
        total = v.sum()
        return v / total if total > 0 else v

    work = WorkStats()
    residual = np.inf
    for it in range(1, config.max_iterations + 1):
        # raw affine iteration x <- a A^T x + b; the true Katz fixed point
        # (normalizing inside the loop would change it)
        contrib = np.where(dedup, x[col], 0.0)
        y = a * segment_sum(contrib, in_csr.indptr)
        y[active] += b
        y[~active] = 0.0

        # scale-invariant residual: Katz is used for ranking, so compare
        # the normalized iterates
        residual = float(np.abs(normalized(y) - normalized(x)).sum())
        x = y
        work.iterations += 1
        work.edge_traversals += in_csr.nnz
        work.active_edge_traversals += view.n_active_edges
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(normalized(x), it, True, residual, work)

    if config.strict:
        raise ConvergenceError(
            f"Katz did not converge in {config.max_iterations} iterations"
        )
    return PagerankResult(
        normalized(x), config.max_iterations, False, residual, work
    )


def katz_partial_init(
    view: WindowView,
    prev_view: WindowView,
    prev_values: np.ndarray,
) -> np.ndarray:
    """Eq. 4-style warm start for Katz: previous scores on shared
    vertices, uniform mass on new vertices, renormalized to 1."""
    prev_values = np.asarray(prev_values, dtype=np.float64)
    n = view.adjacency.n_vertices
    if prev_values.shape != (n,):
        raise ValidationError("prev_values must be a per-vertex vector")

    cur = view.active_vertices_mask
    prev = prev_view.active_vertices_mask
    shared = cur & prev
    n_cur = view.n_active_vertices
    if n_cur == 0:
        return np.zeros(n, dtype=np.float64)
    shared_mass = float(prev_values[shared].sum())
    x = np.zeros(n, dtype=np.float64)
    if shared.any() and shared_mass > 0:
        n_shared = int(shared.sum())
        x[shared] = prev_values[shared] * (n_shared / n_cur) / shared_mass
        x[cur & ~prev] = 1.0 / n_cur
    else:
        x[cur] = 1.0 / n_cur
    return x
