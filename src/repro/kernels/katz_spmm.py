"""SpMM-batched Katz centrality — Section 4.4's batching applied to a
second kernel.

The SpMM trick is not PageRank-specific: any iterative kernel whose step
is a gather over the shared multi-window structure can advance k windows
per structure pass.  This module batches the Katz iteration
(x <- a A^T x + b per window) exactly like
:func:`repro.pagerank.spmm.pagerank_windows_spmm`, demonstrating the
framework's generality and giving the kernel driver a batched option.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_csr import WindowView
from repro.kernels.katz import KatzConfig, _effective_attenuation
from repro.pagerank.result import BatchPagerankResult, WorkStats
from repro.utils.segments import segment_sum

__all__ = ["katz_windows_spmm"]


def katz_windows_spmm(
    views: Sequence[WindowView],
    config: KatzConfig = KatzConfig(),
    x0: Optional[np.ndarray] = None,
) -> BatchPagerankResult:
    """Solve k windows' Katz centralities in one batched iteration loop.

    All views must share one multi-window adjacency.  Column j of the
    result is the (L1-normalized) Katz vector of ``views[j]``.
    """
    if not views:
        raise ValidationError("need at least one window view")
    adjacency = views[0].adjacency
    for v in views[1:]:
        if v.adjacency is not adjacency:
            raise ValidationError(
                "batched Katz requires all windows from the same "
                "multi-window graph"
            )

    n = adjacency.n_vertices
    k = len(views)
    in_csr = adjacency.in_csr
    col = in_csr.col

    dedup = np.stack([v.in_dedup for v in views], axis=1)
    active = np.stack([v.active_vertices_mask for v in views], axis=1)
    n_active = np.array([v.n_active_vertices for v in views], dtype=np.int64)
    a = np.array([_effective_attenuation(v, config) for v in views])
    safe = np.maximum(n_active, 1)
    b = np.where(n_active > 0, config.base / safe, 0.0)

    if x0 is None:
        X = active * b  # uniform base per column
    else:
        X = np.asarray(x0, dtype=np.float64).copy()
        if X.shape != (n, k):
            raise ValidationError(f"x0 must have shape ({n}, {k})")

    def normalized(M: np.ndarray) -> np.ndarray:
        totals = M.sum(axis=0)
        out = M.copy()
        nz = totals > 0
        out[:, nz] /= totals[nz]
        return out

    iterations = np.zeros(k, dtype=np.int64)
    residuals = np.full(k, np.inf, dtype=np.float64)
    converged = n_active == 0
    residuals[converged] = 0.0
    work = WorkStats()

    live = ~converged
    it = 0
    while live.any() and it < config.max_iterations:
        it += 1
        idx = np.flatnonzero(live)
        Xl = X[:, idx]
        C = Xl[col, :] * dedup[:, idx]
        Y = segment_sum(C, in_csr.indptr) * a[idx]
        Y += b[idx] * active[:, idx]
        Y[~active[:, idx]] = 0.0

        res = np.abs(normalized(Y) - normalized(Xl)).sum(axis=0)
        X[:, idx] = Y
        iterations[idx] += 1
        residuals[idx] = res
        work.iterations += 1
        work.edge_traversals += in_csr.nnz
        work.vertex_ops += int(n_active[idx].sum())

        newly = res < config.tolerance
        converged[idx[newly]] = True
        live = ~converged

    return BatchPagerankResult(
        values=normalized(X),
        window_indices=[v.window.index for v in views],
        iterations_per_window=iterations,
        converged=converged,
        residuals=residuals,
        work=work,
    )
