"""Additional temporal-graph analysis kernels (paper Section 3.1).

The paper focuses on PageRank but notes the temporal graph "could be
analyzed in various ways ... using other kernels like closeness and
betweenness centrality, connecting component, k-core".  This package
implements the postmortem versions of several such kernels over the same
temporal-CSR window machinery:

* :mod:`repro.kernels.degree` — in/out degree centrality per window;
* :mod:`repro.kernels.components` — connected components (union-find);
* :mod:`repro.kernels.kcore` — k-core decomposition (peeling);
* :mod:`repro.kernels.katz` — Katz centrality (iterative, with the same
  partial-initialization warm start the paper develops for PageRank).

:class:`repro.programs.adapter.TemporalKernelDriver` (re-exported here;
``repro.kernels.driver`` remains as a deprecated alias module) runs any
per-window kernel over a window spec through the multi-window
representation on the vertex-program engine.
"""

from repro.kernels.degree import degree_centrality
from repro.kernels.components import connected_components
from repro.kernels.kcore import core_numbers, max_core
from repro.kernels.katz import KatzConfig, katz_window, katz_partial_init
from repro.kernels.katz_spmm import katz_windows_spmm
from repro.kernels.bfs import bfs_distances, bfs_levels
from repro.kernels.closeness import closeness_centrality
from repro.kernels.betweenness import betweenness_centrality
from repro.programs.adapter import TemporalKernelDriver, KernelWindowResult

__all__ = [
    "degree_centrality",
    "connected_components",
    "core_numbers",
    "max_core",
    "KatzConfig",
    "katz_window",
    "katz_partial_init",
    "katz_windows_spmm",
    "bfs_distances",
    "bfs_levels",
    "closeness_centrality",
    "betweenness_centrality",
    "TemporalKernelDriver",
    "KernelWindowResult",
]
