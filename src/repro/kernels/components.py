"""Connected components per window (union-find, from scratch).

Treats the window's active simple edges as undirected and labels weakly
connected components with a union-find structure (union by size + full
path compression).  Inactive vertices get label ``-1``.

The implementation keeps the per-edge loop in Python but over *deduplicated
window edges only* (Θ(|E_i| α(V)) total), which at window scale is cheap
relative to the iterative kernels; the tests cross-check against
``scipy.sparse.csgraph.connected_components``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.temporal_csr import WindowView

__all__ = ["connected_components", "ComponentResult"]


@dataclass
class ComponentResult:
    """Component labelling of one window.

    ``labels[v]`` is the component id (0..n_components-1) of an active
    vertex, or -1 for inactive vertices; ids are assigned in order of the
    components' smallest vertex.
    """

    labels: np.ndarray
    n_components: int

    def sizes(self) -> np.ndarray:
        """Vertex count of each component."""
        active = self.labels >= 0
        return np.bincount(
            self.labels[active], minlength=self.n_components
        )

    def giant_fraction(self) -> float:
        """Fraction of active vertices in the largest component (a common
        temporal-connectivity summary)."""
        s = self.sizes()
        total = s.sum()
        return float(s.max() / total) if total else 0.0


class _UnionFind:
    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, v: int) -> int:
        root = v
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        # path compression
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def connected_components(view: WindowView) -> ComponentResult:
    """Weakly connected components of one window's simple graph."""
    n = view.adjacency.n_vertices
    out_csr = view.adjacency.out_csr
    dedup = out_csr.dedup_mask(view.window.t_start, view.window.t_end)
    src = out_csr.row_ids()[dedup]
    dst = out_csr.col[dedup]

    uf = _UnionFind(n)
    for u, v in zip(src.tolist(), dst.tolist()):
        uf.union(u, v)

    labels = np.full(n, -1, dtype=np.int64)
    active = np.flatnonzero(view.active_vertices_mask)
    roots = np.array([uf.find(int(v)) for v in active], dtype=np.int64)
    unique_roots, compact = np.unique(roots, return_inverse=True)
    labels[active] = compact
    return ComponentResult(labels=labels, n_components=unique_roots.size)
