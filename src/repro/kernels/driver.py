"""Generic postmortem driver for any per-window analysis kernel.

Runs an arbitrary kernel (a callable taking a
:class:`~repro.graph.temporal_csr.WindowView`) over every window of a
spec, routed through the multi-window representation — the same
single-build, Θ(|E_w|)-per-window machinery the PageRank drivers use, made
available for degree/components/k-core/Katz and any user-supplied kernel.

Since the unified-runtime refactor the driver returns the same
:class:`~repro.models.base.RunResult` every model driver returns (kernel
outputs live in each window's generic ``value`` slot; use
``result.series(...)`` / ``result.kernel_values()``), honours the shared
``run(store_values=..., value_sink=..., progress=...)`` contract, and
supports the ``serial`` and ``thread`` executors.  The former
``KernelRunResult`` type is gone; ``KernelWindowResult`` survives as an
alias of :class:`~repro.models.base.WindowResult`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.graph.multiwindow import MultiWindowPartition
from repro.graph.temporal_csr import WindowView
from repro.models.base import RunResult, WindowResult
from repro.runtime.base import record_run_metadata
from repro.runtime.context import DriverContext
from repro.runtime.execution import map_tasks, require_executor
from repro.runtime.sinks import chain_sinks

__all__ = ["KernelWindowResult", "TemporalKernelDriver"]

Kernel = Callable[[WindowView], Any]

#: compatibility alias: one window's kernel output now rides in
#: ``WindowResult.value``
KernelWindowResult = WindowResult


class TemporalKernelDriver:
    """Postmortem execution of a per-window kernel.

    >>> driver = TemporalKernelDriver(events, spec, n_multiwindows=6)
    >>> result = driver.run(connected_components)
    >>> result.series(lambda c: c.n_components)
    """

    model_name = "kernel"
    supported_executors = ("serial", "thread")

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        n_multiwindows: int = 6,
        to_global: bool = False,
        *,
        context: Optional[DriverContext] = None,
    ) -> None:
        if n_multiwindows <= 0:
            raise ValidationError("n_multiwindows must be > 0")
        self.events = events
        self.spec = spec
        self.n_multiwindows = n_multiwindows
        #: when True and the kernel returns a per-vertex array, scatter it
        #: from the multi-window local space into the global vertex space
        self.to_global = to_global
        self.context = context if context is not None else DriverContext()
        require_executor(
            self.context.executor, self.supported_executors, self.model_name
        )
        self._partition: Optional[MultiWindowPartition] = None

    @property
    def partition(self) -> MultiWindowPartition:
        if self._partition is None:
            self._partition = MultiWindowPartition(
                self.events, self.spec, self.n_multiwindows
            )
        return self._partition

    def run(
        self,
        kernel: Kernel,
        name: Optional[str] = None,
        *,
        store_values: bool = True,
        value_sink=None,
        progress=None,
    ) -> RunResult:
        """Apply ``kernel`` to every window, in window order.

        ``value_sink(window_index, value, meta)`` receives each window's
        kernel output as it is computed (per-vertex array kernels with
        ``to_global=True`` can stream straight into a rank store);
        ``store_values=False`` drops the outputs from the returned result
        after sinking.  The ``thread`` executor fans windows out across
        multi-window graphs — legal because a generic kernel, unlike the
        warm-started PageRank chain, has no cross-window dependence.
        """
        ctx = self.context
        sink = chain_sinks(ctx.value_sink, value_sink)
        progress = progress if progress is not None else ctx.progress
        result = RunResult(model=self.model_name)
        result.metadata["kernel_name"] = (
            name or getattr(kernel, "__name__", "kernel")
        )
        n = self.spec.n_windows
        ctx.emit("run.start", model=self.model_name, kernel=result.metadata[
            "kernel_name"], n_windows=n)

        with result.timings.phase("build"):
            partition = self.partition

        done = [0]

        def solve(w: int) -> WindowResult:
            graph = partition.graph_of(w)
            view = graph.window_view(w)
            value = kernel(view)
            if (
                self.to_global
                and isinstance(value, np.ndarray)
                and value.shape == (graph.n_local_vertices,)
            ):
                value = graph.to_global(value, self.events.n_vertices)
            wr = WindowResult(
                window_index=w,
                n_active_vertices=view.n_active_vertices,
                n_active_edges=view.n_active_edges,
                value=value,
            )
            if sink is not None:
                sink(w, value, wr)
            if not store_values:
                wr.value = None
            if progress is not None:
                done[0] += 1
                progress(done[0], n)
            return wr

        with result.timings.phase("kernel"):
            result.windows = list(
                map_tasks(
                    solve,
                    range(n),
                    executor=ctx.executor,
                    n_workers=ctx.n_workers,
                )
            )

        record_run_metadata(
            result, executor=ctx.executor, n_workers=ctx.n_workers,
            n_windows=n,
        )
        ctx.emit("run.done", model=self.model_name, n_windows=n)
        return result
