"""Deprecated location of the generic kernel driver.

:class:`TemporalKernelDriver` now lives in :mod:`repro.programs.adapter`,
where it runs user-supplied kernels through the vertex-program engine
(:func:`repro.programs.engine.solve_program_chain`) instead of a private
window loop.  This module re-exports the public names so existing imports
keep working; new code should import from :mod:`repro.kernels` (which
itself re-exports from the adapter) or :mod:`repro.programs.adapter`.
"""

from __future__ import annotations

import warnings

from repro.programs.adapter import (  # noqa: F401
    Kernel,
    KernelWindowResult,
    TemporalKernelDriver,
)

__all__ = ["KernelWindowResult", "TemporalKernelDriver"]

warnings.warn(
    "repro.kernels.driver is deprecated; import TemporalKernelDriver from "
    "repro.kernels or repro.programs.adapter",
    DeprecationWarning,
    stacklevel=2,
)
