"""Generic postmortem driver for any per-window analysis kernel.

Runs an arbitrary kernel (a callable taking a
:class:`~repro.graph.temporal_csr.WindowView`) over every window of a
spec, routed through the multi-window representation — the same
single-build, Θ(|E_w|)-per-window machinery the PageRank drivers use, made
available for degree/components/k-core/Katz and any user-supplied kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.graph.multiwindow import MultiWindowPartition
from repro.graph.temporal_csr import WindowView
from repro.utils.timer import TimingAccumulator

__all__ = ["KernelWindowResult", "TemporalKernelDriver"]

Kernel = Callable[[WindowView], Any]


@dataclass
class KernelWindowResult:
    """One window's kernel output, with the window's activity summary."""

    window_index: int
    value: Any
    n_active_vertices: int
    n_active_edges: int


@dataclass
class KernelRunResult:
    """All windows' outputs plus timings."""

    kernel_name: str
    windows: List[KernelWindowResult] = field(default_factory=list)
    timings: TimingAccumulator = field(default_factory=TimingAccumulator)

    def values(self) -> List[Any]:
        return [w.value for w in self.windows]

    def series(self, extract: Callable[[Any], float]) -> np.ndarray:
        """Project each window's output to a scalar time series (e.g.
        ``lambda r: r.giant_fraction()``)."""
        return np.array([extract(w.value) for w in self.windows])


class TemporalKernelDriver:
    """Postmortem execution of a per-window kernel.

    >>> driver = TemporalKernelDriver(events, spec, n_multiwindows=6)
    >>> result = driver.run(connected_components)
    >>> result.series(lambda c: c.n_components)
    """

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        n_multiwindows: int = 6,
        to_global: bool = False,
    ) -> None:
        if n_multiwindows <= 0:
            raise ValidationError("n_multiwindows must be > 0")
        self.events = events
        self.spec = spec
        self.n_multiwindows = n_multiwindows
        #: when True and the kernel returns a per-vertex array, scatter it
        #: from the multi-window local space into the global vertex space
        self.to_global = to_global
        self._partition: Optional[MultiWindowPartition] = None

    @property
    def partition(self) -> MultiWindowPartition:
        if self._partition is None:
            self._partition = MultiWindowPartition(
                self.events, self.spec, self.n_multiwindows
            )
        return self._partition

    def run(self, kernel: Kernel, name: Optional[str] = None) -> KernelRunResult:
        """Apply ``kernel`` to every window, in window order."""
        result = KernelRunResult(
            kernel_name=name or getattr(kernel, "__name__", "kernel")
        )
        with result.timings.phase("build"):
            partition = self.partition
        with result.timings.phase("kernel"):
            for w in range(self.spec.n_windows):
                graph = partition.graph_of(w)
                view = graph.window_view(w)
                value = kernel(view)
                if (
                    self.to_global
                    and isinstance(value, np.ndarray)
                    and value.shape == (graph.n_local_vertices,)
                ):
                    value = graph.to_global(value, self.events.n_vertices)
                result.windows.append(
                    KernelWindowResult(
                        window_index=w,
                        value=value,
                        n_active_vertices=view.n_active_vertices,
                        n_active_edges=view.n_active_edges,
                    )
                )
        return result
