"""Closeness centrality per window (exact or pivot-sampled).

Closeness of v = (r_v - 1) / Σ_{u reachable from v} d(v, u), scaled by the
reached fraction (the Wasserman–Faust generalization networkx uses, which
handles disconnected windows gracefully).  The paper's group has a line of
streaming/incremental closeness work (Sariyüce et al., cited in Section
3.2); here we provide the *postmortem* per-window version on the shared
temporal-CSR machinery.

Exact mode runs one BFS per active vertex — O(V·E) per window, fine at
window scale.  ``n_pivots`` enables the standard sampling estimator
(average distance estimated from a random pivot subset) for large windows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_csr import WindowView
from repro.kernels.bfs import bfs_distances

__all__ = ["closeness_centrality"]


def closeness_centrality(
    view: WindowView,
    n_pivots: Optional[int] = None,
    seed: int = 0,
) -> np.ndarray:
    """Per-vertex (out-)closeness for one window.

    Parameters
    ----------
    view:
        The window view; distances follow edge direction.
    n_pivots:
        When set, estimate using BFS from this many sampled active pivots
        (distances *to* each pivot are collected via the reverse graph);
        exact all-sources otherwise.
    """
    n = view.adjacency.n_vertices
    active = view.active_vertices_mask
    n_active = view.n_active_vertices
    out = np.zeros(n, dtype=np.float64)
    if n_active < 2:
        return out

    graph = view.compact_graph()
    active_ids = np.flatnonzero(active)

    if n_pivots is None:
        # exact: BFS from every active vertex
        for v in active_ids:
            dist = bfs_distances(graph, int(v))
            reach = (dist > 0) & active
            r = int(reach.sum())
            if r == 0:
                continue
            total = int(dist[reach].sum())
            # Wasserman–Faust: scale by reached fraction
            out[v] = (r / (n_active - 1)) * (r / total)
        return out

    if n_pivots <= 0:
        raise ValidationError("n_pivots must be > 0")
    rng = np.random.default_rng(seed)
    k = min(n_pivots, n_active)
    pivots = rng.choice(active_ids, size=k, replace=False)

    # estimate each vertex's average distance from its distances TO the
    # pivots, obtained by BFS from each pivot on the reverse graph
    reverse = graph.transpose()
    dist_sum = np.zeros(n, dtype=np.float64)
    dist_cnt = np.zeros(n, dtype=np.float64)
    for p in pivots:
        dist = bfs_distances(reverse, int(p))
        hit = (dist > 0) & active
        dist_sum[hit] += dist[hit]
        dist_cnt[hit] += 1
    have = dist_cnt > 0
    avg = np.zeros(n, dtype=np.float64)
    avg[have] = dist_sum[have] / dist_cnt[have]
    # closeness estimate with reach fraction approximated by pivot hits
    frac = dist_cnt / k
    nz = have & (avg > 0)
    out[nz] = frac[nz] / avg[nz]
    out[~active] = 0.0
    return out
