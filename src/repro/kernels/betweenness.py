"""Betweenness centrality per window (Brandes' algorithm, optionally
source-sampled).

Brandes (2001): one BFS per source builds shortest-path DAG counts sigma;
a reverse level sweep accumulates pair dependencies

    delta[v] = Σ_{w : v ∈ pred(w)} sigma[v]/sigma[w] * (1 + delta[w]).

Both phases here are vectorized per BFS level over the window's compact
CSR: the level expansion gathers frontier adjacencies in bulk, and the
dependency accumulation walks levels backwards with ``np.add.at`` scatter.
``n_sources`` enables the standard Brandes–Pich sampling estimator.

Streaming betweenness (Green, McColl & Bader, cited in Section 3.2) keeps
this current under updates; this is the postmortem counterpart.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.temporal_csr import WindowView

__all__ = ["betweenness_centrality"]


def _brandes_from_source(
    graph: CSRGraph, reverse: CSRGraph, source: int, bc: np.ndarray
) -> None:
    """Accumulate one source's pair dependencies into ``bc``."""
    n = graph.n_vertices
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[source] = 0
    sigma[source] = 1.0

    levels: List[np.ndarray] = [np.array([source], dtype=np.int64)]
    frontier = levels[0]
    level = 0
    while frontier.size:
        level += 1
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            break
        offsets = np.repeat(
            starts - np.concatenate([[0], np.cumsum(lens)[:-1]]), lens
        )
        nbrs = graph.col[np.arange(total) + offsets]
        srcs = np.repeat(frontier, lens)
        # path counts flow along edges into vertices at this level
        new_mask = dist[nbrs] < 0
        on_level_mask = new_mask | (dist[nbrs] == level)
        if new_mask.any():
            fresh = np.unique(nbrs[new_mask])
            dist[fresh] = level
        # sigma[w] += sigma[v] for every tree/level edge (v, w)
        lv = nbrs[on_level_mask]
        if lv.size:
            np.add.at(sigma, lv, sigma[srcs[on_level_mask]])
        frontier = np.unique(nbrs[new_mask]) if new_mask.any() else np.empty(
            0, dtype=np.int64
        )
        if frontier.size:
            levels.append(frontier)

    # reverse sweep: dependencies back down the levels via in-edges
    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(levels[1:]):
        starts = reverse.indptr[frontier]
        ends = reverse.indptr[frontier + 1]
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            continue
        offsets = np.repeat(
            starts - np.concatenate([[0], np.cumsum(lens)[:-1]]), lens
        )
        preds = reverse.col[np.arange(total) + offsets]
        ws = np.repeat(frontier, lens)
        # only true shortest-path predecessors contribute
        keep = dist[preds] == dist[ws] - 1
        preds, ws = preds[keep], ws[keep]
        if preds.size:
            contrib = sigma[preds] / sigma[ws] * (1.0 + delta[ws])
            np.add.at(delta, preds, contrib)
    delta[source] = 0.0
    bc += delta


def betweenness_centrality(
    view: WindowView,
    n_sources: Optional[int] = None,
    normalized: bool = True,
    seed: int = 0,
) -> np.ndarray:
    """Per-vertex betweenness for one window's directed simple graph.

    ``n_sources`` switches to the sampling estimator (scaled so values are
    comparable with the exact run in expectation).
    """
    n = view.adjacency.n_vertices
    active = view.active_vertices_mask
    n_active = view.n_active_vertices
    bc = np.zeros(n, dtype=np.float64)
    if n_active < 3:
        return bc

    graph = view.compact_graph()
    reverse = graph.transpose()
    active_ids = np.flatnonzero(active)

    if n_sources is None:
        sources = active_ids
        scale_up = 1.0
    else:
        if n_sources <= 0:
            raise ValidationError("n_sources must be > 0")
        rng = np.random.default_rng(seed)
        k = min(n_sources, n_active)
        sources = rng.choice(active_ids, size=k, replace=False)
        scale_up = n_active / k

    for s in sources:
        _brandes_from_source(graph, reverse, int(s), bc)
    bc *= scale_up

    if normalized:
        denom = (n_active - 1) * (n_active - 2)
        if denom > 0:
            bc /= denom
    bc[~active] = 0.0
    return bc
