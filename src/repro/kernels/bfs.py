"""Level-synchronous BFS over window graphs — the substrate for the
distance-based centralities (closeness, betweenness).

The frontier expansion is vectorized per level: gather all frontier
vertices' adjacency ranges, concatenate, and mask out visited vertices —
O(E) per BFS with NumPy-level constants, which at window scale makes exact
all-sources sweeps feasible and sampled sweeps cheap.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["bfs_distances", "bfs_levels"]


def _expand(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All out-neighbors of the frontier (with duplicates)."""
    starts = graph.indptr[frontier]
    ends = graph.indptr[frontier + 1]
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(
        starts - np.concatenate([[0], np.cumsum(lens)[:-1]]), lens
    )
    return graph.col[np.arange(total) + offsets]


def bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distances from ``source`` (-1 for unreachable)."""
    n = graph.n_vertices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nbrs = _expand(graph, frontier)
        if nbrs.size == 0:
            break
        fresh = np.unique(nbrs[dist[nbrs] < 0])
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = fresh
    return dist


def bfs_levels(
    graph: CSRGraph, source: int
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(level, vertices)`` per BFS level, level 0 = the source."""
    n = graph.n_vertices
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    frontier = np.array([source], dtype=np.int64)
    level = 0
    yield level, frontier
    while frontier.size:
        level += 1
        nbrs = _expand(graph, frontier)
        if nbrs.size == 0:
            return
        fresh = np.unique(nbrs[~seen[nbrs]])
        if fresh.size == 0:
            return
        seen[fresh] = True
        frontier = fresh
        yield level, frontier
