"""Degree centrality per window.

The cheapest centrality: a vertex's (in + out) degree over the window's
simple graph, optionally normalized by ``|V_i| - 1`` (the classic
normalization, so values are comparable across windows of different
sizes).  Comes almost for free from the temporal-CSR window masks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_csr import WindowView

__all__ = ["degree_centrality"]

_MODES = ("in", "out", "total")


def degree_centrality(
    view: WindowView, mode: str = "total", normalized: bool = True
) -> np.ndarray:
    """Per-vertex degree centrality for one window.

    Parameters
    ----------
    view:
        Precomputed window view.
    mode:
        ``"in"``, ``"out"`` or ``"total"`` (in + out).
    normalized:
        Divide by ``|V_i| - 1``; inactive vertices are 0 either way.
    """
    if mode not in _MODES:
        raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
    if mode == "in":
        deg = view.in_degrees.astype(np.float64)
    elif mode == "out":
        deg = view.out_degrees.astype(np.float64)
    else:
        deg = (view.in_degrees + view.out_degrees).astype(np.float64)

    if normalized:
        denom = max(view.n_active_vertices - 1, 1)
        deg = deg / denom
    deg[~view.active_vertices_mask] = 0.0
    return deg
