"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro-temporal generate wiki-talk --scale 0.2 --out wiki.npz
    repro-temporal info wiki.npz
    repro-temporal run wiki.npz --delta-days 90 --sw 86400 --top 5
    repro-temporal compare wiki.npz --delta-days 90 --sw 86400
    repro-temporal sweep wiki.npz --delta-days 90 --sw 86400 --workers 48
    repro-temporal kernel wiki.npz --delta-days 90 --sw 86400 --name maxcore
    repro-temporal report --output-dir benchmarks/output --out REPORT.md

* **generate** — write a synthetic dataset profile to ``.npz``/``.tsv``.
* **info** — event counts, span, temporal shape classification.
* **run** — postmortem PageRank over the sliding windows; per-window top
  vertices.
* **compare** — measured wall-clock of offline / streaming / postmortem.
* **sweep** — simulated multicore sweep of level x granularity (the
  Section 6.3.6 tuning aid).
* **kernel** — a non-PageRank analysis (components / maxcore / triangles /
  katz) per window.
* **report** — collate benchmark outputs into one Markdown report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-temporal",
        description="Postmortem PageRank on temporal graphs (ICPP'22 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic dataset")
    p_gen.add_argument("profile", help="profile name (see `list`)")
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("--seed-offset", type=int, default=0)
    p_gen.add_argument("--out", required=True,
                       help="output path (.npz or .tsv)")

    sub.add_parser("list", help="list dataset profiles")

    p_info = sub.add_parser("info", help="describe an event file")
    p_info.add_argument("events", help="event file (.npz or .tsv)")

    def add_window_args(p):
        p.add_argument("--delta-days", type=float, required=True,
                       help="window size in days")
        p.add_argument("--sw", type=int, required=True,
                       help="sliding offset in seconds")
        p.add_argument("--max-windows", type=int, default=None)
        p.add_argument("--alpha", type=float, default=0.15)
        p.add_argument("--tolerance", type=float, default=1e-8)

    p_run = sub.add_parser("run", help="postmortem PageRank over windows")
    p_run.add_argument("events")
    add_window_args(p_run)
    p_run.add_argument("--multiwindows", type=int, default=6)
    p_run.add_argument("--kernel", choices=["spmv", "spmm"], default="spmm")
    p_run.add_argument("--vector-length", type=int, default=16)
    p_run.add_argument("--partition", default="uniform",
                       choices=["uniform", "minimax", "greedy"])
    p_run.add_argument("--top", type=int, default=3,
                       help="top vertices to print per window")
    p_run.add_argument("--every", type=int, default=1,
                       help="print every Nth window")

    p_cmp = sub.add_parser(
        "compare", help="offline vs streaming vs postmortem wall-clock"
    )
    p_cmp.add_argument("events")
    add_window_args(p_cmp)

    p_sweep = sub.add_parser(
        "sweep", help="simulated multicore parameter sweep"
    )
    p_sweep.add_argument("events")
    add_window_args(p_sweep)
    p_sweep.add_argument("--workers", type=int, default=48)
    p_sweep.add_argument("--multiwindows", type=int, default=6)

    p_kern = sub.add_parser(
        "kernel", help="run a non-PageRank analysis kernel per window"
    )
    p_kern.add_argument("events")
    add_window_args(p_kern)
    p_kern.add_argument(
        "--name",
        default="components",
        choices=["components", "maxcore", "triangles", "katz"],
    )
    p_kern.add_argument("--multiwindows", type=int, default=6)
    p_kern.add_argument("--every", type=int, default=1)

    p_rep = sub.add_parser(
        "report", help="collate benchmark outputs into one Markdown report"
    )
    p_rep.add_argument(
        "--output-dir", default="benchmarks/output",
        help="directory of .txt artifacts",
    )
    p_rep.add_argument("--out", default=None, help="write Markdown here")

    return parser


def _load_events(path: str):
    from repro.events import load_events_npz, load_events_tsv

    if path.endswith(".npz"):
        return load_events_npz(path)
    return load_events_tsv(path)


def _make_spec(events, args):
    from repro.events import WindowSpec

    spec = WindowSpec.covering_days(events, args.delta_days, args.sw)
    if args.max_windows is not None and spec.n_windows > args.max_windows:
        spec = WindowSpec(spec.t0, spec.delta, spec.sw, args.max_windows)
    return spec


def _make_config(args):
    from repro.pagerank import PagerankConfig

    return PagerankConfig(alpha=args.alpha, tolerance=args.tolerance)


def cmd_generate(args, out) -> int:
    from repro.datasets import get_profile
    from repro.events import save_events_npz, save_events_tsv

    profile = get_profile(args.profile)
    events = profile.generate(seed_offset=args.seed_offset, scale=args.scale)
    if args.out.endswith(".npz"):
        save_events_npz(events, args.out)
    else:
        save_events_tsv(events, args.out)
    print(
        f"wrote {len(events)} events ({events.n_vertices} vertices, "
        f"{events.span // 86_400} days) to {args.out}",
        file=out,
    )
    return 0


def cmd_list(args, out) -> int:
    from repro.datasets import PROFILES
    from repro.reporting import format_table

    rows = [
        [p.name, f"{p.paper_events:,}", f"{p.n_events:,}", p.figure4_shape]
        for p in PROFILES.values()
    ]
    print(
        format_table(
            ["profile", "paper events", "base events", "temporal shape"],
            rows,
        ),
        file=out,
    )
    return 0


def cmd_info(args, out) -> int:
    from repro.analysis import distribution_summary
    from repro.reporting import format_kv

    events = _load_events(args.events)
    shape = distribution_summary(events) if len(events) else None
    info = {
        "events": len(events),
        "vertices": events.n_vertices,
        "span (days)": events.span // 86_400 if len(events) else 0,
    }
    if shape is not None:
        info.update(
            {
                "shape class": shape.shape_class,
                "peak/mean": round(shape.peak_to_mean, 2),
                "gini": round(shape.gini, 3),
                "trend": round(shape.trend, 3),
            }
        )
    print(format_kv(info, title=args.events), file=out)
    return 0


def cmd_run(args, out) -> int:
    from repro.models import PostmortemDriver, PostmortemOptions
    from repro.reporting import format_table

    events = _load_events(args.events)
    spec = _make_spec(events, args)
    options = PostmortemOptions(
        n_multiwindows=args.multiwindows,
        kernel=args.kernel,
        vector_length=args.vector_length,
        partition_method=args.partition,
    )
    run = PostmortemDriver(events, spec, _make_config(args), options).run()
    rows = []
    for w in run.windows[:: max(args.every, 1)]:
        top = ", ".join(
            f"v{v}={s:.4f}" for v, s in w.top_vertices(args.top)
        )
        rows.append(
            [w.window_index, w.n_active_vertices, w.n_active_edges,
             w.iterations, top]
        )
    print(
        format_table(
            ["window", "|V|", "|E|", "iters", f"top-{args.top}"],
            rows,
            title=f"postmortem PageRank over {spec.n_windows} windows",
        ),
        file=out,
    )
    print(
        f"\ntotal {run.total_time:.3f}s "
        f"(build {run.timings.totals.get('build', 0):.3f}s, "
        f"pagerank {run.timings.totals.get('pagerank', 0):.3f}s)",
        file=out,
    )
    return 0


def cmd_compare(args, out) -> int:
    from repro.analysis import compare_models
    from repro.reporting import format_bar_chart

    events = _load_events(args.events)
    spec = _make_spec(events, args)
    t = compare_models(events, spec, _make_config(args))
    print(
        format_bar_chart(
            {
                "offline": t.offline_seconds,
                "streaming": t.streaming_seconds,
                "postmortem": t.postmortem_seconds,
            },
            title=f"wall-clock over {spec.n_windows} windows",
            unit="s",
        ),
        file=out,
    )
    print(
        f"\npostmortem vs streaming: {t.postmortem_vs_streaming:.1f}x, "
        f"vs offline: {t.postmortem_vs_offline:.1f}x",
        file=out,
    )
    return 0


def cmd_sweep(args, out) -> int:
    from repro.parallel import (
        AUTO,
        MachineSpec,
        calibrate_cost_model,
        collect_window_stats,
        estimate_makespan,
    )
    from repro.reporting import format_series

    events = _load_events(args.events)
    spec = _make_spec(events, args)
    stats = collect_window_stats(
        events, spec, _make_config(args), args.multiwindows
    )
    model = calibrate_cost_model()
    machine = MachineSpec(args.workers)
    granularities = [1, 4, 16, 64, 256]
    series = {}
    best = (float("inf"), None)
    for level in ("window", "application", "nested"):
        for kernel in ("spmv", "spmm"):
            key = f"{level}/{kernel}"
            ys = []
            for g in granularities:
                t = estimate_makespan(
                    stats, machine, model, level, AUTO, g, kernel, 16
                )
                ys.append(t * 1_000)
                if t < best[0]:
                    best = (t, (level, kernel, g))
            series[key] = ys
    print(
        format_series(
            "granularity",
            granularities,
            series,
            title=(
                f"simulated makespan (ms) on {args.workers} workers, "
                f"auto partitioner"
            ),
        ),
        file=out,
    )
    level, kernel, g = best[1]
    print(
        f"\nbest: {level}/{kernel} at granularity {g} "
        f"({best[0] * 1000:.2f} ms)",
        file=out,
    )
    return 0


def cmd_kernel(args, out) -> int:
    from repro.kernels import (
        TemporalKernelDriver,
        connected_components,
        katz_window,
        max_core,
    )
    from repro.analysis import triangle_count
    from repro.reporting import format_series

    events = _load_events(args.events)
    spec = _make_spec(events, args)
    driver = TemporalKernelDriver(events, spec, args.multiwindows)
    kernels = {
        "components": (connected_components, lambda c: c.n_components),
        "maxcore": (max_core, float),
        "triangles": (triangle_count, float),
        "katz": (katz_window, lambda r: float(r.values.max())),
    }
    kernel, extract = kernels[args.name]
    result = driver.run(kernel, name=args.name)
    series = result.series(extract)
    idx = list(range(0, spec.n_windows, max(args.every, 1)))
    print(
        format_series(
            "window",
            idx,
            {args.name: [float(series[i]) for i in idx]},
            title=f"{args.name} over {spec.n_windows} windows",
        ),
        file=out,
    )
    return 0


def cmd_report(args, out) -> int:
    from repro.reporting.report import generate_report

    text = generate_report(args.output_dir, report_path=args.out)
    if args.out:
        print(f"wrote report to {args.out}", file=out)
    else:
        print(text, file=out)
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "list": cmd_list,
    "info": cmd_info,
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "kernel": cmd_kernel,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
